//! The LSD system: two-phase train/match pipeline (paper Section 3,
//! Figure 4).
//!
//! **Training** (Section 3.1): the user maps a few sources by hand; LSD
//! extracts data, creates per-learner training examples, trains the base
//! learners, and trains the stacking meta-learner on cross-validated
//! base-learner predictions.
//!
//! **Matching** (Section 3.2): for a new source, LSD extracts a column of
//! instances per source tag, applies the base learners to each instance,
//! combines their predictions with the meta-learner, averages per column
//! with the prediction converter, and hands the tag-level predictions to
//! the constraint handler, which searches for the best global 1-1 mapping.
//!
//! The XML learner runs as a *second stage*: it needs labels for the
//! sub-elements of each instance (Section 5, Table 2: "Use LSD (with other
//! base learners) to predict for each non-leaf & non-root node in T a
//! label"), so the pipeline first computes a preliminary per-tag labelling
//! from the other learners, then lets the XML learner vote with that
//! structural context.

use crate::converter::{convert_column_with, CombinationRule};
use crate::error::LsdError;
use crate::explain::RejectionReason;
use crate::feedback::Feedback;
use crate::instance::{build_source_data, extract_instances, Instance};
use crate::learners::{BaseLearner, XmlLearner};
use crate::meta::MetaLearner;
use crate::readers::{ReadError, SourceFormat, SourceReader};
use crate::report::{MatchReport, TrainReport};
use lsd_analysis::Diagnostic;
use lsd_constraints::{
    CompiledConstraintSet, ConstraintHandler, DomainConstraint, Evaluator, MappingResult,
    MatchingContext, SearchConfig, INFEASIBLE,
};
use lsd_infer::InferenceStats;
use lsd_learn::{
    cross_validation_predictions_grouped_with, parallel_map, ExecPolicy, LabelSet, Prediction,
};
use lsd_xml::{Dtd, Element, SchemaTree};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::Instant;

/// A data source: its schema (DTD) and the listings extracted from it.
///
/// Construct one with [`Source::from_xml`] (the native representation) or
/// [`Source::from_reader`] (any [`SourceReader`]: JSON, CSV, SQL DDL, or
/// XML). Every reader normalizes into the same canonical `dtd` + `listings`
/// pair, so the rest of the pipeline never sees the serialization format.
#[derive(Debug, Clone)]
pub struct Source {
    /// Display name, e.g. `realestate.com`.
    pub name: String,
    /// The source DTD.
    pub dtd: Dtd,
    /// Extracted listings, each conforming to the DTD.
    pub listings: Vec<Element>,
    /// The serialization format this source was read from. Provenance
    /// only: the pipeline treats every source identically.
    pub format: SourceFormat,
    /// Inference evidence when the schema was learned from the listings
    /// rather than supplied (bare XML containers, JSON documents). `None`
    /// for native DTDs and DDL-derived schemas. Provenance only.
    pub inferred: Option<InferenceStats>,
}

impl Source {
    /// A source from the native representation: a parsed DTD plus parsed
    /// listing trees. Equivalent to the pre-reader struct literal.
    pub fn from_xml(name: impl Into<String>, dtd: Dtd, listings: Vec<Element>) -> Self {
        Source::from_parts(name, dtd, listings, SourceFormat::Xml)
    }

    /// A source from already-normalized parts with explicit format
    /// provenance.
    pub fn from_parts(
        name: impl Into<String>,
        dtd: Dtd,
        listings: Vec<Element>,
        format: SourceFormat,
    ) -> Self {
        Source {
            name: name.into(),
            dtd,
            listings,
            format,
            inferred: None,
        }
    }

    /// The one constructor for foreign serializations: runs the reader and
    /// wraps its normalized contents, carrying any schema-inference
    /// evidence along as provenance.
    ///
    /// # Errors
    /// [`ReadError`] when the reader cannot parse its input; the error
    /// names the format and the offending part.
    pub fn from_reader(
        name: impl Into<String>,
        reader: &dyn SourceReader,
    ) -> Result<Self, ReadError> {
        let contents = reader.read()?;
        let mut source = Source::from_parts(name, contents.dtd, contents.listings, reader.format());
        source.inferred = contents.inferred;
        Ok(source)
    }
}

/// Where one trained source came from: recorded by [`Lsd::train`] and
/// persisted with the model, so a snapshot remembers which serializations
/// taught it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SourceProvenance {
    /// The source's display name.
    pub source: String,
    /// The serialization format the source was read from.
    pub format: SourceFormat,
    /// How many listings the source contributed.
    pub listings: usize,
    /// Inference evidence when the source's schema was learned from its
    /// listings instead of supplied: corpus size, per-element support,
    /// generalization and fallback counts. `None` for native schemas and
    /// for snapshots saved before this field existed. Audits use it to
    /// flag models trained on weakly-supported inferred schemas.
    #[serde(default)]
    pub inferred: Option<InferenceStats>,
}

/// A training source: a source plus the user-specified 1-1 mappings from
/// its tags to mediated-schema tag names. Tags absent from the map are
/// unmatchable and train the `OTHER` label.
#[derive(Debug, Clone)]
pub struct TrainedSource {
    /// The source.
    pub source: Source,
    /// `source tag → mediated tag` as provided by the user.
    pub mapping: HashMap<String, String>,
}

/// Tunables for the pipeline.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct LsdConfig {
    /// Cross-validation folds for meta-learner training (paper: d = 5).
    pub cv_folds: usize,
    /// RNG seed: fold assignment and instance subsampling are
    /// deterministic given the seed.
    pub seed: u64,
    /// Weight α of the `−log prob(m)` term in the mapping cost.
    pub alpha: f64,
    /// Constraint-handler search configuration.
    pub search: SearchConfig,
    /// Per-tag candidate-label limit for the handler (0 = all labels).
    pub candidate_limit: usize,
    /// Cap on training instances per (source, tag); 0 = no cap. The paper
    /// notes running time can be reduced "if we run it on fewer examples".
    pub max_train_instances_per_tag: usize,
    /// Cap on instances per tag examined when matching; 0 = no cap.
    pub max_match_instances_per_tag: usize,
    /// Train the stacking meta-learner (default). When false the
    /// meta-learner stays uniform — used for the paper's "best single base
    /// learner" baseline, where the learner's own prediction is the answer.
    #[serde(default = "default_true")]
    pub train_meta: bool,
    /// How the prediction converter merges per-instance predictions into
    /// the tag-level prediction (the paper averages).
    #[serde(default)]
    pub converter: CombinationRule,
}

/// Serde default for fields that are true unless stated otherwise.
fn default_true() -> bool {
    true
}

/// Counts accepted (warning-severity) analysis diagnostics in the metrics
/// registry: one total plus one per diagnostic code.
fn record_diagnostics(diagnostics: &[Diagnostic]) {
    if !lsd_obs::enabled() || diagnostics.is_empty() {
        return;
    }
    lsd_obs::counter_add("analysis.warnings", "", diagnostics.len() as u64);
    for d in diagnostics {
        lsd_obs::counter_add("analysis.diagnostics", d.code.as_str(), 1);
    }
}

impl Default for LsdConfig {
    fn default() -> Self {
        LsdConfig {
            cv_folds: 5,
            seed: 0,
            alpha: 1.0,
            search: SearchConfig::default(),
            candidate_limit: ConstraintHandler::DEFAULT_CANDIDATE_LIMIT,
            max_train_instances_per_tag: 40,
            max_match_instances_per_tag: 25,
            train_meta: true,
            converter: CombinationRule::default(),
        }
    }
}

/// Builder for an [`Lsd`] system.
pub struct LsdBuilder {
    mediated: Dtd,
    labels: LabelSet,
    learners: Vec<Box<dyn BaseLearner>>,
    xml_learner: Option<XmlLearner>,
    constraints: Vec<DomainConstraint>,
    config: LsdConfig,
}

impl LsdBuilder {
    /// Starts a builder for the given mediated schema: every mediated tag
    /// becomes a label, plus the reserved `OTHER`. The schema is retained
    /// for the static-analysis pass ([`Lsd::analyze`]).
    pub fn new(mediated: &Dtd) -> Self {
        LsdBuilder {
            labels: LabelSet::new(mediated.element_names().map(str::to_string)),
            mediated: mediated.clone(),
            learners: Vec::new(),
            xml_learner: None,
            constraints: Vec::new(),
            config: LsdConfig::default(),
        }
    }

    /// The label set (for constructing label-aware learners such as
    /// recognizers before adding them).
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Adds a first-stage base learner.
    pub fn add_learner(mut self, learner: Box<dyn BaseLearner>) -> Self {
        self.learners.push(learner);
        self
    }

    /// Adds the second-stage XML learner (Section 5). Pass `None` for the
    /// default configuration, or a pre-configured [`XmlLearner`]:
    ///
    /// ```ignore
    /// builder.with_xml_learner(None)              // default XML learner
    /// builder.with_xml_learner(custom_learner)    // custom-configured
    /// ```
    pub fn with_xml_learner(mut self, learner: impl Into<Option<XmlLearner>>) -> Self {
        self.xml_learner = Some(
            learner
                .into()
                .unwrap_or_else(|| XmlLearner::new(self.labels.len())),
        );
        self
    }

    /// Sets the domain constraints.
    pub fn with_constraints(mut self, constraints: Vec<DomainConstraint>) -> Self {
        self.constraints = constraints;
        self
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: LsdConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the (untrained) system.
    ///
    /// # Errors
    /// [`LsdError::NoLearners`] if no base learner was added.
    pub fn build(self) -> Result<Lsd, LsdError> {
        if self.learners.is_empty() && self.xml_learner.is_none() {
            return Err(LsdError::NoLearners);
        }
        let mut learners = self.learners;
        let xml_index = self.xml_learner.map(|xl| {
            learners.push(Box::new(xl) as Box<dyn BaseLearner>);
            learners.len() - 1
        });
        let num = learners.len();
        let handler = ConstraintHandler::new(self.constraints)
            .with_config(self.config.search)
            .with_candidate_limit(self.config.candidate_limit);
        let compiled = handler.compiled(&self.labels);
        Ok(Lsd {
            mediated: self.mediated,
            labels: self.labels,
            learners,
            xml_index,
            meta: MetaLearner::uniform(0, num.max(1)),
            handler,
            compiled,
            config: self.config,
            trained: false,
            provenance: Vec::new(),
            feedback_applied: 0,
        })
    }
}

/// A trained (or trainable) LSD system.
pub struct Lsd {
    /// The mediated schema, retained for [`Lsd::analyze`].
    pub(crate) mediated: Dtd,
    pub(crate) labels: LabelSet,
    pub(crate) learners: Vec<Box<dyn BaseLearner>>,
    /// Index of the XML learner within `learners`, if present.
    pub(crate) xml_index: Option<usize>,
    pub(crate) meta: MetaLearner,
    pub(crate) handler: ConstraintHandler,
    /// The domain constraints compiled against `labels`, kept in lockstep
    /// with `handler` by [`Lsd::set_constraints`] — every match path shares
    /// this set, so it must never go stale.
    pub(crate) compiled: CompiledConstraintSet,
    pub(crate) config: LsdConfig,
    pub(crate) trained: bool,
    /// One entry per training source, recorded by [`Lsd::train`].
    pub(crate) provenance: Vec<SourceProvenance>,
    /// Number of feedback-WAL records already folded into this model by
    /// incremental retraining (see [`Lsd::feedback_applied`]).
    pub(crate) feedback_applied: u64,
}

/// One ranked mediated-schema label for a source tag (see
/// [`MatchOutcome::candidates`]).
#[derive(Debug, Clone)]
pub struct LabelCandidate {
    /// The mediated-schema label name.
    pub label: String,
    /// The combined tag-level score (post meta-learner and converter) —
    /// the value the constraint handler ranked this label by.
    pub score: f64,
    /// Per-learner tag-level scores for this label, parallel to
    /// [`MatchOutcome::learner_names`].
    pub per_learner: Vec<f64>,
    /// The label's id in the label set (the provenance plumbing behind
    /// [`MatchOutcome::explain`]).
    pub(crate) label_id: usize,
}

/// The outcome of matching one source.
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// The source tags that were matched, in schema declaration order.
    pub tags: Vec<String>,
    /// Final tag-level predictions (post meta-learner and converter),
    /// parallel to `tags`.
    pub predictions: Vec<Prediction>,
    /// The constraint handler's output, parallel to `tags`.
    pub result: MappingResult,
    /// Label names, parallel to `tags` (`OTHER` for unmatchable tags).
    pub labels: Vec<String>,
    /// `source tag → mediated tag`, computed once at match time.
    pub(crate) mapping: HashMap<String, String>,
    /// Base learner names, in combination order.
    pub(crate) learner_names: Vec<&'static str>,
    /// `per_learner[t][j]` — learner `j`'s converted tag-level prediction
    /// for tag `t` (the `explain_source` plumbing, captured during the
    /// match pass instead of re-predicting).
    pub(crate) per_learner: Vec<Vec<Prediction>>,
    /// `candidates[t]` — every label ranked by combined score for tag `t`.
    pub(crate) candidates: Vec<Vec<LabelCandidate>>,
    /// Instances examined per tag, parallel to `tags`.
    pub(crate) instances_examined: Vec<usize>,
    /// The meta-learner's `weights[label][learner]` matrix at match time
    /// (snapshotted so explanations outlive the system).
    pub(crate) meta_weights: Vec<Vec<f64>>,
    /// `rejections[t][rank]` — why candidate `rank` of tag `t` lost,
    /// parallel to `candidates`. `None` for the chosen label, candidates
    /// ranked below it, and throughout infeasible mappings.
    pub(crate) rejections: Vec<Vec<Option<RejectionReason>>>,
}

impl MatchOutcome {
    /// The produced 1-1 mapping as `source tag → mediated tag`, excluding
    /// tags mapped to `OTHER`. Computed once when the outcome is built;
    /// repeated calls return the same cached map.
    pub fn mapping(&self) -> &HashMap<String, String> {
        &self.mapping
    }

    /// The predicted label for one tag.
    pub fn label_of(&self, tag: &str) -> Option<&str> {
        self.tags
            .iter()
            .position(|t| t == tag)
            .map(|i| self.labels[i].as_str())
    }

    /// Base learner names, in combination order (the order of
    /// [`LabelCandidate::per_learner`]).
    pub fn learner_names(&self) -> &[&'static str] {
        &self.learner_names
    }

    /// The ranked label candidates for one tag: every label with its
    /// combined converter score and per-learner breakdown, best first.
    /// Empty for a tag the source does not have. No second explain pass is
    /// needed — the evidence is captured while matching.
    pub fn candidates(&self, tag: &str) -> &[LabelCandidate] {
        self.tags
            .iter()
            .position(|t| t == tag)
            .map(|i| self.candidates[i].as_slice())
            .unwrap_or(&[])
    }

    /// How many instances of `tag` the pipeline examined.
    pub fn instances_examined(&self, tag: &str) -> Option<usize> {
        self.tags
            .iter()
            .position(|t| t == tag)
            .map(|i| self.instances_examined[i])
    }
}

impl Lsd {
    /// The label set (mediated tags + `OTHER`).
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Names of the base learners, in combination order.
    pub fn learner_names(&self) -> Vec<&'static str> {
        self.learners.iter().map(|l| l.name()).collect()
    }

    /// The trained meta-learner weights.
    pub fn meta_learner(&self) -> &MetaLearner {
        &self.meta
    }

    /// Runs the static-analysis pass over the mediated schema and the
    /// constraints currently in force, without touching any source. The
    /// same diagnostics gate [`Lsd::train`] and [`Lsd::set_constraints`];
    /// call this to inspect them (or render them with
    /// `lsd_analysis::render_all`) before committing to a pipeline run.
    pub fn analyze(&self) -> Vec<Diagnostic> {
        lsd_analysis::with_origin(
            lsd_analysis::analyze(&self.mediated, &self.labels, self.handler.constraints()),
            "mediated schema",
        )
    }

    /// Replaces the domain constraints, re-running the two-stage
    /// compilation so every match path sees the new set immediately. This
    /// supersedes the old `handler_mut()` escape hatch, which let callers
    /// swap constraints behind the pre-compiled set's back and match
    /// against a stale compilation.
    ///
    /// # Errors
    /// [`LsdError::UnknownLabel`] if a constraint names a label outside the
    /// mediated schema, and [`LsdError::Analysis`] if the constraint lints
    /// (`LSD102`–`LSD104`) find a contradiction among the hard constraints.
    /// Either way the previous constraints stay in force; warnings are
    /// accepted and counted in the metrics registry.
    pub fn set_constraints(&mut self, constraints: Vec<DomainConstraint>) -> Result<(), LsdError> {
        for c in &constraints {
            for name in c.predicate.label_names() {
                if self.labels.get(name).is_none() {
                    return Err(LsdError::UnknownLabel { label: name.into() });
                }
            }
        }
        let diagnostics = lsd_analysis::analyze_constraints(&self.labels, &constraints);
        if lsd_analysis::has_errors(&diagnostics) {
            return Err(LsdError::Analysis { diagnostics });
        }
        record_diagnostics(&diagnostics);
        self.handler.set_constraints(constraints);
        self.compiled = self.handler.compiled(&self.labels);
        Ok(())
    }

    /// The domain constraints currently in force.
    pub fn constraints(&self) -> &[DomainConstraint] {
        self.handler.constraints()
    }

    /// True once [`Self::train`] has run.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Gate used before exposing this system to serving traffic (the
    /// `lsd-serve` model registry calls this on every loaded snapshot
    /// before activation): the system must be trained, and the
    /// static-analysis pass over its mediated schema and constraints must
    /// be free of error-severity diagnostics.
    ///
    /// # Errors
    /// [`LsdError::NotTrained`] for an untrained system,
    /// [`LsdError::Analysis`] with the full diagnostic list if the
    /// analysis pass finds errors. Warnings pass.
    pub fn ensure_servable(&self) -> Result<(), LsdError> {
        self.ensure_trained("serve")?;
        let diagnostics = self.analyze();
        if lsd_analysis::has_errors(&diagnostics) {
            return Err(LsdError::Analysis { diagnostics });
        }
        Ok(())
    }

    /// Trains the base learners and the meta-learner on user-mapped sources
    /// (Section 3.1). Retrains from scratch on each call; to *add* a source
    /// incrementally (the paper's "reuse past matchings" loop), call again
    /// with the extended source list.
    ///
    /// Training is internally parallel: base learners train concurrently
    /// (one scoped thread each), and the meta-learner's cross-validation
    /// runs learners and folds concurrently under the default
    /// [`ExecPolicy`]. Results are identical to serial execution.
    ///
    /// # Errors
    /// [`LsdError::Analysis`] if the static-analysis pass finds
    /// error-severity diagnostics in the mediated schema, the constraint
    /// set, or any training source's schema (warnings pass and are counted
    /// in the metrics registry); [`LsdError::NoTrainingData`] if the
    /// sources yield no instances.
    pub fn train(&mut self, sources: &[TrainedSource]) -> Result<(), LsdError> {
        let _span = lsd_obs::span!("train");
        let mut diagnostics = self.analyze();
        for ts in sources {
            diagnostics.extend(lsd_analysis::with_origin(
                lsd_analysis::analyze_dtd(&ts.source.dtd),
                &ts.source.name,
            ));
        }
        if lsd_analysis::has_errors(&diagnostics) {
            return Err(LsdError::Analysis { diagnostics });
        }
        record_diagnostics(&diagnostics);
        let (examples, groups) = self.training_examples(sources);
        if examples.is_empty() {
            return Err(LsdError::NoTrainingData);
        }
        if lsd_obs::enabled() {
            lsd_obs::counter_add("train.sources", "", sources.len() as u64);
            lsd_obs::counter_add("train.examples", "", examples.len() as u64);
        }
        let refs: Vec<(&Instance, usize)> = examples.iter().map(|(i, l)| (i, *l)).collect();

        // Train every base learner on its full example set, one scoped
        // thread per learner (they are independent and `train` needs
        // `&mut`, so this fans out over `iter_mut` rather than
        // `parallel_map`).
        let train_timed = |learner: &mut Box<dyn BaseLearner>, refs: &[(&Instance, usize)]| {
            let name = learner.name();
            let _span = lsd_obs::span!("learner.train", name);
            let t0 = lsd_obs::enabled().then(Instant::now);
            learner.train(refs);
            if let Some(t0) = t0 {
                lsd_obs::record_duration("learner.train_ns", name, t0.elapsed());
            }
        };
        {
            let _stage = lsd_obs::span!("train.base_learners");
            if self.learners.len() > 1 {
                let refs = &refs;
                std::thread::scope(|scope| {
                    for learner in &mut self.learners {
                        scope.spawn(move || train_timed(learner, refs));
                    }
                });
            } else {
                for learner in &mut self.learners {
                    train_timed(learner, &refs);
                }
            }
        }

        if !self.config.train_meta {
            self.meta = MetaLearner::uniform(self.labels.len(), self.learners.len());
            self.record_provenance(sources);
            self.trained = true;
            return Ok(());
        }

        // Meta-learner: cross-validated predictions per learner, then
        // per-label non-negative least-squares regression. Folds are
        // grouped by (source, tag): instances of one tag are
        // near-duplicates for the name matcher, and example-level folds
        // would leak them across the split, inflating its weight.
        //
        // Parallelism picks one level to avoid oversubscription: with
        // several learners the learners run concurrently (folds serial
        // within each); a single learner parallelizes its folds instead.
        let _meta_span = lsd_obs::span!("train.meta");
        let truths: Vec<usize> = examples.iter().map(|(_, l)| *l).collect();
        let (learner_policy, fold_policy) = if self.learners.len() > 1 {
            (ExecPolicy::default(), ExecPolicy::serial())
        } else {
            (ExecPolicy::serial(), ExecPolicy::default())
        };
        let cv_sets: Vec<Vec<Prediction>> =
            parallel_map(&self.learners, &learner_policy, |_, learner| {
                cross_validation_predictions_grouped_with(
                    &refs,
                    &groups,
                    self.config.cv_folds,
                    self.config.seed,
                    &fold_policy,
                    || learner.fresh(),
                )
            });
        self.meta = MetaLearner::train(&cv_sets, &truths, self.labels.len());
        self.record_provenance(sources);
        self.trained = true;
        Ok(())
    }

    /// Snapshots per-source provenance after a successful training pass.
    /// Retraining replaces the whole list, mirroring `train`'s
    /// from-scratch semantics.
    fn record_provenance(&mut self, sources: &[TrainedSource]) {
        self.provenance = sources
            .iter()
            .map(|ts| SourceProvenance {
                source: ts.source.name.clone(),
                format: ts.source.format,
                listings: ts.source.listings.len(),
                inferred: ts.source.inferred.clone(),
            })
            .collect();
    }

    /// Where the trained sources came from: name, serialization format,
    /// and listing count per source, in training order. Empty before
    /// [`Lsd::train`] (and for snapshots saved before provenance existed).
    pub fn source_provenance(&self) -> &[SourceProvenance] {
        &self.provenance
    }

    /// Learns a deterministic, 1-unambiguous DTD from raw XML instances —
    /// the schema-inference entry point for DTD-less sources, exposed on
    /// the facade so callers need not depend on `lsd-infer` directly.
    /// Every returned model passes the Glushkov one-unambiguity check and
    /// accepts every training instance; the returned
    /// [`lsd_infer::InferenceStats`] reports corpus size, per-element
    /// support, and how often inference generalized or fell back.
    ///
    /// # Errors
    /// [`lsd_infer::InferError::EmptyCorpus`] when `instances` is empty.
    pub fn infer_dtd(instances: &[Element]) -> Result<lsd_infer::Inference, lsd_infer::InferError> {
        lsd_infer::infer_dtd(instances)
    }

    /// Extends a trained system with additional mapped sources by
    /// warm-starting every base learner from its current state — the
    /// retrain step of the online feedback loop, where a correction batch
    /// becomes one small [`TrainedSource`] and a full retrain would be
    /// wasteful. Meta-learner weights are kept (re-fitting them needs the
    /// original example set, which a warm-started system no longer holds);
    /// provenance entries are appended rather than replaced.
    ///
    /// As long as no tag's training data exceeds
    /// [`LsdConfig::max_train_instances_per_tag`], the resulting base
    /// learners are identical to a full [`Self::train`] over the
    /// concatenated source list: warm-start is exact, not approximate.
    /// Above the cap, subsampling draws differ between the two paths.
    ///
    /// # Errors
    /// [`LsdError::NotTrained`] before [`Self::train`];
    /// [`LsdError::WarmStartUnsupported`] if any base learner cannot extend
    /// its trained state (checked for *all* learners before any is
    /// modified, so the system is never left half-updated);
    /// [`LsdError::Analysis`] / [`LsdError::NoTrainingData`] as for
    /// [`Self::train`].
    pub fn train_incremental(&mut self, additional: &[TrainedSource]) -> Result<(), LsdError> {
        let _span = lsd_obs::span!("train.incremental");
        self.ensure_trained("train_incremental")?;
        let mut diagnostics = Vec::new();
        for ts in additional {
            diagnostics.extend(lsd_analysis::with_origin(
                lsd_analysis::analyze_dtd(&ts.source.dtd),
                &ts.source.name,
            ));
        }
        if lsd_analysis::has_errors(&diagnostics) {
            return Err(LsdError::Analysis { diagnostics });
        }
        record_diagnostics(&diagnostics);
        if let Some(learner) = self.learners.iter().find(|l| !l.supports_warm_start()) {
            return Err(LsdError::WarmStartUnsupported {
                learner: learner.name().to_string(),
            });
        }
        let (examples, _groups) = self.training_examples(additional);
        if examples.is_empty() {
            return Err(LsdError::NoTrainingData);
        }
        if lsd_obs::enabled() {
            lsd_obs::counter_add("train.incremental_sources", "", additional.len() as u64);
            lsd_obs::counter_add("train.incremental_examples", "", examples.len() as u64);
        }
        let refs: Vec<(&Instance, usize)> = examples.iter().map(|(i, l)| (i, *l)).collect();
        let warm_timed = |learner: &mut Box<dyn BaseLearner>, refs: &[(&Instance, usize)]| {
            let name = learner.name();
            let _span = lsd_obs::span!("learner.warm_train", name);
            let t0 = lsd_obs::enabled().then(Instant::now);
            let ok = learner.warm_train(refs);
            debug_assert!(ok, "supports_warm_start was checked for every learner");
            if let Some(t0) = t0 {
                lsd_obs::record_duration("learner.warm_train_ns", name, t0.elapsed());
            }
        };
        let _stage = lsd_obs::span!("train.incremental_learners");
        if self.learners.len() > 1 {
            let refs = &refs;
            std::thread::scope(|scope| {
                for learner in &mut self.learners {
                    scope.spawn(move || warm_timed(learner, refs));
                }
            });
        } else {
            for learner in &mut self.learners {
                warm_timed(learner, &refs);
            }
        }
        self.provenance
            .extend(additional.iter().map(|ts| SourceProvenance {
                source: ts.source.name.clone(),
                format: ts.source.format,
                listings: ts.source.listings.len(),
                inferred: ts.source.inferred.clone(),
            }));
        Ok(())
    }

    /// How many feedback-WAL records have been folded into this model by
    /// incremental retraining. The retrain worker persists this with the
    /// snapshot, so a restarted server replays only the WAL suffix that
    /// postdates the model generation it loaded. 0 for a freshly trained
    /// system.
    pub fn feedback_applied(&self) -> u64 {
        self.feedback_applied
    }

    /// Records that the first `applied` feedback-WAL records are folded
    /// into this model (called by the retrain worker after
    /// [`Self::train_incremental`]).
    pub fn set_feedback_applied(&mut self, applied: u64) {
        self.feedback_applied = applied;
    }

    /// Creates the labelled training instances for all sources: one example
    /// per extracted element occurrence, labelled via the user mapping
    /// (`OTHER` when unmapped), with true structure labels attached for the
    /// XML learner. The second return value holds one CV group id per
    /// example — examples of the same (source, tag) share a group.
    fn training_examples(&self, sources: &[TrainedSource]) -> (Vec<(Instance, usize)>, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut examples = Vec::new();
        let mut groups = Vec::new();
        let mut next_group = 0usize;
        for ts in sources {
            let tag_labels: HashMap<String, usize> = ts
                .source
                .dtd
                .element_names()
                .map(|tag| {
                    let label = ts
                        .mapping
                        .get(tag)
                        .and_then(|name| self.labels.get(name))
                        .unwrap_or_else(|| self.labels.other());
                    (tag.to_string(), label)
                })
                .collect();
            // Sort columns by tag name: HashMap iteration order would make
            // example order — and every downstream RNG draw — nondeterministic.
            let mut columns: Vec<(String, Vec<Instance>)> =
                extract_instances(&ts.source.listings).into_iter().collect();
            columns.sort_by(|a, b| a.0.cmp(&b.0));
            for (tag, instances) in columns.iter_mut() {
                let Some(&label) = tag_labels.get(tag.as_str()) else {
                    continue;
                };
                subsample(instances, self.config.max_train_instances_per_tag, &mut rng);
                let group = next_group;
                next_group += 1;
                for instance in instances.drain(..) {
                    examples.push((instance.with_sub_labels(tag_labels.clone()), label));
                    groups.push(group);
                }
            }
        }
        (examples, groups)
    }

    /// `Err(NotTrained)` unless [`Self::train`] has completed.
    fn ensure_trained(&self, operation: &'static str) -> Result<(), LsdError> {
        if self.trained {
            Ok(())
        } else {
            Err(LsdError::NotTrained { operation })
        }
    }

    /// Matches a new source (Section 3.2): returns the proposed 1-1 mapping
    /// and the tag-level predictions behind it.
    ///
    /// # Errors
    /// [`LsdError::NotTrained`] before [`Self::train`];
    /// [`LsdError::InvalidSchema`] if the source DTD is malformed.
    pub fn match_source(&self, source: &Source) -> Result<MatchOutcome, LsdError> {
        self.ensure_trained("match_source")?;
        self.match_one(source, &[], &self.compiled)
    }

    /// Matches a source under user feedback (Section 4.3): the corrections
    /// compile to hard per-source constraints, validated against this
    /// system's label set first.
    ///
    /// # Errors
    /// As for [`Self::match_source`], plus [`LsdError::UnknownLabel`] when
    /// a correction references a label outside the mediated schema.
    pub fn match_source_with(
        &self,
        source: &Source,
        feedback: &Feedback,
    ) -> Result<MatchOutcome, LsdError> {
        self.ensure_trained("match_source")?;
        let constraints = feedback.to_constraints(&self.labels)?;
        self.match_one(source, &constraints, &self.compiled)
    }

    /// Matches many sources concurrently under `policy`, sharing this
    /// trained system (read-only) and one pre-compiled constraint set
    /// across scoped worker threads. Outcomes are returned in input order
    /// and are byte-identical to matching each source serially, regardless
    /// of thread count; on error, the first failing source (in input
    /// order) wins.
    ///
    /// # Errors
    /// As for [`Self::match_source`], for the first offending source.
    pub fn match_batch(
        &self,
        sources: &[Source],
        policy: &ExecPolicy,
    ) -> Result<Vec<MatchOutcome>, LsdError> {
        self.ensure_trained("match_batch")?;
        parallel_map(sources, policy, |_, source| {
            self.match_one(source, &[], &self.compiled)
        })
        .into_iter()
        .collect()
    }

    /// [`Self::train`] wrapped in an observability collection: returns a
    /// [`TrainReport`] with per-learner train wall time, fold counts and
    /// the full metrics snapshot. Observability is enabled only for the
    /// duration of the call.
    ///
    /// # Errors
    /// As for [`Self::train`].
    pub fn train_with_report(
        &mut self,
        sources: &[TrainedSource],
    ) -> Result<TrainReport, LsdError> {
        let (result, metrics) = lsd_obs::collect(|| self.train(sources));
        result.map(|()| TrainReport { metrics })
    }

    /// [`Self::match_source`] wrapped in an observability collection:
    /// returns the outcome plus a [`MatchReport`] with A\* search counters,
    /// constraint evaluations and per-learner predict wall time.
    ///
    /// # Errors
    /// As for [`Self::match_source`].
    pub fn match_source_with_report(
        &self,
        source: &Source,
    ) -> Result<(MatchOutcome, MatchReport), LsdError> {
        let (result, metrics) = lsd_obs::collect(|| self.match_source(source));
        result.map(|outcome| (outcome, MatchReport { metrics }))
    }

    /// [`Self::match_batch`] wrapped in an observability collection: one
    /// [`MatchReport`] aggregated across every source and worker thread.
    ///
    /// # Errors
    /// As for [`Self::match_batch`].
    pub fn match_batch_with_report(
        &self,
        sources: &[Source],
        policy: &ExecPolicy,
    ) -> Result<(Vec<MatchOutcome>, MatchReport), LsdError> {
        let (result, metrics) = lsd_obs::collect(|| self.match_batch(sources, policy));
        result.map(|outcomes| (outcomes, MatchReport { metrics }))
    }

    /// The per-source matching pipeline, over a constraint set the caller
    /// has already compiled (shared read-only by [`Self::match_batch`]'s
    /// workers).
    fn match_one(
        &self,
        source: &Source,
        feedback: &[DomainConstraint],
        domain: &CompiledConstraintSet,
    ) -> Result<MatchOutcome, LsdError> {
        let _span = lsd_obs::span!("match.source");
        let schema = SchemaTree::from_dtd(&source.dtd).map_err(|e| LsdError::InvalidSchema {
            source: source.name.clone(),
            detail: e.to_string(),
        })?;
        let tags: Vec<String> = schema.tag_names().map(str::to_string).collect();

        // Extract and (deterministically) subsample the instance columns.
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut columns = extract_instances(&source.listings);
        for tag in &tags {
            if let Some(instances) = columns.get_mut(tag) {
                subsample(instances, self.config.max_match_instances_per_tag, &mut rng);
            }
        }
        let empty: Vec<Instance> = Vec::new();

        // Per-learner wall-time accumulators, flushed once per source so
        // the per-instance loop never touches the metrics registry.
        let obs_on = lsd_obs::enabled();
        let num_learners = self.learners.len();
        let mut predict_ns = vec![0u64; num_learners];
        let mut predict_calls = vec![0u64; num_learners];
        let mut timed_predict = |j: usize, inst: &Instance| {
            if obs_on {
                let t0 = Instant::now();
                let pred = self.learners[j].predict(inst);
                predict_ns[j] += t0.elapsed().as_nanos() as u64;
                predict_calls[j] += 1;
                pred
            } else {
                self.learners[j].predict(inst)
            }
        };

        // Stage 1: first-pass predictions from everything but the XML
        // learner.
        let stage1_learners: Vec<usize> = (0..num_learners)
            .filter(|i| Some(*i) != self.xml_index)
            .collect();
        let mut stage1_instance_preds: HashMap<&str, Vec<Vec<Prediction>>> = HashMap::new();
        let mut tag_predictions: Vec<Prediction> = Vec::with_capacity(tags.len());
        let mut instances_examined: Vec<usize> = Vec::with_capacity(tags.len());
        {
            let _stage = lsd_obs::span!("match.stage1");
            for tag in &tags {
                let instances = columns.get(tag.as_str()).unwrap_or(&empty);
                instances_examined.push(instances.len());
                let per_instance: Vec<Vec<Prediction>> = instances
                    .iter()
                    .map(|inst| {
                        stage1_learners
                            .iter()
                            .map(|&j| timed_predict(j, inst))
                            .collect()
                    })
                    .collect();
                let combined: Vec<Prediction> = per_instance
                    .iter()
                    .map(|preds| self.meta.combine_subset(preds, &stage1_learners))
                    .collect();
                tag_predictions.push(convert_column_with(
                    &combined,
                    self.labels.len(),
                    self.config.converter,
                ));
                stage1_instance_preds.insert(tag.as_str(), per_instance);
            }
        }

        // Stage 2: the XML learner votes with the stage-1 labelling as
        // structural context, and the meta-learner re-combines everything.
        // Its per-instance predictions are kept so the per-learner views
        // below need no second predict pass.
        let mut xml_instance_preds: HashMap<&str, Vec<Prediction>> = HashMap::new();
        if let Some(xml_idx) = self.xml_index {
            let _stage = lsd_obs::span!("match.stage2");
            let stage1_labels: HashMap<String, usize> = tags
                .iter()
                .zip(&tag_predictions)
                .map(|(t, p)| (t.clone(), p.best_label()))
                .collect();
            for (ti, tag) in tags.iter().enumerate() {
                let instances = columns.get(tag.as_str()).unwrap_or(&empty);
                let stage1 = &stage1_instance_preds[tag.as_str()];
                let mut xml_preds: Vec<Prediction> = Vec::with_capacity(instances.len());
                let combined: Vec<Prediction> = instances
                    .iter()
                    .zip(stage1)
                    .map(|(inst, s1_preds)| {
                        let ctx_inst = inst.clone().with_sub_labels(stage1_labels.clone());
                        let xml_pred = timed_predict(xml_idx, &ctx_inst);
                        // Reassemble the full prediction vector in learner
                        // order (stage-1 learners + XML learner).
                        let mut all: Vec<Prediction> = Vec::with_capacity(num_learners);
                        let mut s1 = s1_preds.iter();
                        for j in 0..num_learners {
                            if j == xml_idx {
                                all.push(xml_pred.clone());
                            } else {
                                all.push(s1.next().expect("stage-1 prediction").clone());
                            }
                        }
                        xml_preds.push(xml_pred);
                        self.meta.combine(&all)
                    })
                    .collect();
                tag_predictions[ti] =
                    convert_column_with(&combined, self.labels.len(), self.config.converter);
                xml_instance_preds.insert(tag.as_str(), xml_preds);
            }
        }

        // Per-learner tag-level views: each learner's instance column run
        // through the same converter as the combined pipeline. This is the
        // evidence behind `candidates()` and `explain_source`, captured from
        // the predictions already made above.
        let per_learner: Vec<Vec<Prediction>> = tags
            .iter()
            .map(|tag| {
                let stage1 = &stage1_instance_preds[tag.as_str()];
                (0..num_learners)
                    .map(|j| {
                        let column: Vec<Prediction> = if Some(j) == self.xml_index {
                            xml_instance_preds
                                .get(tag.as_str())
                                .cloned()
                                .unwrap_or_default()
                        } else {
                            let pos = stage1_learners
                                .iter()
                                .position(|&s| s == j)
                                .expect("stage-1 learner index");
                            stage1.iter().map(|preds| preds[pos].clone()).collect()
                        };
                        convert_column_with(&column, self.labels.len(), self.config.converter)
                    })
                    .collect()
            })
            .collect();

        if obs_on {
            lsd_obs::counter_add("match.sources", "", 1);
            lsd_obs::counter_add("match.tags", "", tags.len() as u64);
            lsd_obs::counter_add(
                "match.instances",
                "",
                instances_examined.iter().map(|&n| n as u64).sum(),
            );
            for (j, learner) in self.learners.iter().enumerate() {
                if predict_calls[j] > 0 {
                    // Wall time goes into histograms: counters must stay
                    // deterministic across thread counts.
                    lsd_obs::record_value("learner.predict_ns", learner.name(), predict_ns[j]);
                    lsd_obs::counter_add("learner.predict_calls", learner.name(), predict_calls[j]);
                }
            }
        }

        // Constraint handling. The context outlives the search so the
        // provenance pass below can re-evaluate candidate swaps against it.
        let data = build_source_data(tags.iter().map(String::as_str), &source.listings);
        let ctx = MatchingContext {
            labels: &self.labels,
            schema: &schema,
            tags: tags.clone(),
            predictions: tag_predictions.clone(),
            data: &data,
            alpha: self.config.alpha,
        };
        let result = {
            let _search = lsd_obs::span!("match.constraints");
            self.handler
                .find_mapping_precompiled(&ctx, domain, feedback)
        };
        let labels: Vec<String> = result
            .assignment
            .iter()
            .map(|&l| self.labels.name(l).to_string())
            .collect();
        let mapping: HashMap<String, String> = tags
            .iter()
            .zip(&labels)
            .filter(|(_, l)| *l != LabelSet::OTHER)
            .map(|(t, l)| (t.clone(), l.clone()))
            .collect();
        let candidates: Vec<Vec<LabelCandidate>> = tag_predictions
            .iter()
            .enumerate()
            .map(|(ti, pred)| {
                pred.ranked_labels()
                    .into_iter()
                    .map(|l| LabelCandidate {
                        label: self.labels.name(l).to_string(),
                        score: pred.score(l),
                        per_learner: per_learner[ti].iter().map(|v| v.score(l)).collect(),
                        label_id: l,
                    })
                    .collect()
            })
            .collect();
        // Decision provenance: classify why every candidate that outranked
        // the chosen label lost, against the same effective constraint set
        // the search used.
        let rejections = {
            let _span = lsd_obs::span!("match.provenance");
            let extended;
            let set = if feedback.is_empty() {
                domain
            } else {
                extended = domain.with_extra(&self.labels, feedback);
                &extended
            };
            compute_rejections(&ctx, set, &result, &candidates)
        };
        Ok(MatchOutcome {
            tags,
            predictions: tag_predictions,
            result,
            labels,
            mapping,
            learner_names: self.learners.iter().map(|l| l.name()).collect(),
            per_learner,
            candidates,
            instances_examined,
            meta_weights: self.meta.weight_matrix().to_vec(),
            rejections,
        })
    }

    /// Explains how each base learner sees each tag of a source: one
    /// tag-level (converted) prediction per learner, using the true
    /// two-stage protocol for the XML learner. This is the diagnostic
    /// behind "why did LSD map X to Y?" — the lesion studies of the paper
    /// in miniature, per tag.
    ///
    /// # Errors
    /// As for [`Self::match_source`].
    pub fn explain_source(&self, source: &Source) -> Result<Vec<TagExplanation>, LsdError> {
        self.ensure_trained("explain_source")?;
        // The per-learner views are captured during the match pass itself
        // (see `match_one`), so explaining costs one pipeline run instead of
        // the former run-then-re-predict-everything double pass.
        let outcome = self.match_source(source)?;
        Ok(outcome
            .tags
            .iter()
            .enumerate()
            .map(|(ti, tag)| TagExplanation {
                tag: tag.clone(),
                per_learner: outcome
                    .learner_names
                    .iter()
                    .zip(&outcome.per_learner[ti])
                    .map(|(name, pred)| (name.to_string(), pred.clone()))
                    .collect(),
                combined: outcome.predictions[ti].clone(),
                instances_examined: outcome.instances_examined[ti],
            })
            .collect())
    }
}

/// Classifies, per tag, why each candidate ranked above the chosen label
/// lost: swap the candidate into the final assignment (everything else
/// fixed), re-evaluate, and read off the verdict — hard-constraint
/// violations, a cost increase, or an early-stopped search (see
/// [`RejectionReason`]). When the search itself fell back to an infeasible
/// assignment, a candidate is blamed only for the hard violations it would
/// *introduce* on top of the base assignment's own.
fn compute_rejections(
    ctx: &MatchingContext<'_>,
    set: &CompiledConstraintSet,
    result: &MappingResult,
    candidates: &[Vec<LabelCandidate>],
) -> Vec<Vec<Option<RejectionReason>>> {
    let eval = Evaluator::with_compiled(ctx, set);
    let mut scratch = eval.scratch();
    let mut assignment: Vec<Option<usize>> = result.assignment.iter().map(|&l| Some(l)).collect();
    let base_cost = eval.evaluate(&assignment, &mut scratch);
    // Hard violations the final assignment already carries (empty when the
    // mapping is feasible). A candidate is blamed only for violations it
    // *introduces* beyond these, so explanations stay meaningful even when
    // the search fell back to an infeasible assignment.
    let base_violations: Vec<String> = eval
        .violations(&assignment, &mut scratch)
        .into_iter()
        .filter(|v| v.hard && v.violation > 0.0)
        .map(|v| v.description)
        .collect();
    candidates
        .iter()
        .enumerate()
        .map(|(ti, cands)| {
            let chosen = result.assignment[ti];
            let chosen_rank = cands.iter().position(|c| c.label_id == chosen);
            cands
                .iter()
                .enumerate()
                .map(|(rank, cand)| {
                    // Only candidates strictly above the chosen label need
                    // explaining — lower-ranked ones lost on score alone.
                    match chosen_rank {
                        Some(cr) if rank < cr => {}
                        _ => return None,
                    }
                    assignment[ti] = Some(cand.label_id);
                    let cost = eval.evaluate(&assignment, &mut scratch);
                    let introduced: Vec<String> = if cost >= INFEASIBLE {
                        let mut budget = base_violations.clone();
                        eval.violations(&assignment, &mut scratch)
                            .into_iter()
                            .filter(|v| v.hard && v.violation > 0.0)
                            .map(|v| v.description)
                            .filter(|d| {
                                // Multiset subtraction: keep only violations
                                // the base assignment does not already have.
                                match budget.iter().position(|b| b == d) {
                                    Some(i) => {
                                        budget.swap_remove(i);
                                        false
                                    }
                                    None => true,
                                }
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let reason = if !introduced.is_empty() {
                        RejectionReason::Constraint {
                            violated: introduced,
                        }
                    } else if cost > base_cost {
                        RejectionReason::CostlierMapping {
                            delta_cost: cost - base_cost,
                        }
                    } else {
                        RejectionReason::SearchIncomplete {
                            delta_cost: cost - base_cost,
                        }
                    };
                    assignment[ti] = Some(chosen);
                    Some(reason)
                })
                .collect()
        })
        .collect()
}

/// The per-learner view of one source tag (see [`Lsd::explain_source`]).
#[derive(Debug, Clone)]
pub struct TagExplanation {
    /// The source tag.
    pub tag: String,
    /// `(learner name, tag-level prediction)` per base learner, in
    /// combination order.
    pub per_learner: Vec<(String, Prediction)>,
    /// The meta-combined, converted prediction the constraint handler saw.
    pub combined: Prediction,
    /// How many instances of the tag were examined.
    pub instances_examined: usize,
}

/// Truncates `instances` to at most `cap` elements chosen uniformly
/// (deterministically under the caller's RNG). `cap == 0` keeps everything.
fn subsample(instances: &mut Vec<Instance>, cap: usize, rng: &mut ChaCha8Rng) {
    if cap == 0 || instances.len() <= cap {
        return;
    }
    instances.shuffle(rng);
    instances.truncate(cap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::Correction;
    use crate::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
    use lsd_constraints::Predicate;
    use lsd_xml::{parse_dtd, parse_fragment};

    /// The paper's running example (Figures 2, 5, 6): mediated schema with
    /// ADDRESS / DESCRIPTION / AGENT-PHONE; train on realestate.com and
    /// homeseekers.com, match greathomes.com.
    fn mediated() -> Dtd {
        parse_dtd(
            "<!ELEMENT HOUSE (ADDRESS, DESCRIPTION, AGENT-PHONE)>\n\
             <!ELEMENT ADDRESS (#PCDATA)>\n\
             <!ELEMENT DESCRIPTION (#PCDATA)>\n\
             <!ELEMENT AGENT-PHONE (#PCDATA)>",
        )
        .unwrap()
    }

    fn realestate() -> TrainedSource {
        let dtd = parse_dtd(
            "<!ELEMENT house (location, comments, contact)>\n\
             <!ELEMENT location (#PCDATA)>\n<!ELEMENT comments (#PCDATA)>\n\
             <!ELEMENT contact (#PCDATA)>",
        )
        .unwrap();
        let rows = [
            ("Miami, FL", "Nice area near downtown", "(305) 729 0831"),
            (
                "Boston, MA",
                "Close to river, great views",
                "(617) 253 1429",
            ),
            (
                "Austin, TX",
                "Fantastic yard, beautiful trees",
                "(512) 441 8338",
            ),
            (
                "Denver, CO",
                "Great location close to park",
                "(303) 220 9154",
            ),
        ];
        let listings = rows
            .iter()
            .map(|(a, d, p)| {
                parse_fragment(&format!(
                    "<house><location>{a}</location><comments>{d}</comments>\
                     <contact>{p}</contact></house>"
                ))
                .unwrap()
            })
            .collect();
        TrainedSource {
            source: Source::from_xml("realestate.com", dtd, listings),
            mapping: HashMap::from([
                ("location".to_string(), "ADDRESS".to_string()),
                ("comments".to_string(), "DESCRIPTION".to_string()),
                ("contact".to_string(), "AGENT-PHONE".to_string()),
                ("house".to_string(), "HOUSE".to_string()),
            ]),
        }
    }

    fn homeseekers() -> TrainedSource {
        let dtd = parse_dtd(
            "<!ELEMENT listing (house-addr, detailed-desc, phone)>\n\
             <!ELEMENT house-addr (#PCDATA)>\n<!ELEMENT detailed-desc (#PCDATA)>\n\
             <!ELEMENT phone (#PCDATA)>",
        )
        .unwrap();
        let rows = [
            (
                "Seattle, WA",
                "Fantastic house, great schools",
                "(206) 753 2605",
            ),
            (
                "Portland, OR",
                "Great yard, close to highway",
                "(515) 273 4312",
            ),
            (
                "Spokane, WA",
                "Beautiful views of the river",
                "(509) 811 4200",
            ),
            (
                "Eugene, OR",
                "Nice neighborhood, fantastic deck",
                "(541) 688 2442",
            ),
        ];
        let listings = rows
            .iter()
            .map(|(a, d, p)| {
                parse_fragment(&format!(
                    "<listing><house-addr>{a}</house-addr>\
                     <detailed-desc>{d}</detailed-desc><phone>{p}</phone></listing>"
                ))
                .unwrap()
            })
            .collect();
        TrainedSource {
            source: Source::from_xml("homeseekers.com", dtd, listings),
            mapping: HashMap::from([
                ("house-addr".to_string(), "ADDRESS".to_string()),
                ("detailed-desc".to_string(), "DESCRIPTION".to_string()),
                ("phone".to_string(), "AGENT-PHONE".to_string()),
                ("listing".to_string(), "HOUSE".to_string()),
            ]),
        }
    }

    fn greathomes() -> Source {
        let dtd = parse_dtd(
            "<!ELEMENT home (area, extra-info, contact-phone)>\n\
             <!ELEMENT area (#PCDATA)>\n<!ELEMENT extra-info (#PCDATA)>\n\
             <!ELEMENT contact-phone (#PCDATA)>",
        )
        .unwrap();
        let rows = [
            (
                "Orlando, FL",
                "Spacious rooms with great light",
                "(315) 237 4379",
            ),
            ("Kent, WA", "Close to highway, nice yard", "(415) 273 1234"),
            (
                "Portland, OR",
                "Great location near schools",
                "(515) 237 4244",
            ),
        ];
        let listings = rows
            .iter()
            .map(|(a, d, p)| {
                parse_fragment(&format!(
                    "<home><area>{a}</area><extra-info>{d}</extra-info>\
                     <contact-phone>{p}</contact-phone></home>"
                ))
                .unwrap()
            })
            .collect();
        Source::from_xml("greathomes.com", dtd, listings)
    }

    fn build_system() -> Lsd {
        let mediated = mediated();
        let builder = LsdBuilder::new(&mediated);
        let n = builder.labels().len();
        builder
            .add_learner(Box::new(NameMatcher::with_synonym_pairs(
                n,
                [("location", "address"), ("comments", "description")],
            )))
            .add_learner(Box::new(ContentMatcher::new(n)))
            .add_learner(Box::new(NaiveBayesLearner::new(n)))
            .with_constraints(vec![
                DomainConstraint::hard(Predicate::AtMostOne {
                    label: "ADDRESS".into(),
                }),
                // Frequency + nesting constraints pin the root tag, exactly
                // as a real domain specification would (Table 1).
                DomainConstraint::hard(Predicate::ExactlyOne {
                    label: "HOUSE".into(),
                }),
                DomainConstraint::hard(Predicate::NestedIn {
                    outer: "HOUSE".into(),
                    inner: "ADDRESS".into(),
                }),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn figure2_end_to_end() {
        let mut lsd = build_system();
        assert!(!lsd.is_trained());
        lsd.train(&[realestate(), homeseekers()]).unwrap();
        assert!(lsd.is_trained());

        let outcome = lsd.match_source(&greathomes()).unwrap();
        assert!(outcome.result.feasible);
        assert_eq!(outcome.label_of("area"), Some("ADDRESS"));
        assert_eq!(outcome.label_of("extra-info"), Some("DESCRIPTION"));
        assert_eq!(outcome.label_of("contact-phone"), Some("AGENT-PHONE"));
        assert_eq!(outcome.label_of("home"), Some("HOUSE"));
        let mapping = outcome.mapping();
        assert_eq!(mapping.len(), 4);
    }

    #[test]
    fn feedback_constrains_current_source_only() {
        let mut lsd = build_system();
        lsd.train(&[realestate(), homeseekers()]).unwrap();
        let fb = Feedback::from_corrections(vec![Correction::tag_is("extra-info", "ADDRESS")]);
        let outcome = lsd.match_source_with(&greathomes(), &fb).unwrap();
        assert_eq!(outcome.label_of("extra-info"), Some("ADDRESS"));
        // A later call without feedback is unaffected.
        let outcome2 = lsd.match_source(&greathomes()).unwrap();
        assert_eq!(outcome2.label_of("extra-info"), Some("DESCRIPTION"));
    }

    #[test]
    fn learner_names_listed_in_order() {
        let lsd = build_system();
        assert_eq!(
            lsd.learner_names(),
            vec!["name-matcher", "content-matcher", "naive-bayes"]
        );
    }

    #[test]
    fn meta_weights_are_trained() {
        let mut lsd = build_system();
        lsd.train(&[realestate(), homeseekers()]).unwrap();
        let ml = lsd.meta_learner();
        assert_eq!(ml.num_labels(), lsd.labels().len());
        assert_eq!(ml.num_learners(), 3);
        // Weights are non-uniform after training on real data.
        let uniform = MetaLearner::uniform(lsd.labels().len(), 3);
        assert_ne!(ml, &uniform);
    }

    #[test]
    fn xml_learner_stage_runs() {
        let mediated = mediated();
        let builder = LsdBuilder::new(&mediated);
        let n = builder.labels().len();
        let mut lsd = builder
            .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, [])))
            .add_learner(Box::new(NaiveBayesLearner::new(n)))
            .with_xml_learner(None)
            .build()
            .unwrap();
        lsd.train(&[realestate(), homeseekers()]).unwrap();
        assert_eq!(lsd.learner_names().last(), Some(&"xml-learner"));
        let outcome = lsd.match_source(&greathomes()).unwrap();
        assert_eq!(outcome.label_of("contact-phone"), Some("AGENT-PHONE"));
    }

    #[test]
    fn empty_builder_errors() {
        let mediated = mediated();
        match LsdBuilder::new(&mediated).build() {
            Err(LsdError::NoLearners) => {}
            Err(other) => panic!("expected NoLearners, got {other:?}"),
            Ok(_) => panic!("expected NoLearners, got a system"),
        }
    }

    #[test]
    fn matching_before_training_errors() {
        let lsd = build_system();
        assert!(matches!(
            lsd.match_source(&greathomes()),
            Err(LsdError::NotTrained {
                operation: "match_source"
            })
        ));
        assert!(matches!(
            lsd.match_batch(&[greathomes()], &ExecPolicy::default()),
            Err(LsdError::NotTrained {
                operation: "match_batch"
            })
        ));
        assert!(matches!(
            lsd.explain_source(&greathomes()),
            Err(LsdError::NotTrained {
                operation: "explain_source"
            })
        ));
    }

    #[test]
    fn training_on_nothing_errors() {
        let mut lsd = build_system();
        assert!(matches!(lsd.train(&[]), Err(LsdError::NoTrainingData)));
        assert!(!lsd.is_trained());
    }

    #[test]
    fn malformed_dtd_reports_invalid_schema() {
        let mut lsd = build_system();
        lsd.train(&[realestate(), homeseekers()]).unwrap();
        let mut bad = greathomes();
        // An element content model referring to an undeclared element makes
        // the schema unbuildable.
        bad.dtd = parse_dtd("<!ELEMENT home (ghost)>").unwrap();
        let err = lsd.match_source(&bad).unwrap_err();
        match err {
            LsdError::InvalidSchema { source, .. } => assert_eq!(source, "greathomes.com"),
            other => panic!("expected InvalidSchema, got {other:?}"),
        }
    }

    #[test]
    fn match_batch_agrees_with_serial_and_all_thread_counts() {
        let mut lsd = build_system();
        lsd.train(&[realestate(), homeseekers()]).unwrap();
        let sources = vec![
            greathomes(),
            greathomes(),
            greathomes(),
            greathomes(),
            greathomes(),
        ];
        let serial: Vec<MatchOutcome> = sources
            .iter()
            .map(|s| lsd.match_source(s).unwrap())
            .collect();
        for threads in [1, 2, 8] {
            let batch = lsd
                .match_batch(&sources, &ExecPolicy::with_threads(threads))
                .unwrap();
            assert_eq!(batch.len(), serial.len());
            for (b, s) in batch.iter().zip(&serial) {
                assert_eq!(b.tags, s.tags, "{threads} threads");
                assert_eq!(b.labels, s.labels, "{threads} threads");
                assert_eq!(b.result.assignment, s.result.assignment);
                assert_eq!(b.result.cost.to_bits(), s.result.cost.to_bits());
            }
        }
    }

    #[test]
    fn explain_source_reports_all_learners() {
        let mut lsd = build_system();
        lsd.train(&[realestate(), homeseekers()]).unwrap();
        let explanations = lsd.explain_source(&greathomes()).unwrap();
        assert_eq!(explanations.len(), 4); // home, area, extra-info, contact-phone
        let area = explanations
            .iter()
            .find(|e| e.tag == "area")
            .expect("area explained");
        assert_eq!(area.per_learner.len(), 3);
        assert!(area.instances_examined > 0);
        // The combined view matches what match_source produced.
        let outcome = lsd.match_source(&greathomes()).unwrap();
        let i = outcome
            .tags
            .iter()
            .position(|t| t == "area")
            .expect("area matched");
        assert_eq!(
            area.combined.best_label(),
            outcome.predictions[i].best_label()
        );
        // Learner names are reported in combination order.
        let names: Vec<&str> = area.per_learner.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["name-matcher", "content-matcher", "naive-bayes"]
        );
    }

    #[test]
    fn explain_includes_xml_learner_second_stage() {
        let mediated = mediated();
        let builder = LsdBuilder::new(&mediated);
        let n = builder.labels().len();
        let mut lsd = builder
            .add_learner(Box::new(NaiveBayesLearner::new(n)))
            .with_xml_learner(None)
            .build()
            .unwrap();
        lsd.train(&[realestate(), homeseekers()]).unwrap();
        let explanations = lsd.explain_source(&greathomes()).unwrap();
        let names: Vec<&str> = explanations[0]
            .per_learner
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["naive-bayes", "xml-learner"]);
    }

    #[test]
    fn subsample_caps_deterministically() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let make = || {
            (0..10)
                .map(|i| {
                    Instance::new(
                        lsd_xml::Element::text_leaf("t", i.to_string()),
                        vec!["t".into()],
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut a = make();
        subsample(&mut a, 3, &mut rng);
        assert_eq!(a.len(), 3);
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let mut b = make();
        subsample(&mut b, 3, &mut rng2);
        let texts = |v: &[Instance]| v.iter().map(Instance::text).collect::<Vec<_>>();
        assert_eq!(texts(&a), texts(&b));
        let mut c = make();
        subsample(&mut c, 0, &mut rng);
        assert_eq!(c.len(), 10);
    }
}
