//! An embedded database of U.S. county names.
//!
//! The paper's County-Name Recognizer "searches a database (extracted from
//! the Web) to verify if an XML element is a county name" (Section 3.3).
//! The original web-extracted database is not available; this embedded list
//! of real U.S. county names is the substitution (see DESIGN.md) — it
//! exercises the same code path: a narrow, high-precision membership test.

/// Real U.S. county names (lowercase, without the word "county").
pub const US_COUNTIES: &[&str] = &[
    "king",
    "pierce",
    "snohomish",
    "spokane",
    "clark",
    "thurston",
    "kitsap",
    "yakima",
    "whatcom",
    "benton",
    "skagit",
    "cowlitz",
    "grant",
    "franklin",
    "island",
    "lewis",
    "chelan",
    "clallam",
    "grays harbor",
    "mason",
    "walla walla",
    "whitman",
    "stevens",
    "okanogan",
    "jefferson",
    "douglas",
    "kittitas",
    "pacific",
    "klickitat",
    "asotin",
    "adams",
    "lincoln",
    "pend oreille",
    "ferry",
    "wahkiakum",
    "san juan",
    "columbia",
    "garfield",
    "miami-dade",
    "broward",
    "palm beach",
    "hillsborough",
    "orange",
    "pinellas",
    "duval",
    "lee",
    "polk",
    "brevard",
    "volusia",
    "pasco",
    "seminole",
    "sarasota",
    "manatee",
    "collier",
    "marion",
    "osceola",
    "lake",
    "escambia",
    "leon",
    "alachua",
    "st. johns",
    "suffolk",
    "nassau",
    "westchester",
    "erie",
    "monroe",
    "richmond",
    "oneida",
    "niagara",
    "oswego",
    "dutchess",
    "albany",
    "cook",
    "dupage",
    "will",
    "kane",
    "mclean",
    "peoria",
    "sangamon",
    "champaign",
    "madison",
    "st. clair",
    "winnebago",
    "rock island",
    "la salle",
    "knox",
    "los angeles",
    "san diego",
    "riverside",
    "san bernardino",
    "santa clara",
    "alameda",
    "sacramento",
    "contra costa",
    "fresno",
    "kern",
    "ventura",
    "san francisco",
    "san mateo",
    "stanislaus",
    "sonoma",
    "tulare",
    "santa barbara",
    "solano",
    "monterey",
    "placer",
    "san joaquin",
    "merced",
    "santa cruz",
    "marin",
    "butte",
    "yolo",
    "el dorado",
    "imperial",
    "shasta",
    "harris",
    "dallas",
    "tarrant",
    "bexar",
    "travis",
    "collin",
    "denton",
    "el paso",
    "fort bend",
    "hidalgo",
    "montgomery",
    "williamson",
    "cameron",
    "nueces",
    "brazoria",
    "galveston",
    "bell",
    "lubbock",
    "webb",
    "jefferson davis",
    "mclennan",
    "middlesex",
    "worcester",
    "essex",
    "norfolk",
    "bristol",
    "plymouth",
    "hampden",
    "barnstable",
    "hampshire",
    "berkshire",
    "multnomah",
    "washington",
    "clackamas",
    "lane",
    "jackson",
    "deschutes",
    "linn",
    "yamhill",
    "benton hills",
];

/// True if `value` is a U.S. county name, optionally suffixed with the word
/// "county" (case-insensitive, surrounding whitespace ignored).
pub fn is_county_name(value: &str) -> bool {
    let v = value.trim().to_lowercase();
    let v = v.strip_suffix(" county").unwrap_or(&v);
    US_COUNTIES.contains(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_plain_and_suffixed_names() {
        assert!(is_county_name("King"));
        assert!(is_county_name("king county"));
        assert!(is_county_name("  Santa Clara "));
        assert!(is_county_name("Miami-Dade"));
    }

    #[test]
    fn rejects_non_counties() {
        assert!(!is_county_name("Seattle"));
        assert!(!is_county_name(""));
        assert!(!is_county_name("county"));
    }

    #[test]
    fn list_is_lowercase_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in US_COUNTIES {
            assert_eq!(*c, c.to_lowercase(), "{c} must be lowercase");
            assert!(seen.insert(c), "{c} duplicated");
        }
    }
}
