//! The error type of the public LSD pipeline API.
//!
//! Every fallible entry point on [`crate::Lsd`] and [`crate::LsdBuilder`]
//! returns [`LsdError`] instead of panicking, so misuse (building without
//! learners, matching before training, feeding a malformed source DTD) is
//! reportable and recoverable — a requirement for the batch engine, where
//! one bad source must not take down the other workers.

use crate::persist::PersistError;
use std::fmt;

/// Errors from the LSD pipeline.
#[derive(Debug)]
pub enum LsdError {
    /// [`crate::LsdBuilder::build`] was called without any base learner
    /// (and without the XML learner).
    NoLearners,
    /// A matching entry point was called before [`crate::Lsd::train`].
    NotTrained {
        /// The operation that was attempted, e.g. `match_source`.
        operation: &'static str,
    },
    /// [`crate::Lsd::train`] was given sources that produced no training
    /// examples (empty source list, or no listings in any source).
    NoTrainingData,
    /// A source DTD could not be turned into a schema tree (unclosed or
    /// rootless grammar).
    InvalidSchema {
        /// The source's display name.
        source: String,
        /// What the schema builder rejected.
        detail: String,
    },
    /// [`crate::Lsd::set_constraints`] was given a constraint referencing
    /// a label that is not part of the mediated schema. Accepting it would
    /// compile to a constraint that can never fire — almost always a typo
    /// the caller wants to hear about.
    UnknownLabel {
        /// The unresolvable label name.
        label: String,
    },
    /// The static-analysis pass found error-severity diagnostics in the
    /// mediated schema, a training source's schema, or the constraint set.
    /// Warnings alone never produce this error — they pass through and are
    /// counted in the metrics registry.
    Analysis {
        /// Every diagnostic the pass produced (warnings included, so the
        /// caller can render the full report with
        /// `lsd_analysis::render_all`).
        diagnostics: Vec<lsd_analysis::Diagnostic>,
    },
    /// [`crate::Lsd::train_incremental`] was called while at least one
    /// base learner cannot extend its trained state (e.g. it was restored
    /// from a snapshot without its raw training documents). Incremental
    /// training is all-or-nothing: no learner is modified.
    WarmStartUnsupported {
        /// Display name of the first learner that refused.
        learner: String,
    },
    /// Saving or loading a model failed.
    Persist(PersistError),
}

impl fmt::Display for LsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsdError::NoLearners => {
                write!(f, "LSD needs at least one base learner before build()")
            }
            LsdError::NotTrained { operation } => {
                write!(
                    f,
                    "{operation} requires a trained system; call train() first"
                )
            }
            LsdError::NoTrainingData => {
                write!(f, "training sources produced no examples")
            }
            LsdError::InvalidSchema { source, detail } => {
                write!(f, "source '{source}' has an invalid schema: {detail}")
            }
            LsdError::UnknownLabel { label } => {
                write!(
                    f,
                    "constraint references label '{label}', which is not in the mediated schema"
                )
            }
            LsdError::Analysis { diagnostics } => {
                let errors = diagnostics.iter().filter(|d| d.is_error()).count();
                write!(
                    f,
                    "static analysis found {errors} error{}",
                    if errors == 1 { "" } else { "s" }
                )?;
                if let Some(first) = diagnostics.iter().find(|d| d.is_error()) {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            LsdError::WarmStartUnsupported { learner } => {
                write!(
                    f,
                    "learner '{learner}' cannot warm-start from its current state; \
                     retrain from scratch instead"
                )
            }
            LsdError::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LsdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LsdError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for LsdError {
    fn from(e: PersistError) -> Self {
        LsdError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(LsdError::NoLearners.to_string().contains("base learner"));
        let e = LsdError::NotTrained {
            operation: "match_source",
        };
        assert!(e.to_string().contains("match_source"));
        let e = LsdError::InvalidSchema {
            source: "s.com".into(),
            detail: "no root".into(),
        };
        assert!(e.to_string().contains("s.com"));
        assert!(e.to_string().contains("no root"));
    }

    #[test]
    fn persist_errors_chain_as_source() {
        let e: LsdError = PersistError::UnsupportedLearner { name: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
