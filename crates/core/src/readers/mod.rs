//! Format-agnostic source ingestion: the [`SourceReader`] trait.
//!
//! The paper assumes every source ships XML listings plus a DTD. Real
//! matching workloads span heterogeneous serializations behind one logical
//! schema, so ingestion is redesigned around one trait: a reader normalizes
//! a foreign serialization into the canonical internal representation —
//! a [`Dtd`] schema skeleton plus [`Element`] listing trees — and
//! [`crate::Source::from_reader`] is the one constructor over it. Every
//! learner, the constraint handler, and the serve endpoints then work
//! unchanged, because they only ever see the canonical representation.
//!
//! Four readers ship with the crate:
//!
//! | Reader | Format | Schema skeleton |
//! |---|---|---|
//! | [`XmlReader`] | XML + DTD, or a bare container document | the DTD, or synthesized |
//! | [`JsonReader`] | JSON document(s); keys → tags, nesting preserved | synthesized |
//! | [`CsvReader`] | CSV with a header row; columns → flat tags | synthesized |
//! | [`SqlReader`] | SQL `CREATE TABLE` DDL (+ optional `INSERT`s) | from the DDL: columns + FK edges |
//!
//! Non-XML sources get a *synthesized grammar* ([`synthesize_dtd`]): a
//! closed, 1-unambiguous DTD inferred from the listing trees, so the
//! static-analysis pass behind [`crate::Lsd::analyze`] and
//! [`crate::Lsd::train`] gates them exactly like native XML sources.

mod csv;
mod json;
mod sql;
mod xml;

pub use csv::CsvReader;
pub use json::JsonReader;
pub use sql::SqlReader;
pub use xml::XmlReader;

use lsd_xml::{ContentModel, Dtd, Element, ElementDecl, Occurrence};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The serialization a [`crate::Source`] was ingested from. Recorded on the
/// source itself and, per trained source, in the persisted snapshot
/// (`SavedModel::source_provenance`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SourceFormat {
    /// XML listings with a DTD — the paper's native representation.
    #[default]
    Xml,
    /// JSON documents (keys → tags, nesting preserved).
    Json,
    /// CSV with a header row (columns → flat tags).
    Csv,
    /// SQL `CREATE TABLE` DDL, columns + foreign-key edges as structure.
    Sql,
}

impl SourceFormat {
    /// The canonical media type for HTTP content negotiation.
    pub fn media_type(self) -> &'static str {
        match self {
            SourceFormat::Xml => "application/xml",
            SourceFormat::Json => "application/json",
            SourceFormat::Csv => "text/csv",
            SourceFormat::Sql => "application/sql",
        }
    }
}

impl fmt::Display for SourceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SourceFormat::Xml => "xml",
            SourceFormat::Json => "json",
            SourceFormat::Csv => "csv",
            SourceFormat::Sql => "sql",
        };
        f.write_str(name)
    }
}

/// A reader failed to normalize its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// The format the failing reader handles.
    pub format: SourceFormat,
    /// What was wrong with the input.
    pub detail: String,
}

impl ReadError {
    pub(crate) fn new(format: SourceFormat, detail: impl Into<String>) -> Self {
        ReadError {
            format,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot read {} source: {}", self.format, self.detail)
    }
}

impl std::error::Error for ReadError {}

/// What a reader yields: the canonical internal representation of a source.
#[derive(Debug, Clone)]
pub struct SourceContents {
    /// The schema skeleton — native for XML, synthesized or DDL-derived
    /// otherwise. Always closed, so `SchemaTree::from_dtd` succeeds.
    pub dtd: Dtd,
    /// The listing trees the instance extractor runs over.
    pub listings: Vec<Element>,
}

/// One instance model for every serialization: a reader normalizes its
/// input into a [`SourceContents`] — the `Dtd` + `Vec<Element>` pair the
/// whole pipeline (extraction, learners, constraints, serving) is written
/// against. Implement this to teach LSD a new serialization; nothing
/// downstream needs to change.
pub trait SourceReader {
    /// The serialization this reader handles, recorded as provenance on the
    /// constructed [`crate::Source`].
    fn format(&self) -> SourceFormat;

    /// Normalizes the input.
    ///
    /// # Errors
    /// [`ReadError`] when the input cannot be parsed or does not form a
    /// coherent source (e.g. listings with differing root tags, or a SQL
    /// schema whose foreign keys do not form a tree).
    fn read(&self) -> Result<SourceContents, ReadError>;
}

/// Sanitizes an arbitrary string (JSON key, CSV column, SQL identifier)
/// into a valid XML element name: invalid characters become `_`, and a
/// leading digit (or empty input) gets a `f` prefix.
pub(crate) fn sanitize_tag(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.trim().chars() {
        if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.') {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    match out.chars().next() {
        None => "field".to_string(),
        Some(c) if c.is_ascii_digit() || c == '-' || c == '.' => format!("f{out}"),
        Some(_) => out,
    }
}

/// Per-parent statistics gathered while walking the listing trees, from
/// which [`synthesize_dtd`] derives one element declaration.
#[derive(Default)]
struct TagStats {
    /// Child tags in first-seen document order.
    child_order: Vec<String>,
    /// Fewest occurrences of each child across all occurrences of the parent.
    child_min: HashMap<String, usize>,
    /// Most occurrences of each child across all occurrences of the parent.
    child_max: HashMap<String, usize>,
    /// Whether any occurrence carried non-whitespace direct text.
    has_text: bool,
    /// How many times the parent tag occurred.
    occurrences: usize,
}

/// Infers a closed, 1-unambiguous DTD from listing trees: the schema
/// skeleton for sources that do not ship one. Leaves become `(#PCDATA)`;
/// elements mixing text and children become `(#PCDATA | a | b)*`; pure
/// containers become an ordered sequence of their child tags (first-seen
/// order) with occurrence suffixes derived from the observed min/max
/// counts. Every tag gets exactly one declaration, so the grammar passes
/// the static-analysis gate (`LSD001`/`LSD002`/`LSD105`) that
/// [`crate::Lsd::train`] runs over training-source schemas.
///
/// # Errors
/// A description of the problem when `listings` is empty or the listings
/// do not share one root tag (the DTD's root would be ill-defined).
pub fn synthesize_dtd(listings: &[Element]) -> Result<Dtd, String> {
    let Some(first) = listings.first() else {
        return Err("cannot synthesize a grammar from zero listings".to_string());
    };
    if let Some(odd) = listings.iter().find(|l| l.name != first.name) {
        return Err(format!(
            "listings must share one root tag, found both <{}> and <{}>",
            first.name, odd.name
        ));
    }

    let mut stats: HashMap<String, TagStats> = HashMap::new();
    let mut decl_order: Vec<String> = Vec::new();
    for listing in listings {
        collect_stats(listing, &mut stats, &mut decl_order);
    }

    let decls = decl_order
        .iter()
        .map(|tag| {
            let stat = &stats[tag];
            let content = if stat.child_order.is_empty() {
                ContentModel::Pcdata
            } else if stat.has_text {
                ContentModel::Mixed(stat.child_order.clone())
            } else {
                let parts = stat
                    .child_order
                    .iter()
                    .map(|child| {
                        let min = stat.child_min.get(child).copied().unwrap_or(0);
                        let max = stat.child_max.get(child).copied().unwrap_or(0);
                        let occ = match (min, max) {
                            (0, max) if max > 1 => Occurrence::ZeroOrMore,
                            (_, max) if max > 1 => Occurrence::OneOrMore,
                            (0, _) => Occurrence::Optional,
                            _ => Occurrence::One,
                        };
                        ContentModel::Name(child.clone(), occ)
                    })
                    .collect();
                ContentModel::Seq(parts, Occurrence::One)
            };
            ElementDecl::new(tag.clone(), content)
        })
        .collect();
    Dtd::new(decls).map_err(|e| e.to_string())
}

fn collect_stats(e: &Element, stats: &mut HashMap<String, TagStats>, decl_order: &mut Vec<String>) {
    if !stats.contains_key(&e.name) {
        decl_order.push(e.name.clone());
    }
    let previously_seen = stats
        .get(&e.name)
        .map(|s| s.occurrences)
        .unwrap_or_default();
    // Count this occurrence's children per tag, in first-seen order.
    let mut counts: Vec<(String, usize)> = Vec::new();
    for child in e.child_elements() {
        match counts.iter_mut().find(|(name, _)| *name == child.name) {
            Some((_, n)) => *n += 1,
            None => counts.push((child.name.clone(), 1)),
        }
    }
    let stat = stats.entry(e.name.clone()).or_default();
    stat.has_text |= !e.direct_text().is_empty();
    for (child, n) in &counts {
        if !stat.child_order.contains(child) {
            stat.child_order.push(child.clone());
            // A child first seen now was absent from every earlier
            // occurrence of this parent.
            let min = if previously_seen > 0 { 0 } else { *n };
            stat.child_min.insert(child.clone(), min);
            stat.child_max.insert(child.clone(), *n);
        } else {
            let min = stat.child_min.entry(child.clone()).or_insert(*n);
            *min = (*min).min(*n);
            let max = stat.child_max.entry(child.clone()).or_insert(*n);
            *max = (*max).max(*n);
        }
    }
    // Known children absent from this occurrence drop to min 0.
    let absent: Vec<String> = stat
        .child_order
        .iter()
        .filter(|known| !counts.iter().any(|(name, _)| name == *known))
        .cloned()
        .collect();
    for child in absent {
        stat.child_min.insert(child, 0);
    }
    stat.occurrences += 1;
    for child in e.child_elements() {
        collect_stats(child, stats, decl_order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::{parse_fragment, SchemaTree};

    fn frag(s: &str) -> Element {
        parse_fragment(s).expect("well-formed")
    }

    #[test]
    fn sanitize_tag_produces_valid_names() {
        assert_eq!(sanitize_tag("agent phone"), "agent_phone");
        assert_eq!(sanitize_tag("agent-phone"), "agent-phone");
        assert_eq!(sanitize_tag("3beds"), "f3beds");
        assert_eq!(sanitize_tag(""), "field");
        assert_eq!(sanitize_tag("  price ($) "), "price____");
    }

    #[test]
    fn synthesized_dtd_is_closed_and_roots_correctly() {
        let listings = vec![
            frag("<home><area>Miami</area><price>1</price></home>"),
            frag("<home><area>Kent</area><price>2</price></home>"),
        ];
        let dtd = synthesize_dtd(&listings).expect("synthesizes");
        assert!(dtd.check_closed().is_ok());
        assert_eq!(dtd.root_name().expect("rooted"), "home");
        assert!(SchemaTree::from_dtd(&dtd).is_ok());
        for listing in &listings {
            assert!(dtd.validate(listing).is_ok(), "listing validates");
        }
    }

    #[test]
    fn occurrences_reflect_observed_counts() {
        let listings = vec![
            frag("<r><a>1</a><b>x</b><b>y</b></r>"),
            frag("<r><a>2</a></r>"),
        ];
        let dtd = synthesize_dtd(&listings).expect("synthesizes");
        let decl = dtd.decl("r").expect("declared");
        let rendered = decl.content.to_dtd_syntax();
        assert_eq!(rendered, "(a, b*)", "a is required, b repeats or vanishes");
        for listing in &listings {
            assert!(dtd.validate(listing).is_ok());
        }
    }

    #[test]
    fn text_plus_children_becomes_mixed() {
        let listings = vec![frag("<p>hello <b>world</b> again</p>")];
        let dtd = synthesize_dtd(&listings).expect("synthesizes");
        let rendered = dtd.decl("p").expect("declared").content.to_dtd_syntax();
        assert_eq!(rendered, "(#PCDATA | b)*");
        assert!(dtd.validate(&listings[0]).is_ok());
    }

    #[test]
    fn mismatched_roots_are_rejected() {
        let listings = vec![frag("<a/>"), frag("<b/>")];
        let err = synthesize_dtd(&listings).expect_err("rejects");
        assert!(err.contains("<a>") && err.contains("<b>"), "{err}");
    }

    #[test]
    fn zero_listings_are_rejected() {
        assert!(synthesize_dtd(&[]).is_err());
    }

    #[test]
    fn recursive_nesting_still_declares_once() {
        let listings = vec![frag(
            "<part><name>top</name><part><name>sub</name></part></part>",
        )];
        let dtd = synthesize_dtd(&listings).expect("synthesizes");
        assert_eq!(dtd.len(), 2);
        assert!(dtd.check_closed().is_ok());
        // The sub-part has no nested part, so recursion is optional and a
        // finite derivation exists.
        assert!(SchemaTree::from_dtd(&dtd).is_ok());
    }

    #[test]
    fn media_types_cover_all_formats() {
        assert_eq!(SourceFormat::Xml.media_type(), "application/xml");
        assert_eq!(SourceFormat::Json.media_type(), "application/json");
        assert_eq!(SourceFormat::Csv.media_type(), "text/csv");
        assert_eq!(SourceFormat::Sql.media_type(), "application/sql");
        assert_eq!(SourceFormat::default(), SourceFormat::Xml);
    }
}
