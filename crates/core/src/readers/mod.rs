//! Format-agnostic source ingestion: the [`SourceReader`] trait.
//!
//! The paper assumes every source ships XML listings plus a DTD. Real
//! matching workloads span heterogeneous serializations behind one logical
//! schema, so ingestion is redesigned around one trait: a reader normalizes
//! a foreign serialization into the canonical internal representation —
//! a [`Dtd`] schema skeleton plus [`Element`] listing trees — and
//! [`crate::Source::from_reader`] is the one constructor over it. Every
//! learner, the constraint handler, and the serve endpoints then work
//! unchanged, because they only ever see the canonical representation.
//!
//! Four readers ship with the crate:
//!
//! | Reader | Format | Schema skeleton |
//! |---|---|---|
//! | [`XmlReader`] | XML + DTD, or a bare container document | the DTD, or synthesized |
//! | [`JsonReader`] | JSON document(s); keys → tags, nesting preserved | synthesized |
//! | [`CsvReader`] | CSV with a header row; columns → flat tags | synthesized |
//! | [`SqlReader`] | SQL `CREATE TABLE` DDL (+ optional `INSERT`s) | from the DDL: columns + FK edges |
//!
//! Sources that do not ship a schema (bare XML containers, JSON, CSV) get
//! a *synthesized grammar* ([`synthesize_dtd`]): a closed, 1-unambiguous
//! DTD learned from the listing trees by `lsd-infer`, so the
//! static-analysis pass behind [`crate::Lsd::analyze`] and
//! [`crate::Lsd::train`] gates them exactly like native XML sources. The
//! inference evidence rides along on [`SourceContents::inferred`].

mod csv;
mod json;
mod sql;
mod xml;

pub use csv::CsvReader;
pub use json::JsonReader;
pub use sql::SqlReader;
pub use xml::XmlReader;

use lsd_infer::InferenceStats;
use lsd_xml::{Dtd, Element};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The serialization a [`crate::Source`] was ingested from. Recorded on the
/// source itself and, per trained source, in the persisted snapshot
/// (`SavedModel::source_provenance`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SourceFormat {
    /// XML listings with a DTD — the paper's native representation.
    #[default]
    Xml,
    /// JSON documents (keys → tags, nesting preserved).
    Json,
    /// CSV with a header row (columns → flat tags).
    Csv,
    /// SQL `CREATE TABLE` DDL, columns + foreign-key edges as structure.
    Sql,
}

impl SourceFormat {
    /// The canonical media type for HTTP content negotiation.
    pub fn media_type(self) -> &'static str {
        match self {
            SourceFormat::Xml => "application/xml",
            SourceFormat::Json => "application/json",
            SourceFormat::Csv => "text/csv",
            SourceFormat::Sql => "application/sql",
        }
    }
}

impl fmt::Display for SourceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SourceFormat::Xml => "xml",
            SourceFormat::Json => "json",
            SourceFormat::Csv => "csv",
            SourceFormat::Sql => "sql",
        };
        f.write_str(name)
    }
}

/// A reader failed to normalize its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// The format the failing reader handles.
    pub format: SourceFormat,
    /// What was wrong with the input.
    pub detail: String,
}

impl ReadError {
    pub(crate) fn new(format: SourceFormat, detail: impl Into<String>) -> Self {
        ReadError {
            format,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot read {} source: {}", self.format, self.detail)
    }
}

impl std::error::Error for ReadError {}

/// What a reader yields: the canonical internal representation of a source.
#[derive(Debug, Clone)]
pub struct SourceContents {
    /// The schema skeleton — native for XML, synthesized or DDL-derived
    /// otherwise. Always closed, so `SchemaTree::from_dtd` succeeds.
    pub dtd: Dtd,
    /// The listing trees the instance extractor runs over.
    pub listings: Vec<Element>,
    /// When the schema was *inferred* from the listings rather than
    /// supplied (bare XML containers, JSON documents): the inference
    /// evidence, carried into [`crate::SourceProvenance`] so audits can
    /// flag weakly-supported schemas. `None` for native/DDL schemas.
    pub inferred: Option<InferenceStats>,
}

/// One instance model for every serialization: a reader normalizes its
/// input into a [`SourceContents`] — the `Dtd` + `Vec<Element>` pair the
/// whole pipeline (extraction, learners, constraints, serving) is written
/// against. Implement this to teach LSD a new serialization; nothing
/// downstream needs to change.
pub trait SourceReader {
    /// The serialization this reader handles, recorded as provenance on the
    /// constructed [`crate::Source`].
    fn format(&self) -> SourceFormat;

    /// Normalizes the input.
    ///
    /// # Errors
    /// [`ReadError`] when the input cannot be parsed or does not form a
    /// coherent source (e.g. listings with differing root tags, or a SQL
    /// schema whose foreign keys do not form a tree).
    fn read(&self) -> Result<SourceContents, ReadError>;
}

/// Sanitizes an arbitrary string (JSON key, CSV column, SQL identifier)
/// into a valid XML element name: invalid characters become `_`, and a
/// leading digit (or empty input) gets a `f` prefix.
pub(crate) fn sanitize_tag(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.trim().chars() {
        if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.') {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    match out.chars().next() {
        None => "field".to_string(),
        Some(c) if c.is_ascii_digit() || c == '-' || c == '.' => format!("f{out}"),
        Some(_) => out,
    }
}

/// Infers a closed, 1-unambiguous DTD from listing trees: the schema
/// skeleton for sources that do not ship one. This delegates to
/// [`lsd_infer::infer_dtd`] — per element, the observed child sequences
/// are folded into a single-occurrence automaton and rewritten into a
/// deterministic expression (with k-ORE escalation and a CHARE fallback),
/// so repeating groups, optional runs, and choices survive instead of
/// flattening into a one-level sequence. The result passes the
/// static-analysis gate (`LSD001`/`LSD002`/`LSD105`) that
/// [`crate::Lsd::train`] runs over training-source schemas and accepts
/// every listing it was derived from.
///
/// # Errors
/// A description of the problem when `listings` is empty or the listings
/// do not share one root tag (the DTD's root would be ill-defined).
pub fn synthesize_dtd(listings: &[Element]) -> Result<Dtd, String> {
    synthesize_dtd_with_stats(listings).map(|(dtd, _)| dtd)
}

/// [`synthesize_dtd`] plus the inference evidence: corpus size,
/// per-element support, generalization and fallback counts. Readers store
/// the stats on [`SourceContents::inferred`] so they travel into trained
/// snapshots as provenance.
///
/// # Errors
/// Same conditions as [`synthesize_dtd`].
pub fn synthesize_dtd_with_stats(listings: &[Element]) -> Result<(Dtd, InferenceStats), String> {
    let Some(first) = listings.first() else {
        return Err("cannot synthesize a grammar from zero listings".to_string());
    };
    if let Some(odd) = listings.iter().find(|l| l.name != first.name) {
        return Err(format!(
            "listings must share one root tag, found both <{}> and <{}>",
            first.name, odd.name
        ));
    }
    let inference = lsd_infer::infer_dtd(listings).map_err(|e| e.to_string())?;
    Ok((inference.dtd, inference.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::{parse_fragment, SchemaTree};

    fn frag(s: &str) -> Element {
        parse_fragment(s).expect("well-formed")
    }

    #[test]
    fn sanitize_tag_produces_valid_names() {
        assert_eq!(sanitize_tag("agent phone"), "agent_phone");
        assert_eq!(sanitize_tag("agent-phone"), "agent-phone");
        assert_eq!(sanitize_tag("3beds"), "f3beds");
        assert_eq!(sanitize_tag(""), "field");
        assert_eq!(sanitize_tag("  price ($) "), "price____");
    }

    #[test]
    fn synthesized_dtd_is_closed_and_roots_correctly() {
        let listings = vec![
            frag("<home><area>Miami</area><price>1</price></home>"),
            frag("<home><area>Kent</area><price>2</price></home>"),
        ];
        let dtd = synthesize_dtd(&listings).expect("synthesizes");
        assert!(dtd.check_closed().is_ok());
        assert_eq!(dtd.root_name().expect("rooted"), "home");
        assert!(SchemaTree::from_dtd(&dtd).is_ok());
        for listing in &listings {
            assert!(dtd.validate(listing).is_ok(), "listing validates");
        }
    }

    #[test]
    fn occurrences_reflect_observed_counts() {
        let listings = vec![
            frag("<r><a>1</a><b>x</b><b>y</b></r>"),
            frag("<r><a>2</a></r>"),
        ];
        let dtd = synthesize_dtd(&listings).expect("synthesizes");
        let decl = dtd.decl("r").expect("declared");
        let rendered = decl.content.to_dtd_syntax();
        assert_eq!(rendered, "(a, b*)", "a is required, b repeats or vanishes");
        for listing in &listings {
            assert!(dtd.validate(listing).is_ok());
        }
    }

    #[test]
    fn text_plus_children_becomes_mixed() {
        let listings = vec![frag("<p>hello <b>world</b> again</p>")];
        let dtd = synthesize_dtd(&listings).expect("synthesizes");
        let rendered = dtd.decl("p").expect("declared").content.to_dtd_syntax();
        assert_eq!(rendered, "(#PCDATA | b)*");
        assert!(dtd.validate(&listings[0]).is_ok());
    }

    #[test]
    fn mismatched_roots_are_rejected() {
        let listings = vec![frag("<a/>"), frag("<b/>")];
        let err = synthesize_dtd(&listings).expect_err("rejects");
        assert!(err.contains("<a>") && err.contains("<b>"), "{err}");
    }

    #[test]
    fn zero_listings_are_rejected() {
        assert!(synthesize_dtd(&[]).is_err());
    }

    #[test]
    fn recursive_nesting_still_declares_once() {
        let listings = vec![frag(
            "<part><name>top</name><part><name>sub</name></part></part>",
        )];
        let dtd = synthesize_dtd(&listings).expect("synthesizes");
        assert_eq!(dtd.len(), 2);
        assert!(dtd.check_closed().is_ok());
        // The sub-part has no nested part, so recursion is optional and a
        // finite derivation exists.
        assert!(SchemaTree::from_dtd(&dtd).is_ok());
    }

    #[test]
    fn media_types_cover_all_formats() {
        assert_eq!(SourceFormat::Xml.media_type(), "application/xml");
        assert_eq!(SourceFormat::Json.media_type(), "application/json");
        assert_eq!(SourceFormat::Csv.media_type(), "text/csv");
        assert_eq!(SourceFormat::Sql.media_type(), "application/sql");
        assert_eq!(SourceFormat::default(), SourceFormat::Xml);
    }
}
