//! The CSV reader: header columns become flat tags, each row becomes one
//! listing.

use super::{sanitize_tag, ReadError, SourceContents, SourceFormat, SourceReader};
use lsd_xml::{ContentModel, Dtd, Element, ElementDecl, Occurrence};

/// Reads a CSV source (RFC 4180 subset: quoted fields, `""` escapes,
/// CRLF or LF line endings). The header row names the columns; each later
/// row becomes a `<record>` listing with one leaf per non-empty cell. The
/// schema skeleton comes straight from the header: an ordered sequence of
/// the columns, each optional where the data has gaps.
pub struct CsvReader {
    text: String,
    record_tag: String,
    delimiter: char,
}

impl CsvReader {
    /// A reader over comma-separated text; listing roots are tagged
    /// `record`.
    pub fn new(text: impl Into<String>) -> Self {
        CsvReader {
            text: text.into(),
            record_tag: "record".to_string(),
            delimiter: ',',
        }
    }

    /// Overrides the tag wrapped around each row (the listing root).
    pub fn with_record_tag(mut self, tag: impl AsRef<str>) -> Self {
        self.record_tag = sanitize_tag(tag.as_ref());
        self
    }

    /// Overrides the field delimiter (e.g. `;` or `\t`).
    pub fn with_delimiter(mut self, delimiter: char) -> Self {
        self.delimiter = delimiter;
        self
    }
}

fn err(detail: impl Into<String>) -> ReadError {
    ReadError::new(SourceFormat::Csv, detail)
}

/// Splits CSV text into records of fields, honoring quoting.
fn parse_records(text: &str, delimiter: char) -> Result<Vec<Vec<String>>, ReadError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut field_started = false;
    let mut line = 1usize;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !field_started => {
                in_quotes = true;
                field_started = true;
            }
            c if c == delimiter => {
                record.push(std::mem::take(&mut field));
                field_started = false;
            }
            '\r' if chars.peek() == Some(&'\n') => {}
            '\n' => {
                line += 1;
                record.push(std::mem::take(&mut field));
                field_started = false;
                // A fully empty line (e.g. the trailing newline) ends no record.
                if record.len() > 1 || !record[0].is_empty() {
                    records.push(std::mem::take(&mut record));
                } else {
                    record.clear();
                }
            }
            _ => {
                field.push(c);
                field_started = true;
            }
        }
    }
    if in_quotes {
        return Err(err(format!("unterminated quoted field (line {line})")));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

impl SourceReader for CsvReader {
    fn format(&self) -> SourceFormat {
        SourceFormat::Csv
    }

    fn read(&self) -> Result<SourceContents, ReadError> {
        let records = parse_records(&self.text, self.delimiter)?;
        let Some((header, rows)) = records.split_first() else {
            return Err(err("input is empty; expected a header row"));
        };
        let columns: Vec<String> = header.iter().map(|h| sanitize_tag(h)).collect();
        for (i, col) in columns.iter().enumerate() {
            if columns[..i].contains(col) {
                return Err(err(format!(
                    "duplicate column \"{col}\" in the header (after sanitizing)"
                )));
            }
            if *col == self.record_tag {
                return Err(err(format!(
                    "column \"{col}\" collides with the record tag"
                )));
            }
        }
        if rows.is_empty() {
            return Err(err("no data rows after the header"));
        }

        let mut column_gaps = vec![false; columns.len()];
        let mut listings = Vec::with_capacity(rows.len());
        for (ri, row) in rows.iter().enumerate() {
            if row.len() > columns.len() {
                return Err(err(format!(
                    "row {} has {} fields but the header declares {} columns",
                    ri + 2,
                    row.len(),
                    columns.len()
                )));
            }
            let mut listing = Element::new(self.record_tag.clone());
            for (ci, col) in columns.iter().enumerate() {
                match row.get(ci).map(String::as_str) {
                    Some(cell) if !cell.is_empty() => {
                        listing.push_child(Element::text_leaf(col.clone(), cell));
                    }
                    _ => column_gaps[ci] = true,
                }
            }
            listings.push(listing);
        }

        // The header *is* the schema: record → ordered column sequence.
        let mut decls = Vec::with_capacity(columns.len() + 1);
        let parts = columns
            .iter()
            .zip(&column_gaps)
            .map(|(col, &gap)| {
                let occ = if gap {
                    Occurrence::Optional
                } else {
                    Occurrence::One
                };
                ContentModel::Name(col.clone(), occ)
            })
            .collect();
        decls.push(ElementDecl::new(
            self.record_tag.clone(),
            ContentModel::Seq(parts, Occurrence::One),
        ));
        for col in &columns {
            decls.push(ElementDecl::new(col.clone(), ContentModel::Pcdata));
        }
        let dtd = Dtd::new(decls).map_err(|e| err(e.to_string()))?;
        Ok(SourceContents {
            dtd,
            listings,
            inferred: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::write_element;

    #[test]
    fn rows_become_flat_listings() {
        let reader = CsvReader::new(
            "area,price,agent phone\n\
             \"Miami, FL\",\"$70,000\",305 1212\n\
             Kent WA,$55000,206 5555\n",
        );
        let contents = reader.read().expect("reads");
        assert_eq!(contents.listings.len(), 2);
        assert_eq!(
            write_element(&contents.listings[0]),
            "<record><area>Miami, FL</area><price>$70,000</price>\
             <agent_phone>305 1212</agent_phone></record>"
        );
        assert_eq!(contents.dtd.root_name().expect("rooted"), "record");
        assert_eq!(
            contents
                .dtd
                .decl("record")
                .expect("declared")
                .content
                .to_dtd_syntax(),
            "(area, price, agent_phone)"
        );
        for listing in &contents.listings {
            assert!(contents.dtd.validate(listing).is_ok());
        }
    }

    #[test]
    fn empty_cells_make_columns_optional() {
        let reader = CsvReader::new("a,b\n1,\n2,x\n");
        let contents = reader.read().expect("reads");
        assert_eq!(
            contents
                .dtd
                .decl("record")
                .expect("declared")
                .content
                .to_dtd_syntax(),
            "(a, b?)"
        );
        assert_eq!(
            write_element(&contents.listings[0]),
            "<record><a>1</a></record>"
        );
    }

    #[test]
    fn quotes_escape_delimiters_newlines_and_quotes() {
        let reader = CsvReader::new("note\n\"line one\nline \"\"two\"\", end\"\n");
        let contents = reader.read().expect("reads");
        assert_eq!(
            contents.listings[0]
                .child("note")
                .expect("note")
                .direct_text(),
            "line one\nline \"two\", end"
        );
    }

    #[test]
    fn alternate_delimiters_and_record_tags() {
        let reader = CsvReader::new("a;b\n1;2\n")
            .with_delimiter(';')
            .with_record_tag("row");
        let contents = reader.read().expect("reads");
        assert_eq!(
            write_element(&contents.listings[0]),
            "<row><a>1</a><b>2</b></row>"
        );
    }

    #[test]
    fn malformed_inputs_are_rejected_with_detail() {
        let cases = [
            ("", "header row"),
            ("a,b\n", "no data rows"),
            ("a,a\n1,2\n", "duplicate column"),
            ("a,b\n1,2,3\n", "row 2 has 3 fields"),
            ("a\n\"unterminated\n", "unterminated quoted field"),
            ("record\nx\n", "collides with the record tag"),
        ];
        for (input, expected) in cases {
            let e = CsvReader::new(input).read().expect_err(input);
            assert_eq!(e.format, SourceFormat::Csv);
            assert!(e.detail.contains(expected), "{input:?}: {e}");
        }
    }
}
