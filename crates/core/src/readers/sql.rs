//! The SQL reader: `CREATE TABLE` DDL is the schema — columns become leaf
//! tags and foreign-key edges become nesting — and `INSERT` rows, joined
//! along those edges, become the listings.

use super::{sanitize_tag, ReadError, SourceContents, SourceFormat, SourceReader};
use lsd_xml::{ContentModel, Dtd, Element, ElementDecl, Occurrence};
use std::collections::HashMap;

/// Reads a SQL source: one or more `CREATE TABLE` statements (columns,
/// `PRIMARY KEY`, `FOREIGN KEY ... REFERENCES`) plus optional
/// `INSERT INTO ... VALUES` rows. Foreign keys must form a tree with one
/// root table; each root row becomes a listing, with child-table rows
/// nested under the parent row they reference. Key columns are structure,
/// not data: foreign-key columns and the columns they reference are
/// dropped from the instance tags. DDL without `INSERT`s yields a valid
/// schema with zero listings.
pub struct SqlReader {
    text: String,
}

impl SqlReader {
    /// A reader over SQL DDL (and optional DML) text.
    pub fn new(text: impl Into<String>) -> Self {
        SqlReader { text: text.into() }
    }
}

fn err(detail: impl Into<String>) -> ReadError {
    ReadError::new(SourceFormat::Sql, detail)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Bare word: keyword or identifier.
    Word(String),
    /// Quoted identifier (`"..."`, `` `...` `` or `[...]`), already unquoted.
    Quoted(String),
    /// String literal, `''` escapes resolved.
    Str(String),
    /// Numeric literal, kept as written.
    Num(String),
    Punct(char),
}

fn lex(text: &str) -> Result<Vec<Tok>, ReadError> {
    let mut toks = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            _ if c.is_whitespace() => {
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                } else if chars.peek().is_some_and(char::is_ascii_digit) {
                    let mut num = String::from("-");
                    read_number(&mut chars, &mut num);
                    toks.push(Tok::Num(num));
                } else {
                    toks.push(Tok::Punct('-'));
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'*') {
                    chars.next();
                    let mut prev = ' ';
                    let mut closed = false;
                    for c in chars.by_ref() {
                        if prev == '*' && c == '/' {
                            closed = true;
                            break;
                        }
                        prev = c;
                    }
                    if !closed {
                        return Err(err("unterminated /* comment"));
                    }
                } else {
                    toks.push(Tok::Punct('/'));
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(err("unterminated string literal")),
                    }
                }
                toks.push(Tok::Str(s));
            }
            '"' | '`' | '[' => {
                let close = match c {
                    '"' => '"',
                    '`' => '`',
                    _ => ']',
                };
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some(c) if c == close => break,
                        Some(c) => s.push(c),
                        None => return Err(err("unterminated quoted identifier")),
                    }
                }
                toks.push(Tok::Quoted(s));
            }
            _ if c.is_ascii_digit() => {
                let mut num = String::new();
                read_number(&mut chars, &mut num);
                toks.push(Tok::Num(num));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        w.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Word(w));
            }
            _ => {
                chars.next();
                toks.push(Tok::Punct(c));
            }
        }
    }
    Ok(toks)
}

fn read_number(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, out: &mut String) {
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' {
            out.push(c);
            chars.next();
        } else {
            break;
        }
    }
}

#[derive(Debug, Clone)]
struct Column {
    tag: String,
    not_null: bool,
}

#[derive(Debug, Default)]
struct Table {
    columns: Vec<Column>,
    primary_key: Option<String>,
    /// `(local column, parent table, parent column)`; parent column
    /// defaults to the parent's primary key when `REFERENCES` omits it.
    foreign_key: Option<(String, String, Option<String>)>,
    rows: Vec<Vec<Option<String>>>,
}

/// Token-stream parser for the statement subset the reader understands.
struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes a keyword (case-insensitive) if it is next.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_punct(&mut self, p: char) -> bool {
        if self.peek() == Some(&Tok::Punct(p)) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect_punct(&mut self, p: char, context: &str) -> Result<(), ReadError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(err(format!(
                "expected '{p}' {context}, got {:?}",
                self.peek()
            )))
        }
    }

    /// An identifier (bare or quoted), sanitized into tag space. Qualified
    /// names (`schema.table`) collapse to their last component.
    fn ident(&mut self, context: &str) -> Result<String, ReadError> {
        let mut name = match self.next() {
            Some(Tok::Word(w)) => w,
            Some(Tok::Quoted(q)) => q,
            other => return Err(err(format!("expected {context}, got {other:?}"))),
        };
        while self.eat_punct('.') {
            name = match self.next() {
                Some(Tok::Word(w)) => w,
                Some(Tok::Quoted(q)) => q,
                other => return Err(err(format!("expected {context}, got {other:?}"))),
            };
        }
        Ok(sanitize_tag(&name))
    }

    /// Skips to just past the next `;` (or to EOF).
    fn skip_statement(&mut self) {
        while let Some(t) = self.next() {
            if t == Tok::Punct(';') {
                break;
            }
        }
    }
}

fn parse_create_table(p: &mut Parser, tables: &mut Vec<(String, Table)>) -> Result<(), ReadError> {
    // CREATE TABLE [IF NOT EXISTS] name ( ... )
    if p.eat_kw("IF") {
        let _ = p.eat_kw("NOT");
        let _ = p.eat_kw("EXISTS");
    }
    let name = p.ident("a table name")?;
    if tables.iter().any(|(n, _)| *n == name) {
        return Err(err(format!("table \"{name}\" is declared twice")));
    }
    p.expect_punct('(', &format!("after CREATE TABLE {name}"))?;
    let mut table = Table::default();
    loop {
        if p.eat_kw("PRIMARY") {
            if !p.eat_kw("KEY") {
                return Err(err(format!("expected KEY after PRIMARY in \"{name}\"")));
            }
            p.expect_punct('(', "after PRIMARY KEY")?;
            let col = p.ident("a primary-key column")?;
            if !p.eat_punct(')') {
                return Err(err(format!(
                    "composite primary keys are not supported (table \"{name}\")"
                )));
            }
            table.primary_key = Some(col);
        } else if p.eat_kw("FOREIGN") {
            if !p.eat_kw("KEY") {
                return Err(err(format!("expected KEY after FOREIGN in \"{name}\"")));
            }
            p.expect_punct('(', "after FOREIGN KEY")?;
            let col = p.ident("a foreign-key column")?;
            if !p.eat_punct(')') {
                return Err(err(format!(
                    "composite foreign keys are not supported (table \"{name}\")"
                )));
            }
            if !p.eat_kw("REFERENCES") {
                return Err(err(format!(
                    "expected REFERENCES after FOREIGN KEY in \"{name}\""
                )));
            }
            let (parent, parent_col) = parse_references(p)?;
            set_foreign_key(&mut table, &name, col, parent, parent_col)?;
        } else if p.eat_kw("UNIQUE") || p.eat_kw("CHECK") || p.eat_kw("CONSTRAINT") {
            // Skip the named/auxiliary constraint body up to the next
            // top-level comma or the closing paren.
            skip_item(p);
        } else {
            // A column definition: name, type, then modifiers.
            let col = p.ident("a column name")?;
            let mut not_null = false;
            let mut depth = 0usize;
            loop {
                match p.peek() {
                    Some(Tok::Punct('(')) => {
                        depth += 1;
                        p.pos += 1;
                    }
                    Some(Tok::Punct(')')) if depth > 0 => {
                        depth -= 1;
                        p.pos += 1;
                    }
                    Some(Tok::Punct(')' | ',')) => break,
                    Some(Tok::Word(w)) if w.eq_ignore_ascii_case("NOT") => {
                        p.pos += 1;
                        if p.eat_kw("NULL") {
                            not_null = true;
                        }
                    }
                    Some(Tok::Word(w)) if w.eq_ignore_ascii_case("PRIMARY") => {
                        p.pos += 1;
                        if p.eat_kw("KEY") {
                            table.primary_key = Some(col.clone());
                            not_null = true;
                        }
                    }
                    Some(Tok::Word(w)) if w.eq_ignore_ascii_case("REFERENCES") => {
                        p.pos += 1;
                        let (parent, parent_col) = parse_references(p)?;
                        set_foreign_key(&mut table, &name, col.clone(), parent, parent_col)?;
                    }
                    Some(_) => p.pos += 1,
                    None => return Err(err(format!("unterminated CREATE TABLE \"{name}\""))),
                }
            }
            if table.columns.iter().any(|c| c.tag == col) {
                return Err(err(format!(
                    "column \"{col}\" is declared twice in table \"{name}\""
                )));
            }
            table.columns.push(Column { tag: col, not_null });
        }
        if p.eat_punct(',') {
            continue;
        }
        p.expect_punct(')', &format!("to close CREATE TABLE {name}"))?;
        break;
    }
    p.skip_statement();
    tables.push((name, table));
    Ok(())
}

/// `parent [(col)]` after a `REFERENCES` keyword.
fn parse_references(p: &mut Parser) -> Result<(String, Option<String>), ReadError> {
    let parent = p.ident("a referenced table")?;
    let mut parent_col = None;
    if p.eat_punct('(') {
        parent_col = Some(p.ident("a referenced column")?);
        p.expect_punct(')', "after the referenced column")?;
    }
    Ok((parent, parent_col))
}

fn set_foreign_key(
    table: &mut Table,
    name: &str,
    col: String,
    parent: String,
    parent_col: Option<String>,
) -> Result<(), ReadError> {
    if table.foreign_key.is_some() {
        return Err(err(format!(
            "table \"{name}\" has multiple foreign keys; only tree-shaped schemas are supported"
        )));
    }
    table.foreign_key = Some((col, parent, parent_col));
    Ok(())
}

/// Skips a parenthesized-aware table item up to the next top-level `,`/`)`.
fn skip_item(p: &mut Parser) {
    let mut depth = 0usize;
    loop {
        match p.peek() {
            Some(Tok::Punct('(')) => {
                depth += 1;
                p.pos += 1;
            }
            Some(Tok::Punct(')')) if depth > 0 => {
                depth -= 1;
                p.pos += 1;
            }
            Some(Tok::Punct(')' | ',')) | None => break,
            Some(_) => p.pos += 1,
        }
    }
}

fn parse_insert(p: &mut Parser, tables: &mut [(String, Table)]) -> Result<(), ReadError> {
    if !p.eat_kw("INTO") {
        return Err(err("expected INTO after INSERT"));
    }
    let name = p.ident("a table name")?;
    let ti = tables
        .iter()
        .position(|(n, _)| *n == name)
        .ok_or_else(|| err(format!("INSERT INTO undeclared table \"{name}\"")))?;
    let declared: Vec<String> = tables[ti].1.columns.iter().map(|c| c.tag.clone()).collect();
    let cols: Vec<String> = if p.eat_punct('(') {
        let mut cols = Vec::new();
        loop {
            let col = p.ident("a column name")?;
            if !declared.contains(&col) {
                return Err(err(format!(
                    "INSERT INTO \"{name}\" names undeclared column \"{col}\""
                )));
            }
            cols.push(col);
            if p.eat_punct(',') {
                continue;
            }
            p.expect_punct(')', "to close the column list")?;
            break;
        }
        cols
    } else {
        declared.clone()
    };
    if !p.eat_kw("VALUES") {
        return Err(err(format!("expected VALUES in INSERT INTO \"{name}\"")));
    }
    loop {
        p.expect_punct('(', "to open a VALUES tuple")?;
        let mut values: Vec<Option<String>> = Vec::new();
        loop {
            let value = match p.next() {
                Some(Tok::Str(s)) => Some(s),
                Some(Tok::Num(n)) => Some(n),
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("NULL") => None,
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("TRUE") => Some("true".to_string()),
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("FALSE") => Some("false".to_string()),
                other => return Err(err(format!("unsupported VALUES literal {other:?}"))),
            };
            values.push(value);
            if p.eat_punct(',') {
                continue;
            }
            p.expect_punct(')', "to close a VALUES tuple")?;
            break;
        }
        if values.len() != cols.len() {
            return Err(err(format!(
                "INSERT INTO \"{name}\": {} values for {} columns",
                values.len(),
                cols.len()
            )));
        }
        // Re-align onto the declared column order.
        let mut row: Vec<Option<String>> = vec![None; declared.len()];
        for (col, value) in cols.iter().zip(values) {
            let ci = declared
                .iter()
                .position(|c| c == col)
                .expect("column checked above");
            row[ci] = value;
        }
        tables[ti].1.rows.push(row);
        if p.eat_punct(',') {
            continue;
        }
        break;
    }
    p.skip_statement();
    Ok(())
}

impl SourceReader for SqlReader {
    fn format(&self) -> SourceFormat {
        SourceFormat::Sql
    }

    fn read(&self) -> Result<SourceContents, ReadError> {
        let mut p = Parser {
            toks: lex(&self.text)?,
            pos: 0,
        };
        let mut tables: Vec<(String, Table)> = Vec::new();
        while p.peek().is_some() {
            if p.eat_punct(';') {
                continue;
            }
            if p.eat_kw("CREATE") {
                if p.eat_kw("TABLE") {
                    parse_create_table(&mut p, &mut tables)?;
                } else {
                    p.skip_statement(); // CREATE INDEX / VIEW / ...
                }
            } else if p.eat_kw("INSERT") {
                parse_insert(&mut p, &mut tables)?;
            } else {
                p.skip_statement(); // SET, BEGIN, COMMIT, DROP, ...
            }
        }
        if tables.is_empty() {
            return Err(err("no CREATE TABLE statements found"));
        }
        build_contents(tables)
    }
}

fn build_contents(tables: Vec<(String, Table)>) -> Result<SourceContents, ReadError> {
    let index: HashMap<&str, usize> = tables
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();

    // Resolve foreign keys into join edges and check the tree shape.
    // `joins[child] = (fk column index, parent index, parent join column)`.
    let mut joins: Vec<Option<(usize, usize, String)>> = vec![None; tables.len()];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); tables.len()];
    for (i, (name, table)) in tables.iter().enumerate() {
        let Some((col, parent, parent_col)) = &table.foreign_key else {
            continue;
        };
        let &pi = index.get(parent.as_str()).ok_or_else(|| {
            err(format!(
                "table \"{name}\" references undeclared table \"{parent}\""
            ))
        })?;
        let join_col = match parent_col {
            Some(c) => c.clone(),
            None => tables[pi].1.primary_key.clone().ok_or_else(|| {
                err(format!(
                    "foreign key in \"{name}\" references \"{parent}\", which has no primary key"
                ))
            })?,
        };
        let ci = table
            .columns
            .iter()
            .position(|c| c.tag == *col)
            .ok_or_else(|| {
                err(format!(
                    "foreign-key column \"{col}\" is not declared in table \"{name}\""
                ))
            })?;
        joins[i] = Some((ci, pi, join_col));
        children[pi].push(i);
    }
    let roots: Vec<usize> = (0..tables.len()).filter(|&i| joins[i].is_none()).collect();
    let [root] = roots[..] else {
        let names: Vec<&str> = roots.iter().map(|&i| tables[i].0.as_str()).collect();
        return Err(err(format!(
            "foreign keys must form a tree with one root table; found {} roots [{}]",
            names.len(),
            names.join(", ")
        )));
    };
    // Cycle check: every table must reach the root along its parent chain.
    for start in 0..tables.len() {
        let mut hops = 0usize;
        let mut i = start;
        while let Some((_, pi, _)) = joins[i] {
            i = pi;
            hops += 1;
            if hops > tables.len() {
                return Err(err("foreign keys form a cycle"));
            }
        }
    }

    // Structural columns carry joins, not data: the FK column itself and
    // the parent column it references.
    let mut structural: Vec<Vec<bool>> = tables
        .iter()
        .map(|(_, t)| vec![false; t.columns.len()])
        .collect();
    for (i, join) in joins.iter().enumerate() {
        let Some((ci, pi, join_col)) = join else {
            continue;
        };
        structural[i][*ci] = true;
        if let Some(pci) = tables[*pi]
            .1
            .columns
            .iter()
            .position(|c| c.tag == *join_col)
        {
            structural[*pi][pci] = true;
        }
    }

    // The DDL is the schema: tables become elements, data columns leaves.
    let mut decls: Vec<ElementDecl> = Vec::new();
    let mut leaf_tags: Vec<String> = Vec::new();
    for (i, (name, table)) in tables.iter().enumerate() {
        let mut parts: Vec<ContentModel> = Vec::new();
        for (ci, col) in table.columns.iter().enumerate() {
            if structural[i][ci] {
                continue;
            }
            if index.contains_key(col.tag.as_str()) {
                return Err(err(format!(
                    "column \"{}\" in table \"{name}\" collides with a table name",
                    col.tag
                )));
            }
            let occ = if col.not_null {
                Occurrence::One
            } else {
                Occurrence::Optional
            };
            parts.push(ContentModel::Name(col.tag.clone(), occ));
            if !leaf_tags.contains(&col.tag) {
                leaf_tags.push(col.tag.clone());
            }
        }
        for &child in &children[i] {
            parts.push(ContentModel::Name(
                tables[child].0.clone(),
                Occurrence::ZeroOrMore,
            ));
        }
        let content = if parts.is_empty() {
            ContentModel::Empty
        } else {
            ContentModel::Seq(parts, Occurrence::One)
        };
        decls.push(ElementDecl::new(name.clone(), content));
    }
    for tag in &leaf_tags {
        decls.push(ElementDecl::new(tag.clone(), ContentModel::Pcdata));
    }
    let dtd = Dtd::new(decls).map_err(|e| err(e.to_string()))?;

    // Join the rows into listing trees, one per root-table row.
    let listings = tables[root]
        .1
        .rows
        .iter()
        .map(|row| build_element(root, row, &tables, &joins, &children, &structural))
        .collect::<Result<Vec<Element>, ReadError>>()?;
    Ok(SourceContents {
        dtd,
        listings,
        inferred: None,
    })
}

fn build_element(
    ti: usize,
    row: &[Option<String>],
    tables: &[(String, Table)],
    joins: &[Option<(usize, usize, String)>],
    children: &[Vec<usize>],
    structural: &[Vec<bool>],
) -> Result<Element, ReadError> {
    let (name, table) = &tables[ti];
    let mut element = Element::new(name.clone());
    for (ci, col) in table.columns.iter().enumerate() {
        if structural[ti][ci] {
            continue;
        }
        if let Some(Some(value)) = row.get(ci) {
            element.push_child(Element::text_leaf(col.tag.clone(), value.clone()));
        }
    }
    for &child in &children[ti] {
        let (fk_ci, _, join_col) = joins[child]
            .as_ref()
            .expect("child tables joined by construction");
        let join_ci = table
            .columns
            .iter()
            .position(|c| c.tag == *join_col)
            .ok_or_else(|| {
                err(format!(
                    "join column \"{join_col}\" is not declared in table \"{name}\""
                ))
            })?;
        let Some(Some(key)) = row.get(join_ci) else {
            continue; // NULL join key matches no child rows.
        };
        for child_row in &tables[child].1.rows {
            if child_row.get(*fk_ci) == Some(&Some(key.clone())) {
                element.push_child(build_element(
                    child, child_row, tables, joins, children, structural,
                )?);
            }
        }
    }
    Ok(element)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::write_element;

    const SCHEMA: &str = "
        -- real-estate dump
        CREATE TABLE house (
            id INTEGER PRIMARY KEY,
            area VARCHAR(80) NOT NULL,
            price VARCHAR(20)
        );
        CREATE TABLE contact (
            contact_id INTEGER PRIMARY KEY,
            house_id INTEGER,
            agent_name VARCHAR(80),
            phone VARCHAR(20),
            FOREIGN KEY (house_id) REFERENCES house (id)
        );
    ";

    #[test]
    fn ddl_only_yields_schema_and_zero_listings() {
        let contents = SqlReader::new(SCHEMA).read().expect("reads");
        assert!(contents.listings.is_empty());
        assert_eq!(contents.dtd.root_name().expect("rooted"), "house");
        assert_eq!(
            contents
                .dtd
                .decl("house")
                .expect("declared")
                .content
                .to_dtd_syntax(),
            "(area, price?, contact*)",
            "keys are structure, not data"
        );
        assert_eq!(
            contents
                .dtd
                .decl("contact")
                .expect("declared")
                .content
                .to_dtd_syntax(),
            "(contact_id, agent_name?, phone?)",
        );
        assert!(contents.dtd.check_closed().is_ok());
    }

    #[test]
    fn inserts_join_into_nested_listings() {
        let sql = format!(
            "{SCHEMA}
            INSERT INTO house VALUES (1, 'Miami, FL', '$70,000'), (2, 'Kent, WA', NULL);
            INSERT INTO contact (contact_id, house_id, agent_name, phone)
                VALUES (10, 1, 'Gail Murphy', '305 1212'),
                       (11, 2, 'Mike Smith', '206 5555');
        "
        );
        let contents = SqlReader::new(&sql).read().expect("reads");
        assert_eq!(contents.listings.len(), 2);
        assert_eq!(
            write_element(&contents.listings[0]),
            "<house><area>Miami, FL</area><price>$70,000</price>\
             <contact><contact_id>10</contact_id><agent_name>Gail Murphy</agent_name>\
             <phone>305 1212</phone></contact></house>"
        );
        assert_eq!(
            write_element(&contents.listings[1]),
            "<house><area>Kent, WA</area>\
             <contact><contact_id>11</contact_id><agent_name>Mike Smith</agent_name>\
             <phone>206 5555</phone></contact></house>"
        );
        for listing in &contents.listings {
            assert!(contents.dtd.validate(listing).is_ok());
        }
    }

    #[test]
    fn quoted_identifiers_preserve_tag_names() {
        let sql = r#"
            CREATE TABLE "house-listing" (
                "id" INTEGER PRIMARY KEY,
                "agent-phone" VARCHAR(20) NOT NULL
            );
            INSERT INTO "house-listing" VALUES (1, '(305) 729 0831');
        "#;
        let contents = SqlReader::new(sql).read().expect("reads");
        assert_eq!(
            write_element(&contents.listings[0]),
            "<house-listing><id>1</id><agent-phone>(305) 729 0831</agent-phone></house-listing>"
        );
    }

    #[test]
    fn inline_references_and_string_escapes() {
        let sql = "
            CREATE TABLE a (k INTEGER PRIMARY KEY, v TEXT);
            CREATE TABLE b (a_k INTEGER REFERENCES a, w TEXT);
            INSERT INTO a VALUES (1, 'it''s fine');
            INSERT INTO b VALUES (1, 'child');
        ";
        let contents = SqlReader::new(sql).read().expect("reads");
        assert_eq!(
            write_element(&contents.listings[0]),
            "<a><v>it&apos;s fine</v><b><w>child</w></b></a>"
        );
    }

    #[test]
    fn malformed_inputs_are_rejected_with_detail() {
        let cases = [
            ("SELECT 1;", "no CREATE TABLE"),
            (
                "CREATE TABLE t (a INT); CREATE TABLE t (b INT);",
                "declared twice",
            ),
            (
                "CREATE TABLE a (x INT); CREATE TABLE b (y INT);",
                "one root table",
            ),
            ("CREATE TABLE a (x INT REFERENCES a (x));", "one root table"),
            (
                "CREATE TABLE a (x INT, FOREIGN KEY (x) REFERENCES ghost (y));",
                "undeclared table",
            ),
            (
                "CREATE TABLE t (a INT); INSERT INTO t VALUES (1, 2);",
                "2 values for 1 columns",
            ),
            ("CREATE TABLE t (a INT, 'oops');", "expected a column name"),
        ];
        for (input, expected) in cases {
            let e = SqlReader::new(input).read().expect_err(input);
            assert_eq!(e.format, SourceFormat::Sql);
            assert!(e.detail.contains(expected), "{input:?}: {e}");
        }
    }
}
