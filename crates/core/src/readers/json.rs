//! The JSON reader: documents become listing trees, keys become tags,
//! nesting is preserved.

use super::{
    sanitize_tag, synthesize_dtd_with_stats, ReadError, SourceContents, SourceFormat, SourceReader,
};
use lsd_xml::Element;
use serde::Value;

/// Reads a JSON source: a single object or an array of objects, one
/// listing per object. Keys become element tags (sanitized to XML names),
/// nested objects become subtrees, arrays become repeated elements, and
/// scalars become text leaves; `null` fields are treated as absent. The
/// grammar is synthesized from the resulting trees.
pub struct JsonReader {
    text: String,
    record_tag: String,
}

impl JsonReader {
    /// A reader over JSON text; listing roots are tagged `record`.
    pub fn new(text: impl Into<String>) -> Self {
        JsonReader {
            text: text.into(),
            record_tag: "record".to_string(),
        }
    }

    /// Overrides the tag wrapped around each document (the listing root).
    pub fn with_record_tag(mut self, tag: impl AsRef<str>) -> Self {
        self.record_tag = sanitize_tag(tag.as_ref());
        self
    }
}

fn err(detail: impl Into<String>) -> ReadError {
    ReadError::new(SourceFormat::Json, detail)
}

/// Renders a scalar the way the deterministic JSON writer would.
fn scalar_text(value: &Value) -> Option<String> {
    match value {
        Value::Bool(b) => Some(b.to_string()),
        Value::Int(i) => Some(i.to_string()),
        Value::Float(f) => Some(f.to_string()),
        Value::Str(s) => Some(s.clone()),
        Value::Null | Value::Seq(_) | Value::Map(_) => None,
    }
}

/// Converts one JSON object into an element subtree rooted at `tag`.
fn object_to_element(tag: &str, entries: &[(String, Value)]) -> Result<Element, ReadError> {
    let mut element = Element::new(tag);
    for (key, value) in entries {
        let child_tag = sanitize_tag(key);
        append_value(&mut element, &child_tag, key, value)?;
    }
    Ok(element)
}

fn append_value(
    parent: &mut Element,
    tag: &str,
    key: &str,
    value: &Value,
) -> Result<(), ReadError> {
    match value {
        // Absent field: the synthesized grammar marks the tag optional.
        Value::Null => Ok(()),
        Value::Map(entries) => {
            parent.push_child(object_to_element(tag, entries)?);
            Ok(())
        }
        Value::Seq(items) => {
            for item in items {
                match item {
                    Value::Seq(_) => {
                        return Err(err(format!(
                            "field \"{key}\": nested arrays are not supported"
                        )))
                    }
                    other => append_value(parent, tag, key, other)?,
                }
            }
            Ok(())
        }
        scalar => {
            let text = scalar_text(scalar).unwrap_or_default();
            parent.push_child(Element::text_leaf(tag, text));
            Ok(())
        }
    }
}

impl SourceReader for JsonReader {
    fn format(&self) -> SourceFormat {
        SourceFormat::Json
    }

    fn read(&self) -> Result<SourceContents, ReadError> {
        let value: Value = serde_json::from_str(&self.text)
            .map_err(|e| err(format!("input is not valid JSON: {e}")))?;
        let documents: Vec<&Value> = match &value {
            Value::Seq(items) => items.iter().collect(),
            Value::Map(_) => vec![&value],
            other => {
                return Err(err(format!(
                    "expected an object or an array of objects, got {other:?}"
                )))
            }
        };
        if documents.is_empty() {
            return Err(err("input contains no records"));
        }
        let mut listings = Vec::with_capacity(documents.len());
        for (i, doc) in documents.iter().enumerate() {
            let Value::Map(entries) = doc else {
                return Err(err(format!("record {i} is not an object, got {doc:?}")));
            };
            listings.push(object_to_element(&self.record_tag, entries)?);
        }
        let (dtd, stats) = synthesize_dtd_with_stats(&listings).map_err(err)?;
        Ok(SourceContents {
            dtd,
            listings,
            inferred: Some(stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::write_element;

    #[test]
    fn objects_become_listings_with_nesting_preserved() {
        let reader = JsonReader::new(
            r#"[{"area": "Miami, FL", "contact": {"name": "Gail", "phone": "305 1212"}},
                {"area": "Kent, WA", "contact": {"name": "Mike", "phone": "206 5555"}}]"#,
        );
        let contents = reader.read().expect("reads");
        assert_eq!(contents.listings.len(), 2);
        assert_eq!(
            write_element(&contents.listings[0]),
            "<record><area>Miami, FL</area><contact><name>Gail</name>\
             <phone>305 1212</phone></contact></record>"
        );
        assert_eq!(contents.dtd.root_name().expect("rooted"), "record");
        assert!(contents.dtd.element_names().any(|n| n == "contact"));
        for listing in &contents.listings {
            assert!(contents.dtd.validate(listing).is_ok());
        }
    }

    #[test]
    fn arrays_repeat_scalars_and_nulls_vanish() {
        let reader =
            JsonReader::new(r#"{"beds": [2, 3], "price": 70000.5, "pool": true, "agent": null}"#)
                .with_record_tag("home");
        let contents = reader.read().expect("reads");
        assert_eq!(
            write_element(&contents.listings[0]),
            "<home><beds>2</beds><beds>3</beds><price>70000.5</price>\
             <pool>true</pool></home>"
        );
        assert!(
            !contents.dtd.element_names().any(|n| n == "agent"),
            "null-only fields synthesize no declaration"
        );
    }

    #[test]
    fn keys_are_sanitized_to_xml_names() {
        let reader = JsonReader::new(r#"{"agent phone": "305", "2nd floor": "yes"}"#);
        let contents = reader.read().expect("reads");
        assert_eq!(
            write_element(&contents.listings[0]),
            "<record><agent_phone>305</agent_phone><f2nd_floor>yes</f2nd_floor></record>"
        );
    }

    #[test]
    fn malformed_inputs_are_rejected_with_detail() {
        let cases = [
            ("not json", "valid JSON"),
            ("42", "expected an object"),
            ("[]", "no records"),
            ("[1, 2]", "record 0 is not an object"),
            (r#"{"grid": [[1]]}"#, "nested arrays"),
        ];
        for (input, expected) in cases {
            let e = JsonReader::new(input).read().expect_err(input);
            assert_eq!(e.format, SourceFormat::Json);
            assert!(e.detail.contains(expected), "{input}: {e}");
        }
    }
}
