//! The XML reader: the paper's native representation behind the common
//! [`SourceReader`] trait.

use super::{synthesize_dtd_with_stats, ReadError, SourceContents, SourceFormat, SourceReader};
use lsd_xml::{parse_dtd, parse_fragment, Element};

enum Input {
    /// DTD text plus one XML string per listing — the classic LSD input.
    WithDtd {
        dtd_text: String,
        listing_texts: Vec<String>,
    },
    /// A single container document whose element children are the
    /// listings; the grammar is synthesized from them. This is the shape
    /// `lsd-serve` accepts for raw `application/xml` bodies.
    Container { document: String },
}

/// Reads XML sources: either DTD + listings (the native path, byte-for-byte
/// equivalent to constructing the source from parsed parts) or a bare
/// container document with a synthesized grammar.
pub struct XmlReader {
    input: Input,
}

impl XmlReader {
    /// A reader over DTD text and one XML string per listing.
    pub fn new(
        dtd_text: impl Into<String>,
        listing_texts: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        XmlReader {
            input: Input::WithDtd {
                dtd_text: dtd_text.into(),
                listing_texts: listing_texts.into_iter().map(Into::into).collect(),
            },
        }
    }

    /// A reader over one container document: the root element's children
    /// are the listings, and the schema skeleton is synthesized from them.
    pub fn from_document(document: impl Into<String>) -> Self {
        XmlReader {
            input: Input::Container {
                document: document.into(),
            },
        }
    }
}

impl SourceReader for XmlReader {
    fn format(&self) -> SourceFormat {
        SourceFormat::Xml
    }

    fn read(&self) -> Result<SourceContents, ReadError> {
        let err = |detail: String| ReadError::new(SourceFormat::Xml, detail);
        match &self.input {
            Input::WithDtd {
                dtd_text,
                listing_texts,
            } => {
                let dtd = parse_dtd(dtd_text).map_err(|e| err(format!("invalid DTD: {e}")))?;
                let listings = listing_texts
                    .iter()
                    .enumerate()
                    .map(|(i, text)| {
                        parse_fragment(text)
                            .map_err(|e| err(format!("listing {i} is not well-formed: {e}")))
                    })
                    .collect::<Result<Vec<Element>, ReadError>>()?;
                Ok(SourceContents {
                    dtd,
                    listings,
                    inferred: None,
                })
            }
            Input::Container { document } => {
                let root = parse_fragment(document)
                    .map_err(|e| err(format!("document is not well-formed: {e}")))?;
                let listings: Vec<Element> = root.child_elements().cloned().collect();
                if listings.is_empty() {
                    return Err(err(format!(
                        "container <{}> has no listing children",
                        root.name
                    )));
                }
                let (dtd, stats) = synthesize_dtd_with_stats(&listings).map_err(err)?;
                Ok(SourceContents {
                    dtd,
                    listings,
                    inferred: Some(stats),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DTD: &str = "<!ELEMENT home (area, price)>\n\
                       <!ELEMENT area (#PCDATA)>\n<!ELEMENT price (#PCDATA)>";

    #[test]
    fn with_dtd_reads_the_native_representation() {
        let reader = XmlReader::new(
            DTD,
            ["<home><area>Miami, FL</area><price>$70,000</price></home>"],
        );
        let contents = reader.read().expect("reads");
        assert_eq!(contents.listings.len(), 1);
        assert_eq!(contents.dtd.root_name().expect("rooted"), "home");
        // Byte-identical to parsing the parts directly.
        assert_eq!(contents.dtd, parse_dtd(DTD).expect("dtd"));
        assert_eq!(
            contents.listings[0],
            parse_fragment("<home><area>Miami, FL</area><price>$70,000</price></home>")
                .expect("fragment")
        );
    }

    #[test]
    fn container_document_synthesizes_a_grammar() {
        let reader = XmlReader::from_document(
            "<listings><home><area>Miami</area></home>\
             <home><area>Kent</area></home></listings>",
        );
        let contents = reader.read().expect("reads");
        assert_eq!(contents.listings.len(), 2);
        assert_eq!(contents.dtd.root_name().expect("rooted"), "home");
        for listing in &contents.listings {
            assert!(contents.dtd.validate(listing).is_ok());
        }
        let stats = contents.inferred.expect("container schema is inferred");
        assert_eq!(stats.corpus_size, 2);
        assert_eq!(stats.element_support["home"], 2);
    }

    #[test]
    fn native_dtd_input_is_not_marked_inferred() {
        let reader = XmlReader::new(
            DTD,
            ["<home><area>Miami, FL</area><price>$70,000</price></home>"],
        );
        assert!(reader.read().expect("reads").inferred.is_none());
    }

    #[test]
    fn errors_name_the_offending_part() {
        let bad_dtd = XmlReader::new("garbage", ["<h/>"]).read().expect_err("dtd");
        assert!(bad_dtd.detail.contains("invalid DTD"), "{bad_dtd}");
        let bad_listing = XmlReader::new("<!ELEMENT h (#PCDATA)>", ["<unclosed"])
            .read()
            .expect_err("listing");
        assert!(bad_listing.detail.contains("listing 0"), "{bad_listing}");
        let empty = XmlReader::from_document("<listings/>")
            .read()
            .expect_err("empty container");
        assert!(empty.detail.contains("no listing children"), "{empty}");
        assert_eq!(empty.format, SourceFormat::Xml);
    }
}
