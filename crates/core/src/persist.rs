//! Persistence of trained LSD systems.
//!
//! The paper's workflow separates an offline training phase from an
//! interactive matching phase ("the training phase of LSD can be done
//! offline", Section 7). [`SavedModel`] is the serializable snapshot that
//! connects them: every built-in learner's trained state, the meta-learner
//! weights, the domain constraints and the configuration, round-trippable
//! through JSON.
//!
//! Custom [`BaseLearner`] implementations added by downstream users are not
//! serializable through this path (they are trait objects with arbitrary
//! state); [`Lsd::to_saved`] reports them by name instead of silently
//! dropping them.

use crate::learners::{
    county_name_recognizer, BaseLearner, ContentMatcher, FormatLearner, NaiveBayesLearner,
    NameMatcher, StatsLearner, XmlLearner,
};
use crate::meta::MetaLearner;
use crate::system::{Lsd, LsdConfig, SourceProvenance};
use lsd_constraints::{ConstraintHandler, DomainConstraint};
use lsd_learn::LabelSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from saving or loading a model.
#[derive(Debug)]
pub enum PersistError {
    /// A learner in the system has no serializable snapshot.
    UnsupportedLearner {
        /// The learner's display name.
        name: String,
    },
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// File I/O failed.
    Io(std::io::Error),
    /// The snapshot's schema version is newer than this build understands.
    /// Reported before field-level parsing so the caller sees "produced by
    /// a newer lsd-core" instead of an arbitrary missing-field error.
    UnsupportedVersion {
        /// The version stamped into the snapshot.
        found: u32,
        /// The newest version this build can load.
        supported: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::UnsupportedLearner { name } => {
                write!(f, "learner '{name}' has no serializable snapshot")
            }
            PersistError::Json(e) => write!(f, "serialization failed: {e}"),
            PersistError::Io(e) => write!(f, "file I/O failed: {e}"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot has schema version {found}, but this build supports \
                 at most version {supported}; load it with a newer lsd-core"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The trained state of one built-in base learner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SavedLearner {
    /// WHIRL name matcher.
    Name(NameMatcher),
    /// WHIRL content matcher.
    Content(ContentMatcher),
    /// Multinomial Naive Bayes.
    NaiveBayes(NaiveBayesLearner),
    /// Structure-token Naive Bayes (Section 5).
    Xml(XmlLearner),
    /// Character-class format learner (Section 7 extension).
    Format(FormatLearner),
    /// Value-statistics learner.
    Stats(StatsLearner),
    /// The county-name recognizer, reconstructed from its parameters (its
    /// dictionary is compiled in).
    CountyRecognizer {
        /// Total label count.
        num_labels: usize,
        /// The COUNTY label index.
        target: usize,
    },
}

impl SavedLearner {
    /// The variant name, as it appears as the externally-tagged key in the
    /// snapshot JSON — what audit tooling reports a learner as.
    pub fn kind(&self) -> &'static str {
        match self {
            SavedLearner::Name(_) => "Name",
            SavedLearner::Content(_) => "Content",
            SavedLearner::NaiveBayes(_) => "NaiveBayes",
            SavedLearner::Xml(_) => "Xml",
            SavedLearner::Format(_) => "Format",
            SavedLearner::Stats(_) => "Stats",
            SavedLearner::CountyRecognizer { .. } => "CountyRecognizer",
        }
    }

    /// Restores the boxed learner, rebuilding any in-memory indexes.
    pub fn restore(self) -> Box<dyn BaseLearner> {
        match self {
            SavedLearner::Name(mut l) => {
                l.rehydrate();
                Box::new(l)
            }
            SavedLearner::Content(mut l) => {
                l.rehydrate();
                Box::new(l)
            }
            SavedLearner::NaiveBayes(l) => Box::new(l),
            SavedLearner::Xml(l) => Box::new(l),
            SavedLearner::Format(l) => Box::new(l),
            SavedLearner::Stats(l) => Box::new(l),
            SavedLearner::CountyRecognizer { num_labels, target } => {
                Box::new(county_name_recognizer(num_labels, target))
            }
        }
    }
}

/// A complete serializable snapshot of a (usually trained) LSD system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The mediated schema rendered as `<!ELEMENT ...>` syntax, reparsed
    /// on load (the DTD's name index is not serializable, and text keeps
    /// the snapshot readable). Empty in pre-analysis snapshots, which load
    /// an empty schema — labels still come from `labels` below.
    #[serde(default)]
    pub mediated_dtd: String,
    /// The label set.
    pub labels: LabelSet,
    /// The learners, in combination order.
    pub learners: Vec<SavedLearner>,
    /// Index of the XML learner within `learners`, if present.
    pub xml_index: Option<usize>,
    /// The trained stacking weights.
    pub meta: MetaLearner,
    /// The domain constraints.
    pub constraints: Vec<DomainConstraint>,
    /// Pipeline configuration.
    pub config: LsdConfig,
    /// Whether [`Lsd::train`] had run.
    pub trained: bool,
    /// Per-source training provenance (name, serialization format, listing
    /// count). Empty for snapshots saved before formats were tracked.
    #[serde(default)]
    pub source_provenance: Vec<SourceProvenance>,
    /// Number of feedback-WAL records folded into this model by incremental
    /// retraining (see [`Lsd::feedback_applied`]). 0 for snapshots saved
    /// before the feedback loop existed.
    #[serde(default)]
    pub feedback_applied: u64,
}

/// Current snapshot format version.
pub const SAVED_MODEL_VERSION: u32 = 1;

impl SavedModel {
    /// Parses a snapshot from JSON text, rejecting snapshots stamped with a
    /// schema version newer than [`SAVED_MODEL_VERSION`] *before* field
    /// parsing — so a future format change surfaces as a descriptive
    /// [`PersistError::UnsupportedVersion`] instead of an opaque
    /// missing-field parse error.
    ///
    /// # Errors
    /// [`PersistError::UnsupportedVersion`] for newer snapshots,
    /// [`PersistError::Json`] for malformed JSON or field mismatches.
    pub fn from_json_str(text: &str) -> Result<SavedModel, PersistError> {
        let value: serde_json::Value = serde_json::from_str(text)?;
        if let Some(serde::Value::Int(found)) = value.get("version") {
            let found = u32::try_from(*found).unwrap_or(u32::MAX);
            if found > SAVED_MODEL_VERSION {
                return Err(PersistError::UnsupportedVersion {
                    found,
                    supported: SAVED_MODEL_VERSION,
                });
            }
        }
        SavedModel::from_value(&value).map_err(|e| PersistError::Json(e.into()))
    }
}

impl Lsd {
    /// Snapshots the system (learners, meta weights, constraints, config).
    ///
    /// # Errors
    /// [`PersistError::UnsupportedLearner`] if a custom learner without a
    /// snapshot is present.
    pub fn to_saved(&self) -> Result<SavedModel, PersistError> {
        let learners = self
            .learners
            .iter()
            .map(|l| {
                l.snapshot()
                    .ok_or_else(|| PersistError::UnsupportedLearner {
                        name: l.name().to_string(),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SavedModel {
            version: SAVED_MODEL_VERSION,
            mediated_dtd: self.mediated.to_dtd_syntax(),
            labels: self.labels.clone(),
            learners,
            xml_index: self.xml_index,
            meta: self.meta.clone(),
            constraints: self.handler.constraints().to_vec(),
            config: self.config,
            trained: self.trained,
            source_provenance: self.provenance.clone(),
            feedback_applied: self.feedback_applied,
        })
    }

    /// Reconstructs a system from a snapshot.
    pub fn from_saved(saved: SavedModel) -> Lsd {
        let learners: Vec<Box<dyn BaseLearner>> = saved
            .learners
            .into_iter()
            .map(SavedLearner::restore)
            .collect();
        let handler = ConstraintHandler::new(saved.constraints)
            .with_config(saved.config.search)
            .with_candidate_limit(saved.config.candidate_limit);
        let compiled = handler.compiled(&saved.labels);
        let mediated = lsd_xml::parse_dtd(&saved.mediated_dtd).unwrap_or_default();
        Lsd {
            mediated,
            labels: saved.labels,
            learners,
            xml_index: saved.xml_index,
            meta: saved.meta,
            handler,
            compiled,
            config: saved.config,
            trained: saved.trained,
            provenance: saved.source_provenance,
            feedback_applied: saved.feedback_applied,
        }
    }

    /// Saves the system as pretty-printed JSON at `path`.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        let saved = self.to_saved()?;
        std::fs::write(path, serde_json::to_string_pretty(&saved)?)?;
        Ok(())
    }

    /// Loads a system from a JSON snapshot at `path`.
    ///
    /// # Errors
    /// [`PersistError::UnsupportedVersion`] if the snapshot was produced by
    /// a newer build, [`PersistError::Json`] / [`PersistError::Io`] for
    /// parse and file failures.
    pub fn load_json(path: impl AsRef<std::path::Path>) -> Result<Lsd, PersistError> {
        let text = std::fs::read_to_string(path)?;
        Ok(Lsd::from_saved(SavedModel::from_json_str(&text)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learners::Recognizer;
    use crate::system::{LsdBuilder, Source, TrainedSource};
    use lsd_xml::{parse_dtd, parse_fragment};
    use std::collections::HashMap;

    fn trained_system() -> (Lsd, Source) {
        let mediated = parse_dtd(
            "<!ELEMENT H (A, D, P)>\n<!ELEMENT A (#PCDATA)>\n\
             <!ELEMENT D (#PCDATA)>\n<!ELEMENT P (#PCDATA)>",
        )
        .expect("valid DTD");
        let dtd = parse_dtd(
            "<!ELEMENT h (addr, descr, phone)>\n<!ELEMENT addr (#PCDATA)>\n\
             <!ELEMENT descr (#PCDATA)>\n<!ELEMENT phone (#PCDATA)>",
        )
        .expect("valid DTD");
        let listings = [
            ("Miami, FL", "Great view", "(305) 111 2222"),
            ("Boston, MA", "Fantastic yard", "(617) 333 4444"),
            ("Austin, TX", "Nice area", "(512) 555 6666"),
        ]
        .iter()
        .map(|(a, d, p)| {
            parse_fragment(&format!(
                "<h><addr>{a}</addr><descr>{d}</descr><phone>{p}</phone></h>"
            ))
            .expect("well-formed")
        })
        .collect::<Vec<_>>();
        let train = TrainedSource {
            source: Source::from_xml("t", dtd.clone(), listings.clone()),
            mapping: HashMap::from([
                ("h".to_string(), "H".to_string()),
                ("addr".to_string(), "A".to_string()),
                ("descr".to_string(), "D".to_string()),
                ("phone".to_string(), "P".to_string()),
            ]),
        };
        let builder = LsdBuilder::new(&mediated);
        let n = builder.labels().len();
        let mut lsd = builder
            .add_learner(Box::new(NameMatcher::with_synonym_pairs(
                n,
                [("addr", "address")],
            )))
            .add_learner(Box::new(ContentMatcher::new(n)))
            .add_learner(Box::new(NaiveBayesLearner::new(n)))
            .add_learner(Box::new(StatsLearner::new(n)))
            .add_learner(Box::new(FormatLearner::new(n)))
            .with_xml_learner(None)
            .build()
            .unwrap();
        lsd.train(std::slice::from_ref(&train)).unwrap();
        let target = Source::from_xml("same", dtd, listings);
        (lsd, target)
    }

    #[test]
    fn roundtrip_preserves_matching_behavior() {
        let (lsd, target) = trained_system();
        let before = lsd.match_source(&target).unwrap();

        let saved = lsd.to_saved().expect("all built-in learners snapshot");
        let json = serde_json::to_string(&saved).expect("serializes");
        let restored: SavedModel = serde_json::from_str(&json).expect("deserializes");
        let lsd2 = Lsd::from_saved(restored);

        assert!(lsd2.is_trained());
        assert_eq!(lsd2.learner_names(), lsd.learner_names());
        let after = lsd2.match_source(&target).unwrap();
        assert_eq!(before.labels, after.labels);
        for (a, b) in before.predictions.iter().zip(&after.predictions) {
            for l in 0..a.len() {
                assert!((a.score(l) - b.score(l)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let (lsd, target) = trained_system();
        let dir = std::env::temp_dir().join("lsd-persist-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.json");
        lsd.save_json(&path).expect("saves");
        let lsd2 = Lsd::load_json(&path).expect("loads");
        assert_eq!(
            lsd.match_source(&target).unwrap().labels,
            lsd2.match_source(&target).unwrap().labels
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_preserves_mediated_schema_for_analysis() {
        let (lsd, _) = trained_system();
        let saved = lsd.to_saved().expect("snapshots");
        let json = serde_json::to_string(&saved).expect("serializes");
        let restored: SavedModel = serde_json::from_str(&json).expect("deserializes");
        let lsd2 = Lsd::from_saved(restored);
        // The mediated DTD survives as rendered text, so the static-analysis
        // pass still works on a loaded model.
        assert!(lsd2.analyze().is_empty());
    }

    #[test]
    fn source_provenance_roundtrips_and_defaults_for_old_snapshots() {
        let (lsd, _) = trained_system();
        assert_eq!(
            lsd.source_provenance(),
            &[crate::SourceProvenance {
                source: "t".into(),
                format: crate::SourceFormat::Xml,
                listings: 3,
                inferred: None,
            }]
        );
        let saved = lsd.to_saved().expect("snapshots");
        let json = serde_json::to_string(&saved).expect("serializes");
        let lsd2 = Lsd::from_saved(SavedModel::from_json_str(&json).expect("loads"));
        assert_eq!(lsd2.source_provenance(), lsd.source_provenance());
        // Snapshots written before the field existed still load, with
        // empty provenance.
        let mut value: serde_json::Value = serde_json::from_str(&json).expect("parses");
        if let serde_json::Value::Map(entries) = &mut value {
            entries.retain(|(k, _)| k != "source_provenance");
        }
        let old_json = serde_json::to_string(&value).expect("serializes");
        let lsd3 = Lsd::from_saved(SavedModel::from_json_str(&old_json).expect("loads"));
        assert!(lsd3.source_provenance().is_empty());
        assert!(lsd3.is_trained());
    }

    #[test]
    fn inferred_schema_provenance_survives_snapshot_roundtrip() {
        use crate::readers::XmlReader;
        let mediated = parse_dtd("<!ELEMENT H (A)>\n<!ELEMENT A (#PCDATA)>").expect("valid DTD");
        let reader = XmlReader::from_document(
            "<corpus><h><addr>Miami, FL</addr></h>\
             <h><addr>Boston, MA</addr></h>\
             <h><addr>Austin, TX</addr></h></corpus>",
        );
        let source = Source::from_reader("bare", &reader).expect("reads");
        assert!(source.inferred.is_some(), "container schema is inferred");
        let train = TrainedSource {
            source,
            mapping: HashMap::from([
                ("h".to_string(), "H".to_string()),
                ("addr".to_string(), "A".to_string()),
            ]),
        };
        let builder = LsdBuilder::new(&mediated);
        let n = builder.labels().len();
        let mut lsd = builder
            .add_learner(Box::new(NameMatcher::new(n, HashMap::new())))
            .build()
            .unwrap();
        lsd.train(std::slice::from_ref(&train)).unwrap();

        let saved = lsd.to_saved().expect("snapshots");
        let json = serde_json::to_string(&saved).expect("serializes");
        let lsd2 = Lsd::from_saved(SavedModel::from_json_str(&json).expect("loads"));
        let prov = &lsd2.source_provenance()[0];
        let stats = prov.inferred.as_ref().expect("marker persists");
        assert_eq!(stats.corpus_size, 3);
        assert_eq!(stats.element_support["h"], 3);
        assert_eq!(stats.element_support["addr"], 3);
    }

    #[test]
    fn snapshot_without_mediated_dtd_still_loads() {
        // Pre-analysis snapshots lack the `mediated_dtd` field; `analyze`
        // on such a model sees an empty schema rather than failing to load.
        let (lsd, target) = trained_system();
        let mut saved = lsd.to_saved().expect("snapshots");
        saved.mediated_dtd = String::new();
        let lsd2 = Lsd::from_saved(saved);
        assert!(lsd2.is_trained());
        assert!(lsd2.match_source(&target).is_ok());
    }

    #[test]
    fn newer_snapshot_version_is_rejected_descriptively() {
        let (lsd, _) = trained_system();
        let mut saved = lsd.to_saved().expect("snapshots");
        saved.version = 999;
        let json = serde_json::to_string(&saved).expect("serializes");
        match SavedModel::from_json_str(&json) {
            Err(PersistError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 999);
                assert_eq!(supported, SAVED_MODEL_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // The same guard protects the file-loading path.
        let dir = std::env::temp_dir().join("lsd-persist-version-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("future.json");
        std::fs::write(&path, &json).expect("writes");
        let err = match Lsd::load_json(&path) {
            Err(e) => e,
            Ok(_) => panic!("future snapshot must not load"),
        };
        assert!(err.to_string().contains("schema version 999"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn current_snapshot_version_loads_via_from_json_str() {
        let (lsd, target) = trained_system();
        let json = serde_json::to_string(&lsd.to_saved().expect("snapshots")).expect("serializes");
        let restored = SavedModel::from_json_str(&json).expect("current version loads");
        let lsd2 = Lsd::from_saved(restored);
        assert_eq!(
            lsd.match_source(&target).unwrap().labels,
            lsd2.match_source(&target).unwrap().labels
        );
    }

    #[test]
    fn county_recognizer_roundtrips_via_parameters() {
        let saved = SavedLearner::CountyRecognizer {
            num_labels: 4,
            target: 2,
        };
        let learner = saved.restore();
        let instance = crate::Instance::new(
            lsd_xml::Element::text_leaf("c", "King County"),
            vec!["c".into()],
        );
        assert_eq!(learner.predict(&instance).best_label(), 2);
    }

    #[test]
    fn custom_recognizer_is_rejected_with_name() {
        let mediated = parse_dtd("<!ELEMENT A (#PCDATA)>").expect("valid DTD");
        let builder = LsdBuilder::new(&mediated);
        let n = builder.labels().len();
        let lsd = builder
            .add_learner(Box::new(Recognizer::new("zip-recognizer", n, 0, |v| {
                v.len() == 5
            })))
            .build()
            .unwrap();
        match lsd.to_saved() {
            Err(PersistError::UnsupportedLearner { name }) => {
                assert_eq!(name, "zip-recognizer");
            }
            other => panic!("expected UnsupportedLearner, got {other:?}"),
        }
    }
}
