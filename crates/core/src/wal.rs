//! The durable feedback write-ahead log.
//!
//! Corrections accepted by the serving layer are appended here *before*
//! they are acknowledged, so an accepted correction survives a crash of
//! the server or of the retrain worker. The retrain worker folds records
//! into new model generations asynchronously; on restart, the WAL is
//! replayed minus the prefix the loaded snapshot already absorbed
//! ([`crate::Lsd::feedback_applied`]).
//!
//! # File format
//!
//! ```text
//! magic: 8 bytes  b"LSDWAL01"
//! record*:
//!   len:     u32 little-endian  (payload byte count)
//!   crc32:   u32 little-endian  (IEEE CRC-32 of the payload)
//!   payload: len bytes          (one FeedbackRecord as JSON)
//! ```
//!
//! Appends are flushed with `fsync` before [`FeedbackWal::append`]
//! returns. Recovery reads the longest valid record prefix: a torn or
//! corrupt record (short header, short payload, or checksum mismatch —
//! what a crash mid-append leaves behind) ends the replay, and the file is
//! truncated back to the valid prefix so the next append starts clean.
//! Recovery never panics; only a foreign file (bad magic) is an error.

use crate::feedback::Correction;
use crate::system::Source;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The 8-byte file magic, versioned with the format.
pub const WAL_MAGIC: &[u8; 8] = b"LSDWAL01";

/// One WAL record: a batch of corrections about one source, with enough of
/// the source itself (schema + listings) to re-derive training examples at
/// retrain time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedbackRecord {
    /// The corrected source's display name.
    pub source_name: String,
    /// The source schema in `<!ELEMENT ...>` syntax.
    pub dtd: String,
    /// The source listings, each rendered as one XML document.
    pub listings: Vec<String>,
    /// The corrections, in the order the user gave them.
    pub corrections: Vec<Correction>,
}

impl FeedbackRecord {
    /// Captures a source and its corrections as one durable record.
    pub fn from_source(source: &Source, corrections: Vec<Correction>) -> Self {
        FeedbackRecord {
            source_name: source.name.clone(),
            dtd: source.dtd.to_dtd_syntax(),
            listings: source.listings.iter().map(lsd_xml::write_element).collect(),
            corrections,
        }
    }

    /// Reconstructs the source this record captured.
    ///
    /// # Errors
    /// An [`io::ErrorKind::InvalidData`] error when the stored DTD or a
    /// listing does not parse (possible only if the record was produced by
    /// an incompatible build).
    pub fn to_source(&self) -> io::Result<Source> {
        let dtd = lsd_xml::parse_dtd(&self.dtd)
            .map_err(|e| invalid_data(format!("WAL record DTD does not parse: {e}")))?;
        let listings = self
            .listings
            .iter()
            .map(|text| {
                lsd_xml::parse_fragment(text)
                    .map_err(|e| invalid_data(format!("WAL record listing does not parse: {e}")))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Source::from_xml(self.source_name.as_str(), dtd, listings))
    }
}

/// An append-only, checksummed, fsync-on-append feedback log.
#[derive(Debug)]
pub struct FeedbackWal {
    file: File,
    path: PathBuf,
    records: u64,
}

impl FeedbackWal {
    /// Opens (or creates) the WAL at `path` and replays every valid record.
    ///
    /// A torn or corrupt tail — the residue of a crash mid-append — is
    /// truncated away, and replay returns the records before it. The
    /// returned vector holds *all* valid records since the file was
    /// created; callers that already absorbed a prefix (a snapshot with
    /// nonzero [`crate::Lsd::feedback_applied`]) skip it themselves.
    ///
    /// # Errors
    /// I/O failures, or [`io::ErrorKind::InvalidData`] when the file exists
    /// but does not start with [`WAL_MAGIC`] (it is not a feedback WAL —
    /// truncating it could destroy someone else's data).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(FeedbackWal, Vec<FeedbackRecord>)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            return Ok((
                FeedbackWal {
                    file,
                    path,
                    records: 0,
                },
                Vec::new(),
            ));
        }
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(invalid_data(format!(
                "{} is not a feedback WAL (bad magic)",
                path.display()
            )));
        }
        let (records, valid_len) = replay(&bytes[WAL_MAGIC.len()..]);
        let valid_len = (WAL_MAGIC.len() + valid_len) as u64;
        if valid_len < bytes.len() as u64 {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let count = records.len() as u64;
        Ok((
            FeedbackWal {
                file,
                path,
                records: count,
            },
            records,
        ))
    }

    /// Durably appends one record (length + CRC-32 + JSON payload, then
    /// `fsync`) and returns its zero-based index in the log.
    ///
    /// # Errors
    /// I/O failures; the record is not acknowledged durable unless this
    /// returns `Ok`.
    pub fn append(&mut self, record: &FeedbackRecord) -> io::Result<u64> {
        let payload = serde_json::to_string(record)
            .map_err(|e| invalid_data(format!("feedback record does not serialize: {e}")))?;
        let payload = payload.as_bytes();
        let len = u32::try_from(payload.len())
            .map_err(|_| invalid_data("feedback record exceeds 4 GiB".to_string()))?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.sync_all()?;
        let index = self.records;
        self.records += 1;
        if lsd_obs::enabled() {
            lsd_obs::counter_add("wal.appends", "", 1);
        }
        Ok(index)
    }

    /// Total number of records in the log (replayed + appended).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Structurally scans WAL bytes **without repairing anything** — the
    /// introspection twin of [`FeedbackWal::open`], for audit tooling that
    /// must report a torn tail rather than silently truncate it. Accepts
    /// any bytes; a missing magic yields a scan with `has_magic == false`
    /// and no records.
    pub fn scan_bytes(bytes: &[u8]) -> WalScan {
        let has_magic = bytes.len() >= WAL_MAGIC.len() && &bytes[..WAL_MAGIC.len()] == WAL_MAGIC;
        let (records, valid_len) = if has_magic {
            let (records, body_len) = replay(&bytes[WAL_MAGIC.len()..]);
            (records, (WAL_MAGIC.len() + body_len) as u64)
        } else {
            (Vec::new(), 0)
        };
        WalScan {
            records,
            valid_len,
            file_len: bytes.len() as u64,
            has_magic,
        }
    }

    /// Reads and [scans](FeedbackWal::scan_bytes) the file at `path`. The
    /// file is opened read-only and never modified.
    ///
    /// # Errors
    /// I/O failures reading the file.
    pub fn scan_file(path: impl AsRef<Path>) -> io::Result<WalScan> {
        Ok(FeedbackWal::scan_bytes(&std::fs::read(path)?))
    }
}

/// The result of a non-mutating WAL scan: what [`FeedbackWal::open`] would
/// recover, plus how many trailing bytes it would have to discard to get
/// there.
#[derive(Debug)]
pub struct WalScan {
    /// Every record in the valid prefix.
    pub records: Vec<FeedbackRecord>,
    /// Byte length of the valid prefix (magic + whole records).
    pub valid_len: u64,
    /// Total byte length of the scanned input.
    pub file_len: u64,
    /// Whether the input starts with [`WAL_MAGIC`].
    pub has_magic: bool,
}

impl WalScan {
    /// Number of valid records.
    pub fn record_count(&self) -> u64 {
        self.records.len() as u64
    }

    /// Trailing bytes recovery would truncate (0 for a clean log).
    pub fn torn_bytes(&self) -> u64 {
        self.file_len.saturating_sub(self.valid_len)
    }
}

/// Decodes the longest valid record prefix of `bytes` (the file contents
/// after the magic). Returns the records and the byte length of the valid
/// prefix; anything after it is a torn or corrupt tail.
fn replay(bytes: &[u8]) -> (Vec<FeedbackRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // corrupt payload (or a torn header misread as a length)
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(record) = serde_json::from_str::<FeedbackRecord>(text) else {
            break;
        };
        records.push(record);
        pos += 8 + len;
    }
    (records, pos)
}

/// IEEE CRC-32 (the zlib/PNG polynomial), bytewise table-driven.
fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

fn invalid_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::Correction;
    use lsd_xml::{parse_dtd, parse_fragment};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal_path(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join("lsd-wal-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!(
            "{label}-{}-{}.wal",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn source() -> Source {
        let dtd = parse_dtd(
            "<!ELEMENT house (location, contact)>\n\
             <!ELEMENT location (#PCDATA)>\n<!ELEMENT contact (#PCDATA)>",
        )
        .expect("valid DTD");
        let listings = vec![parse_fragment(
            "<house><location>Kent, WA</location><contact>(206) 111 2222</contact></house>",
        )
        .expect("valid listing")];
        Source::from_xml("wal-test", dtd, listings)
    }

    fn record(i: u64) -> FeedbackRecord {
        FeedbackRecord::from_source(
            &source(),
            vec![Correction::tag_is("location", "ADDRESS").with_provenance("wal-test", i, "test")],
        )
    }

    #[test]
    fn roundtrips_records_across_reopen() {
        let path = temp_wal_path("roundtrip");
        {
            let (mut wal, replayed) = FeedbackWal::open(&path).expect("creates");
            assert!(replayed.is_empty());
            assert_eq!(wal.append(&record(0)).expect("appends"), 0);
            assert_eq!(wal.append(&record(1)).expect("appends"), 1);
            assert_eq!(wal.record_count(), 2);
        }
        let (wal, replayed) = FeedbackWal::open(&path).expect("reopens");
        assert_eq!(wal.record_count(), 2);
        assert_eq!(replayed, vec![record(0), record(1)]);
        // The reconstructed source matches the original byte-for-byte.
        let restored = replayed[0].to_source().expect("parses");
        assert_eq!(restored.name, "wal-test");
        assert_eq!(restored.dtd.to_dtd_syntax(), source().dtd.to_dtd_syntax());
        assert_eq!(
            lsd_xml::write_element(&restored.listings[0]),
            lsd_xml::write_element(&source().listings[0])
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appending_after_recovery_continues_the_log() {
        let path = temp_wal_path("continue");
        {
            let (mut wal, _) = FeedbackWal::open(&path).expect("creates");
            wal.append(&record(0)).expect("appends");
        }
        {
            let (mut wal, replayed) = FeedbackWal::open(&path).expect("reopens");
            assert_eq!(replayed.len(), 1);
            assert_eq!(wal.append(&record(1)).expect("appends"), 1);
        }
        let (_, replayed) = FeedbackWal::open(&path).expect("reopens");
        assert_eq!(replayed, vec![record(0), record(1)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_every_byte_offset_of_the_last_record_recovers_n_minus_one() {
        let path = temp_wal_path("torn");
        let full_len;
        let intact_len;
        {
            let (mut wal, _) = FeedbackWal::open(&path).expect("creates");
            wal.append(&record(0)).expect("appends");
            wal.append(&record(1)).expect("appends");
            intact_len = std::fs::metadata(&path).expect("stats").len();
            wal.append(&record(2)).expect("appends");
            full_len = std::fs::metadata(&path).expect("stats").len();
        }
        let full = std::fs::read(&path).expect("reads");
        for cut in intact_len..full_len {
            std::fs::write(&path, &full[..cut as usize]).expect("writes torn file");
            let (wal, replayed) =
                FeedbackWal::open(&path).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(replayed.len(), 2, "cut at {cut}");
            assert_eq!(replayed, vec![record(0), record(1)], "cut at {cut}");
            assert_eq!(wal.record_count(), 2);
            // The torn tail was truncated away.
            assert_eq!(std::fs::metadata(&path).expect("stats").len(), intact_len);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_byte_ends_the_replay() {
        let path = temp_wal_path("corrupt");
        {
            let (mut wal, _) = FeedbackWal::open(&path).expect("creates");
            wal.append(&record(0)).expect("appends");
            wal.append(&record(1)).expect("appends");
        }
        let mut bytes = std::fs::read(&path).expect("reads");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip one byte inside record 1's payload
        std::fs::write(&path, &bytes).expect("writes");
        let (_, replayed) = FeedbackWal::open(&path).expect("recovers");
        assert_eq!(replayed, vec![record(0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_rejected_not_truncated() {
        let path = temp_wal_path("foreign");
        std::fs::write(&path, b"definitely not a WAL file").expect("writes");
        let err = FeedbackWal::open(&path).expect_err("rejects");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The file is untouched.
        assert_eq!(
            std::fs::read(&path).expect("reads"),
            b"definitely not a WAL file"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_reports_a_torn_tail_without_repairing_it() {
        let path = temp_wal_path("scan-torn");
        {
            let (mut wal, _) = FeedbackWal::open(&path).expect("creates");
            wal.append(&record(0)).expect("appends");
        }
        let intact = std::fs::metadata(&path).expect("stats").len();
        let mut bytes = std::fs::read(&path).expect("reads");
        bytes.extend_from_slice(&[0x10, 0x00]); // 2 bytes of a torn header
        std::fs::write(&path, &bytes).expect("writes");

        let scan = FeedbackWal::scan_file(&path).expect("scans");
        assert!(scan.has_magic);
        assert_eq!(scan.record_count(), 1);
        assert_eq!(scan.records, vec![record(0)]);
        assert_eq!(scan.valid_len, intact);
        assert_eq!(scan.torn_bytes(), 2);
        // Unlike open(), the scan left the file untouched.
        assert_eq!(std::fs::metadata(&path).expect("stats").len(), intact + 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_of_a_clean_log_has_no_torn_bytes() {
        let path = temp_wal_path("scan-clean");
        {
            let (mut wal, _) = FeedbackWal::open(&path).expect("creates");
            wal.append(&record(0)).expect("appends");
            wal.append(&record(1)).expect("appends");
        }
        let scan = FeedbackWal::scan_file(&path).expect("scans");
        assert_eq!(scan.record_count(), 2);
        assert_eq!(scan.torn_bytes(), 0);
        assert_eq!(scan.valid_len, scan.file_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_of_foreign_bytes_reports_missing_magic() {
        let scan = FeedbackWal::scan_bytes(b"not a wal");
        assert!(!scan.has_magic);
        assert_eq!(scan.record_count(), 0);
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.torn_bytes(), 9);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
