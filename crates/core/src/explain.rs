//! Decision provenance: the full "why did LSD map `tag` to `label`?" story
//! for one matched source.
//!
//! [`crate::MatchOutcome::explain`] assembles, per source tag, everything
//! the pipeline already captured while matching — no second pass:
//!
//! - each base learner's converted tag-level score for every candidate
//!   label, together with the stacking weight `W(label, learner)` the
//!   meta-learner applied to it (Section 3.2's worked example, live);
//! - the combined converter score the constraint handler ranked by;
//! - for every candidate that outranked the chosen label, *why it lost*:
//!   the hard constraints it violates, or the cost delta the swap would
//!   incur ([`RejectionReason`]);
//! - the A\* search's per-(tag, label) generate/prune counters
//!   ([`TagLabelSearch`], from `lsd_constraints::SearchEvents`).
//!
//! Explanations are plain serializable data: render them with
//! [`Explanation::render`] for humans or serialize to JSON for tooling
//! (the `lsd-explain` binary does both). The record is deterministic —
//! byte-identical across `LSD_THREADS` settings, like the mapping itself.

use serde::Serialize;

use crate::system::MatchOutcome;

/// Why a candidate that outranked the chosen label did not win.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RejectionReason {
    /// Swapping the candidate in violates one or more hard domain
    /// constraints — the assignment would be infeasible.
    Constraint {
        /// `Display` renderings of the violated hard constraints.
        violated: Vec<String>,
    },
    /// The swap is feasible but costs more than the chosen mapping
    /// (soft-constraint penalties and/or probability cost outweigh the
    /// higher tag-level score).
    CostlierMapping {
        /// `cost(swapped) − cost(chosen)`, strictly positive.
        delta_cost: f64,
    },
    /// The swap is feasible and not costlier with every other tag held
    /// fixed, yet the search still preferred the chosen mapping — the
    /// search stopped early (deadline, beam width) before exploring it.
    SearchIncomplete {
        /// `cost(swapped) − cost(chosen)`, zero or negative.
        delta_cost: f64,
    },
}

/// One base learner's contribution to a candidate's combined score.
#[derive(Debug, Clone, Serialize)]
pub struct LearnerContribution {
    /// Base learner name.
    pub learner: String,
    /// The learner's converted tag-level score for this label.
    pub score: f64,
    /// The meta-learner's stacking weight `W(label, learner)`.
    pub weight: f64,
    /// `weight × score` — the term this learner adds to the stacked sum.
    pub weighted: f64,
}

/// Per-(tag, label) constraint-search telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TagLabelSearch {
    /// Successor nodes generated assigning this label to this tag.
    pub generated: u64,
    /// Prunes by the mandatory-label deadline check.
    pub pruned_deadline: u64,
    /// Prunes by hard-constraint infeasibility.
    pub pruned_infeasible: u64,
}

/// One ranked candidate label, annotated with provenance.
#[derive(Debug, Clone, Serialize)]
pub struct CandidateExplanation {
    /// The mediated-schema label name.
    pub label: String,
    /// Rank by combined score (0 = best). Matches the order of
    /// [`MatchOutcome::candidates`] exactly.
    pub rank: usize,
    /// The combined converter score the constraint handler ranked by.
    pub score: f64,
    /// True for the label the final mapping assigned to this tag.
    pub chosen: bool,
    /// Per-learner breakdown of `score`'s provenance, in combination
    /// order.
    pub learners: Vec<LearnerContribution>,
    /// Why this candidate lost, for candidates ranked above the chosen
    /// label in a feasible mapping. `None` for the chosen label, for
    /// candidates ranked below it, and throughout infeasible mappings.
    pub rejection: Option<RejectionReason>,
    /// Search activity attributed to this (tag, label) pair.
    pub search: TagLabelSearch,
}

/// The full provenance record for one source tag.
#[derive(Debug, Clone, Serialize)]
pub struct Explanation {
    /// The source tag.
    pub tag: String,
    /// The label the final mapping assigned (`OTHER` if unmatched).
    pub chosen_label: String,
    /// Whether the overall source mapping satisfied every hard constraint.
    pub feasible: bool,
    /// How many data instances of this tag the pipeline examined.
    pub instances_examined: usize,
    /// Every candidate label, best first, with scores, weights and
    /// rejection verdicts.
    pub candidates: Vec<CandidateExplanation>,
}

impl Explanation {
    /// Renders the explanation for humans. Deterministic: byte-identical
    /// across thread counts for the same trained system and source.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tag `{}` -> {}  ({}, {} instances examined)",
            self.tag,
            self.chosen_label,
            if self.feasible {
                "feasible mapping"
            } else {
                "no feasible mapping"
            },
            self.instances_examined,
        );
        for cand in &self.candidates {
            let marker = if cand.chosen { "  <- chosen" } else { "" };
            let _ = writeln!(
                out,
                "  #{} {}  score {:.4}{}",
                cand.rank + 1,
                cand.label,
                cand.score,
                marker,
            );
            for lc in &cand.learners {
                let _ = writeln!(
                    out,
                    "      {:<12} w={:.3} x s={:.4} = {:.4}",
                    lc.learner, lc.weight, lc.score, lc.weighted,
                );
            }
            match &cand.rejection {
                Some(RejectionReason::Constraint { violated }) => {
                    let _ = writeln!(out, "      rejected: violates {}", violated.join("; "));
                }
                Some(RejectionReason::CostlierMapping { delta_cost }) => {
                    let _ = writeln!(
                        out,
                        "      rejected: mapping cost would rise by {delta_cost:.4}",
                    );
                }
                Some(RejectionReason::SearchIncomplete { delta_cost }) => {
                    let _ = writeln!(
                        out,
                        "      rejected: search stopped early (swap delta {delta_cost:.4})",
                    );
                }
                None => {}
            }
            if cand.search != TagLabelSearch::default() {
                let _ = writeln!(
                    out,
                    "      search: {} generated, {} pruned (deadline), {} pruned (infeasible)",
                    cand.search.generated,
                    cand.search.pruned_deadline,
                    cand.search.pruned_infeasible,
                );
            }
        }
        out
    }
}

impl MatchOutcome {
    /// The provenance record for one source tag: per-learner scores with
    /// their stacking weights, combined scores, rejection verdicts for
    /// every candidate that outranked the chosen label, and per-(tag,
    /// label) search counters. `None` for a tag the source does not have.
    ///
    /// Candidates appear in exactly the order of
    /// [`MatchOutcome::candidates`].
    pub fn explain(&self, tag: &str) -> Option<Explanation> {
        let ti = self.tags.iter().position(|t| t == tag)?;
        Some(self.explain_index(ti))
    }

    /// [`MatchOutcome::explain`] for every tag, in schema declaration
    /// order.
    pub fn explain_all(&self) -> Vec<Explanation> {
        (0..self.tags.len())
            .map(|ti| self.explain_index(ti))
            .collect()
    }

    fn explain_index(&self, ti: usize) -> Explanation {
        let events = &self.result.events;
        let candidates = self.candidates[ti]
            .iter()
            .enumerate()
            .map(|(rank, cand)| {
                let learners = self
                    .learner_names
                    .iter()
                    .zip(&cand.per_learner)
                    .enumerate()
                    .map(|(j, (name, &score))| {
                        let weight = self
                            .meta_weights
                            .get(cand.label_id)
                            .and_then(|row| row.get(j))
                            .copied()
                            .unwrap_or(0.0);
                        LearnerContribution {
                            learner: name.to_string(),
                            score,
                            weight,
                            weighted: weight * score,
                        }
                    })
                    .collect();
                CandidateExplanation {
                    label: cand.label.clone(),
                    rank,
                    score: cand.score,
                    chosen: cand.label == self.labels[ti],
                    learners,
                    rejection: self.rejections[ti].get(rank).cloned().flatten(),
                    search: TagLabelSearch {
                        generated: events.generated_for(ti, cand.label_id),
                        pruned_deadline: events.pruned_deadline_for(ti, cand.label_id),
                        pruned_infeasible: events.pruned_infeasible_for(ti, cand.label_id),
                    },
                }
            })
            .collect();
        Explanation {
            tag: self.tags[ti].clone(),
            chosen_label: self.labels[ti].clone(),
            feasible: self.result.feasible,
            instances_examined: self.instances_examined[ti],
            candidates,
        }
    }
}
