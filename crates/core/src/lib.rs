//! # lsd-core
//!
//! The LSD schema matcher (paper Sections 3–5): given a mediated DTD and a
//! handful of user-mapped training sources, LSD learns to propose 1-1
//! semantic mappings for new sources.
//!
//! The system has four major components (Figure 4):
//!
//! 1. **Base learners** ([`learners`]) — each exploits a different kind of
//!    information: the [`learners::NameMatcher`] (WHIRL over tag names +
//!    synonyms + root paths), the [`learners::ContentMatcher`] (WHIRL over
//!    data content), the [`learners::NaiveBayesLearner`] (word frequencies),
//!    the [`learners::XmlLearner`] (structure tokens, Section 5), dictionary
//!    [`learners::Recognizer`]s such as the county-name recognizer, and the
//!    [`learners::FormatLearner`] extension suggested in Section 7.
//! 2. **Meta-learner** ([`MetaLearner`]) — stacking: per-(label, learner)
//!    weights fit by least-squares regression on cross-validated base
//!    learner predictions (Section 3.1 step 5).
//! 3. **Prediction converter** ([`converter`]) — averages per-instance
//!    predictions into one prediction per source tag (Section 3.2 step 2).
//! 4. **Constraint handler** (re-exported from `lsd-constraints`) — A\*
//!    search for the least-cost mapping under domain constraints and user
//!    feedback (Section 4).
//!
//! [`Lsd`] ties them together with the two-phase train/match workflow, and
//! [`feedback`] implements the Section 6.3 interactive-feedback protocol
//! with a simulated oracle.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod converter;
mod counties;
mod error;
pub mod explain;
pub mod feedback;
pub mod hierarchy;
mod instance;
pub mod learners;
mod meta;
pub mod persist;
pub mod readers;
pub mod report;
mod system;
pub mod wal;

pub use converter::{convert_column, convert_column_with, CombinationRule};
pub use error::LsdError;
pub use explain::{
    CandidateExplanation, Explanation, LearnerContribution, RejectionReason, TagLabelSearch,
};
pub use feedback::{
    simulate_feedback_session, Correction, CorrectionKind, Feedback, FeedbackOutcome, StallReason,
};
pub use hierarchy::{most_specific_unambiguous, PartialMatch};
pub use instance::{build_source_data, extract_instances, Instance};
pub use meta::MetaLearner;
pub use persist::{PersistError, SavedLearner, SavedModel, SAVED_MODEL_VERSION};
pub use readers::{
    synthesize_dtd, synthesize_dtd_with_stats, CsvReader, JsonReader, ReadError, SourceContents,
    SourceFormat, SourceReader, SqlReader, XmlReader,
};
pub use report::{MatchReport, TrainReport};
pub use system::{
    LabelCandidate, Lsd, LsdBuilder, LsdConfig, MatchOutcome, Source, SourceProvenance,
    TagExplanation, TrainedSource,
};
pub use wal::{FeedbackRecord, FeedbackWal, WalScan, WAL_MAGIC};

// Schema inference over DTD-less instances (`Lsd::infer_dtd` delegates
// here); the stats type also rides on [`SourceProvenance`].
pub use lsd_infer::{InferError, Inference, InferenceStats};

// The constraint vocabulary is part of LSD's public face.
pub use lsd_constraints::{
    ConstraintHandler, ConstraintKind, DomainConstraint, MappingResult, Predicate, SearchAlgorithm,
    SearchConfig, SourceData,
};
pub use lsd_learn::{ExecPolicy, LabelSet, Prediction};

// The static-analysis pass gates `train`/`set_constraints`; its vocabulary
// is part of the pipeline's error surface ([`LsdError::Analysis`]).
pub use lsd_analysis::{Code as DiagnosticCode, Diagnostic, Severity};
