//! The interactive user-feedback protocol (paper Section 6.3), with a
//! simulated oracle.
//!
//! "We enter the following loop until every tag has been matched correctly:
//! (1) we apply LSD to the testing source, (2) LSD shows the predicted
//! labels of the tags [ordered by decreasing structure score], (3) when we
//! see an incorrect label, we provide LSD with the correct one, then ask
//! LSD to redo the matching process, taking the correct labels into
//! consideration."
//!
//! The paper measures *how many correct labels the user must provide* until
//! the matching is perfect (3 for Time Schedule, 6.3 for Real Estate II, on
//! schemas of ~17 and ~38.6 tags).

use crate::error::LsdError;
use crate::system::{Lsd, Source};
use lsd_constraints::{DomainConstraint, Predicate};
use lsd_learn::LabelSet;
use lsd_xml::SchemaTree;
use std::collections::HashMap;

/// The result of a simulated feedback session.
#[derive(Debug, Clone)]
pub struct FeedbackOutcome {
    /// Number of correct labels the oracle had to provide.
    pub corrections: usize,
    /// Number of match/redo rounds run (corrections + the final verifying
    /// round).
    pub rounds: usize,
    /// True if the session reached a perfect matching.
    pub converged: bool,
    /// The corrected tags in the order they were corrected.
    pub corrected_tags: Vec<String>,
}

/// Runs the Section 6.3 loop: repeatedly match `source`, walk the tags in
/// decreasing structure-score order, and on the first wrong label inject a
/// `TagIs` feedback constraint with the true label from `truth` (source tag
/// → mediated tag; missing entries mean `OTHER`). Stops when the matching
/// is perfect or every tag has been corrected.
///
/// # Errors
/// As for [`Lsd::match_source`] (untrained system, malformed source DTD).
pub fn simulate_feedback_session(
    lsd: &Lsd,
    source: &Source,
    truth: &HashMap<String, String>,
) -> Result<FeedbackOutcome, LsdError> {
    let schema = SchemaTree::from_dtd(&source.dtd).map_err(|e| LsdError::InvalidSchema {
        source: source.name.clone(),
        detail: e.to_string(),
    })?;
    let order: Vec<String> = schema
        .tags_by_structure_score()
        .into_iter()
        .map(str::to_string)
        .collect();

    let truth_label = |tag: &str| -> &str {
        truth
            .get(tag)
            .map(String::as_str)
            .unwrap_or(LabelSet::OTHER)
    };

    let mut feedback: Vec<DomainConstraint> = Vec::new();
    let mut corrected_tags: Vec<String> = Vec::new();
    let mut rounds = 0;
    // Each round corrects at most one tag, so tags+1 rounds always suffice.
    for _ in 0..=order.len() {
        rounds += 1;
        let outcome = lsd.match_source_with_feedback(source, &feedback)?;
        let first_wrong = order.iter().find(|tag| {
            outcome
                .label_of(tag)
                .is_some_and(|predicted| predicted != truth_label(tag))
        });
        match first_wrong {
            None => {
                return Ok(FeedbackOutcome {
                    corrections: corrected_tags.len(),
                    rounds,
                    converged: true,
                    corrected_tags,
                })
            }
            Some(tag) if corrected_tags.contains(tag) => {
                // The handler failed to honour an existing correction
                // (feasibility collapse): repeating it cannot help.
                break;
            }
            Some(tag) => {
                feedback.push(DomainConstraint::hard(Predicate::TagIs {
                    tag: tag.clone(),
                    label: truth_label(tag).to_string(),
                }));
                corrected_tags.push(tag.clone());
            }
        }
    }
    Ok(FeedbackOutcome {
        corrections: corrected_tags.len(),
        rounds,
        converged: false,
        corrected_tags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
    use crate::system::{LsdBuilder, TrainedSource};
    use lsd_xml::{parse_dtd, parse_fragment};

    fn mediated() -> lsd_xml::Dtd {
        parse_dtd(
            "<!ELEMENT HOUSE (ADDRESS, DESCRIPTION, AGENT-PHONE)>\n\
             <!ELEMENT ADDRESS (#PCDATA)>\n\
             <!ELEMENT DESCRIPTION (#PCDATA)>\n\
             <!ELEMENT AGENT-PHONE (#PCDATA)>",
        )
        .unwrap()
    }

    fn training_source() -> TrainedSource {
        let dtd = parse_dtd(
            "<!ELEMENT house (location, comments, contact)>\n\
             <!ELEMENT location (#PCDATA)>\n<!ELEMENT comments (#PCDATA)>\n\
             <!ELEMENT contact (#PCDATA)>",
        )
        .unwrap();
        let listings = [
            ("Miami, FL", "Nice area", "(305) 729 0831"),
            ("Boston, MA", "Great location", "(617) 253 1429"),
        ]
        .iter()
        .map(|(a, d, p)| {
            parse_fragment(&format!(
                "<house><location>{a}</location><comments>{d}</comments>\
                 <contact>{p}</contact></house>"
            ))
            .unwrap()
        })
        .collect();
        TrainedSource {
            source: crate::system::Source::from_xml("train", dtd, listings),
            mapping: HashMap::from([
                ("house".to_string(), "HOUSE".to_string()),
                ("location".to_string(), "ADDRESS".to_string()),
                ("comments".to_string(), "DESCRIPTION".to_string()),
                ("contact".to_string(), "AGENT-PHONE".to_string()),
            ]),
        }
    }

    /// A target source whose tag names are adversarial (swapped), so LSD's
    /// name matcher is misled and feedback is needed.
    fn hostile_source() -> (Source, HashMap<String, String>) {
        let dtd = parse_dtd(
            "<!ELEMENT house (comments, location, contact)>\n\
             <!ELEMENT comments (#PCDATA)>\n<!ELEMENT location (#PCDATA)>\n\
             <!ELEMENT contact (#PCDATA)>",
        )
        .unwrap();
        // "comments" actually holds addresses; "location" holds text.
        let listings = [("Kent, WA", "Great house", "(415) 111 2222")]
            .iter()
            .map(|(a, d, p)| {
                parse_fragment(&format!(
                    "<house><comments>{a}</comments><location>{d}</location>\
                     <contact>{p}</contact></house>"
                ))
                .unwrap()
            })
            .collect();
        let truth = HashMap::from([
            ("house".to_string(), "HOUSE".to_string()),
            ("comments".to_string(), "ADDRESS".to_string()),
            ("location".to_string(), "DESCRIPTION".to_string()),
            ("contact".to_string(), "AGENT-PHONE".to_string()),
        ]);
        (Source::from_xml("hostile", dtd, listings), truth)
    }

    fn trained_lsd() -> Lsd {
        let mediated = mediated();
        let builder = LsdBuilder::new(&mediated);
        let n = builder.labels().len();
        let mut lsd = builder
            .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, [])))
            .add_learner(Box::new(ContentMatcher::new(n)))
            .add_learner(Box::new(NaiveBayesLearner::new(n)))
            .build()
            .unwrap();
        lsd.train(&[training_source()]).unwrap();
        lsd
    }

    #[test]
    fn already_perfect_source_needs_no_corrections() {
        let lsd = trained_lsd();
        let ts = training_source();
        let truth = ts.mapping.clone();
        let outcome = simulate_feedback_session(&lsd, &ts.source, &truth).unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.corrections, 0);
        assert_eq!(outcome.rounds, 1);
    }

    #[test]
    fn hostile_source_converges_with_few_corrections() {
        let lsd = trained_lsd();
        let (source, truth) = hostile_source();
        let outcome = simulate_feedback_session(&lsd, &source, &truth).unwrap();
        assert!(outcome.converged, "session must converge: {outcome:?}");
        assert!(outcome.corrections <= 3, "{outcome:?}");
        // Verify the final feedback set really yields a perfect matching.
        let feedback: Vec<DomainConstraint> = outcome
            .corrected_tags
            .iter()
            .map(|t| {
                DomainConstraint::hard(Predicate::TagIs {
                    tag: t.clone(),
                    label: truth[t].clone(),
                })
            })
            .collect();
        let m = lsd.match_source_with_feedback(&source, &feedback).unwrap();
        for (tag, label) in &truth {
            assert_eq!(m.label_of(tag), Some(label.as_str()));
        }
    }

    #[test]
    fn corrections_bounded_by_tag_count() {
        let lsd = trained_lsd();
        let (source, truth) = hostile_source();
        let outcome = simulate_feedback_session(&lsd, &source, &truth).unwrap();
        assert!(outcome.corrections <= 4);
        assert_eq!(outcome.corrected_tags.len(), outcome.corrections);
    }
}
