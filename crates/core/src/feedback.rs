//! The interactive user-feedback protocol (paper Section 6.3): a
//! first-class correction model, plus a simulated oracle.
//!
//! "We enter the following loop until every tag has been matched correctly:
//! (1) we apply LSD to the testing source, (2) LSD shows the predicted
//! labels of the tags [ordered by decreasing structure score], (3) when we
//! see an incorrect label, we provide LSD with the correct one, then ask
//! LSD to redo the matching process, taking the correct labels into
//! consideration."
//!
//! The unit of that loop is a [`Correction`]: a typed assertion about one
//! source tag ([`CorrectionKind`]), carrying provenance (which source, when,
//! from whom). A [`Feedback`] value is an ordered batch of corrections; it
//! compiles to hard domain constraints via [`Feedback::to_constraints`] and
//! drives [`crate::Lsd::match_source_with`]. Because corrections are plain
//! serializable records, a session — simulated or live — can be replayed
//! straight into the feedback WAL (see [`crate::wal`]) and folded into the
//! model by incremental retraining.
//!
//! The paper measures *how many correct labels the user must provide* until
//! the matching is perfect (3 for Time Schedule, 6.3 for Real Estate II, on
//! schemas of ~17 and ~38.6 tags).

use crate::error::LsdError;
use crate::system::{Lsd, Source};
use lsd_constraints::{DomainConstraint, Predicate};
use lsd_learn::LabelSet;
use lsd_xml::SchemaTree;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What one correction asserts about a source tag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrectionKind {
    /// The tag maps to exactly this mediated-schema label.
    TagIs {
        /// The asserted mediated label.
        label: String,
    },
    /// The tag does *not* map to this mediated-schema label (the user
    /// rejected a prediction without knowing the right answer).
    TagIsNot {
        /// The rejected mediated label.
        label: String,
    },
    /// The tag maps to no mediated label at all (the `OTHER` slot).
    TagIsOther,
}

/// One user correction about one source tag, with provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Correction {
    /// The source tag being corrected.
    pub tag: String,
    /// What is asserted about it.
    pub kind: CorrectionKind,
    /// Name of the source the correction is about (provenance; may be
    /// empty when unknown).
    #[serde(default)]
    pub source: String,
    /// Milliseconds since the Unix epoch when the correction was made
    /// (provenance; 0 when unknown).
    #[serde(default)]
    pub timestamp_ms: u64,
    /// Who or what produced the correction, e.g. `"simulator"`, an API
    /// client identifier (provenance; may be empty).
    #[serde(default)]
    pub origin: String,
}

impl Correction {
    /// A `tag ↦ label` correction without provenance.
    pub fn tag_is(tag: impl Into<String>, label: impl Into<String>) -> Self {
        Correction {
            tag: tag.into(),
            kind: CorrectionKind::TagIs {
                label: label.into(),
            },
            source: String::new(),
            timestamp_ms: 0,
            origin: String::new(),
        }
    }

    /// A `tag ↦̸ label` rejection without provenance.
    pub fn tag_is_not(tag: impl Into<String>, label: impl Into<String>) -> Self {
        Correction {
            kind: CorrectionKind::TagIsNot {
                label: label.into(),
            },
            ..Correction::tag_is(tag, "")
        }
    }

    /// A `tag ↦ OTHER` correction without provenance.
    pub fn tag_is_other(tag: impl Into<String>) -> Self {
        Correction {
            kind: CorrectionKind::TagIsOther,
            ..Correction::tag_is(tag, "")
        }
    }

    /// Attaches provenance fields.
    #[must_use]
    pub fn with_provenance(
        mut self,
        source: impl Into<String>,
        timestamp_ms: u64,
        origin: impl Into<String>,
    ) -> Self {
        self.source = source.into();
        self.timestamp_ms = timestamp_ms;
        self.origin = origin.into();
        self
    }

    /// The hard domain constraint this correction compiles to.
    fn to_constraint(&self) -> DomainConstraint {
        match &self.kind {
            CorrectionKind::TagIs { label } => DomainConstraint::hard(Predicate::TagIs {
                tag: self.tag.clone(),
                label: label.clone(),
            }),
            CorrectionKind::TagIsNot { label } => DomainConstraint::hard(Predicate::TagIsNot {
                tag: self.tag.clone(),
                label: label.clone(),
            }),
            CorrectionKind::TagIsOther => DomainConstraint::hard(Predicate::TagIs {
                tag: self.tag.clone(),
                label: LabelSet::OTHER.to_string(),
            }),
        }
    }

    /// The mediated label this correction references, if any.
    fn label(&self) -> Option<&str> {
        match &self.kind {
            CorrectionKind::TagIs { label } | CorrectionKind::TagIsNot { label } => Some(label),
            CorrectionKind::TagIsOther => None,
        }
    }
}

/// An ordered batch of corrections — the feedback argument of
/// [`crate::Lsd::match_source_with`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Feedback {
    corrections: Vec<Correction>,
}

impl Feedback {
    /// An empty feedback batch (equivalent to matching without feedback).
    pub fn new() -> Self {
        Feedback::default()
    }

    /// Wraps an existing list of corrections.
    pub fn from_corrections(corrections: Vec<Correction>) -> Self {
        Feedback { corrections }
    }

    /// Appends one correction.
    pub fn push(&mut self, correction: Correction) {
        self.corrections.push(correction);
    }

    /// The corrections, in insertion order.
    pub fn corrections(&self) -> &[Correction] {
        &self.corrections
    }

    /// Number of corrections.
    pub fn len(&self) -> usize {
        self.corrections.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.corrections.is_empty()
    }

    /// Compiles the batch into hard domain constraints against `labels`,
    /// validating every referenced label first.
    ///
    /// # Errors
    /// [`LsdError::UnknownLabel`] when a correction references a label that
    /// is not part of the mediated schema.
    pub fn to_constraints(&self, labels: &LabelSet) -> Result<Vec<DomainConstraint>, LsdError> {
        for c in &self.corrections {
            if let Some(label) = c.label() {
                if labels.get(label).is_none() {
                    return Err(LsdError::UnknownLabel {
                        label: label.to_string(),
                    });
                }
            }
        }
        Ok(self
            .corrections
            .iter()
            .map(Correction::to_constraint)
            .collect())
    }
}

impl From<Vec<Correction>> for Feedback {
    fn from(corrections: Vec<Correction>) -> Self {
        Feedback::from_corrections(corrections)
    }
}

impl FromIterator<Correction> for Feedback {
    fn from_iter<I: IntoIterator<Item = Correction>>(iter: I) -> Self {
        Feedback::from_corrections(iter.into_iter().collect())
    }
}

/// Why a feedback session stopped without a perfect matching.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallReason {
    /// Every tag was corrected once and the matching is still imperfect.
    RoundLimitReached,
    /// The constraint handler failed to honour an already-given correction
    /// (feasibility collapse): the same tag came back wrong after being
    /// corrected, so repeating the correction cannot help.
    IgnoredCorrection {
        /// The tag whose correction was not honoured.
        tag: String,
    },
}

/// The result of a simulated feedback session.
#[derive(Debug, Clone)]
pub struct FeedbackOutcome {
    /// The corrections the oracle had to provide, in order — replayable
    /// into a [`Feedback`] batch or a [`crate::FeedbackWal`].
    pub corrections: Vec<Correction>,
    /// Number of match/redo rounds run (corrections + the final verifying
    /// round).
    pub rounds: usize,
    /// True if the session reached a perfect matching.
    pub converged: bool,
    /// Why the session stalled; `None` exactly when `converged`.
    pub stall_reason: Option<StallReason>,
    /// The corrected tags in the order they were corrected.
    pub corrected_tags: Vec<String>,
}

/// Runs the Section 6.3 loop: repeatedly match `source`, walk the tags in
/// decreasing structure-score order, and on the first wrong label inject a
/// [`Correction`] with the true label from `truth` (source tag → mediated
/// tag; missing entries mean `OTHER`). Stops when the matching is perfect
/// or every tag has been corrected; [`FeedbackOutcome::stall_reason`] says
/// which way a non-converged session stopped.
///
/// # Errors
/// As for [`Lsd::match_source`] (untrained system, malformed source DTD).
pub fn simulate_feedback_session(
    lsd: &Lsd,
    source: &Source,
    truth: &HashMap<String, String>,
) -> Result<FeedbackOutcome, LsdError> {
    let schema = SchemaTree::from_dtd(&source.dtd).map_err(|e| LsdError::InvalidSchema {
        source: source.name.clone(),
        detail: e.to_string(),
    })?;
    let order: Vec<String> = schema
        .tags_by_structure_score()
        .into_iter()
        .map(str::to_string)
        .collect();

    let truth_label = |tag: &str| -> &str {
        truth
            .get(tag)
            .map(String::as_str)
            .unwrap_or(LabelSet::OTHER)
    };

    let mut feedback = Feedback::new();
    let mut corrected_tags: Vec<String> = Vec::new();
    let mut rounds = 0;
    let mut stall_reason = StallReason::RoundLimitReached;
    // Each round corrects at most one tag, so tags+1 rounds always suffice.
    for _ in 0..=order.len() {
        rounds += 1;
        let outcome = lsd.match_source_with(source, &feedback)?;
        let first_wrong = order.iter().find(|tag| {
            outcome
                .label_of(tag)
                .is_some_and(|predicted| predicted != truth_label(tag))
        });
        match first_wrong {
            None => {
                return Ok(FeedbackOutcome {
                    corrections: feedback.corrections,
                    rounds,
                    converged: true,
                    stall_reason: None,
                    corrected_tags,
                })
            }
            Some(tag) if corrected_tags.contains(tag) => {
                stall_reason = StallReason::IgnoredCorrection { tag: tag.clone() };
                break;
            }
            Some(tag) => {
                let truth = truth_label(tag);
                let correction = if truth == LabelSet::OTHER {
                    Correction::tag_is_other(tag)
                } else {
                    Correction::tag_is(tag, truth)
                };
                feedback.push(correction.with_provenance(&source.name, now_ms(), "simulator"));
                corrected_tags.push(tag.clone());
            }
        }
    }
    Ok(FeedbackOutcome {
        corrections: feedback.corrections,
        rounds,
        converged: false,
        stall_reason: Some(stall_reason),
        corrected_tags,
    })
}

/// Wall-clock milliseconds since the Unix epoch, for correction provenance.
pub(crate) fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
    use crate::system::{LsdBuilder, TrainedSource};
    use lsd_xml::{parse_dtd, parse_fragment};

    fn mediated() -> lsd_xml::Dtd {
        parse_dtd(
            "<!ELEMENT HOUSE (ADDRESS, DESCRIPTION, AGENT-PHONE)>\n\
             <!ELEMENT ADDRESS (#PCDATA)>\n\
             <!ELEMENT DESCRIPTION (#PCDATA)>\n\
             <!ELEMENT AGENT-PHONE (#PCDATA)>",
        )
        .unwrap()
    }

    fn training_source() -> TrainedSource {
        let dtd = parse_dtd(
            "<!ELEMENT house (location, comments, contact)>\n\
             <!ELEMENT location (#PCDATA)>\n<!ELEMENT comments (#PCDATA)>\n\
             <!ELEMENT contact (#PCDATA)>",
        )
        .unwrap();
        let listings = [
            ("Miami, FL", "Nice area", "(305) 729 0831"),
            ("Boston, MA", "Great location", "(617) 253 1429"),
        ]
        .iter()
        .map(|(a, d, p)| {
            parse_fragment(&format!(
                "<house><location>{a}</location><comments>{d}</comments>\
                 <contact>{p}</contact></house>"
            ))
            .unwrap()
        })
        .collect();
        TrainedSource {
            source: crate::system::Source::from_xml("train", dtd, listings),
            mapping: HashMap::from([
                ("house".to_string(), "HOUSE".to_string()),
                ("location".to_string(), "ADDRESS".to_string()),
                ("comments".to_string(), "DESCRIPTION".to_string()),
                ("contact".to_string(), "AGENT-PHONE".to_string()),
            ]),
        }
    }

    /// A target source whose tag names are adversarial (swapped), so LSD's
    /// name matcher is misled and feedback is needed.
    fn hostile_source() -> (Source, HashMap<String, String>) {
        let dtd = parse_dtd(
            "<!ELEMENT house (comments, location, contact)>\n\
             <!ELEMENT comments (#PCDATA)>\n<!ELEMENT location (#PCDATA)>\n\
             <!ELEMENT contact (#PCDATA)>",
        )
        .unwrap();
        // "comments" actually holds addresses; "location" holds text.
        let listings = [("Kent, WA", "Great house", "(415) 111 2222")]
            .iter()
            .map(|(a, d, p)| {
                parse_fragment(&format!(
                    "<house><comments>{a}</comments><location>{d}</location>\
                     <contact>{p}</contact></house>"
                ))
                .unwrap()
            })
            .collect();
        let truth = HashMap::from([
            ("house".to_string(), "HOUSE".to_string()),
            ("comments".to_string(), "ADDRESS".to_string()),
            ("location".to_string(), "DESCRIPTION".to_string()),
            ("contact".to_string(), "AGENT-PHONE".to_string()),
        ]);
        (Source::from_xml("hostile", dtd, listings), truth)
    }

    fn trained_lsd() -> Lsd {
        let mediated = mediated();
        let builder = LsdBuilder::new(&mediated);
        let n = builder.labels().len();
        let mut lsd = builder
            .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, [])))
            .add_learner(Box::new(ContentMatcher::new(n)))
            .add_learner(Box::new(NaiveBayesLearner::new(n)))
            .build()
            .unwrap();
        lsd.train(&[training_source()]).unwrap();
        lsd
    }

    #[test]
    fn already_perfect_source_needs_no_corrections() {
        let lsd = trained_lsd();
        let ts = training_source();
        let truth = ts.mapping.clone();
        let outcome = simulate_feedback_session(&lsd, &ts.source, &truth).unwrap();
        assert!(outcome.converged);
        assert!(outcome.corrections.is_empty());
        assert_eq!(outcome.stall_reason, None);
        assert_eq!(outcome.rounds, 1);
    }

    #[test]
    fn hostile_source_converges_with_few_corrections() {
        let lsd = trained_lsd();
        let (source, truth) = hostile_source();
        let outcome = simulate_feedback_session(&lsd, &source, &truth).unwrap();
        assert!(outcome.converged, "session must converge: {outcome:?}");
        assert!(outcome.corrections.len() <= 3, "{outcome:?}");
        // The emitted corrections are replayable: feeding them back as one
        // batch really yields a perfect matching.
        let feedback = Feedback::from_corrections(outcome.corrections.clone());
        let m = lsd.match_source_with(&source, &feedback).unwrap();
        for (tag, label) in &truth {
            assert_eq!(m.label_of(tag), Some(label.as_str()));
        }
    }

    #[test]
    fn corrections_carry_provenance() {
        let lsd = trained_lsd();
        let (source, truth) = hostile_source();
        let outcome = simulate_feedback_session(&lsd, &source, &truth).unwrap();
        assert!(!outcome.corrections.is_empty(), "{outcome:?}");
        for c in &outcome.corrections {
            assert_eq!(c.source, "hostile");
            assert_eq!(c.origin, "simulator");
            assert!(matches!(c.kind, CorrectionKind::TagIs { .. }));
        }
    }

    #[test]
    fn corrections_bounded_by_tag_count() {
        let lsd = trained_lsd();
        let (source, truth) = hostile_source();
        let outcome = simulate_feedback_session(&lsd, &source, &truth).unwrap();
        assert!(outcome.corrections.len() <= 4);
        assert_eq!(outcome.corrected_tags.len(), outcome.corrections.len());
    }

    #[test]
    fn to_constraints_compiles_every_kind() {
        let labels = LabelSet::new(["ADDRESS", "PRICE"]);
        let feedback: Feedback = vec![
            Correction::tag_is("a", "ADDRESS"),
            Correction::tag_is_not("b", "PRICE"),
            Correction::tag_is_other("c"),
        ]
        .into();
        let constraints = feedback.to_constraints(&labels).unwrap();
        assert_eq!(constraints.len(), 3);
        assert!(matches!(
            &constraints[0].predicate,
            Predicate::TagIs { tag, label } if tag == "a" && label == "ADDRESS"
        ));
        assert!(matches!(
            &constraints[1].predicate,
            Predicate::TagIsNot { tag, label } if tag == "b" && label == "PRICE"
        ));
        assert!(matches!(
            &constraints[2].predicate,
            Predicate::TagIs { tag, label } if tag == "c" && label == LabelSet::OTHER
        ));
    }

    #[test]
    fn to_constraints_rejects_unknown_labels() {
        let labels = LabelSet::new(["ADDRESS"]);
        let feedback = Feedback::from_corrections(vec![Correction::tag_is("a", "PIRCE")]);
        let err = feedback.to_constraints(&labels).unwrap_err();
        assert!(matches!(err, LsdError::UnknownLabel { label } if label == "PIRCE"));
    }

    #[test]
    fn corrections_roundtrip_through_json() {
        let c = Correction::tag_is("price", "PRICE").with_provenance("realestate.com", 17, "api");
        let json = serde_json::to_string(&c).unwrap();
        let back: Correction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        // Provenance fields are defaulted, so bare records parse too.
        let bare: Correction =
            serde_json::from_str(r#"{"tag": "t", "kind": "TagIsOther"}"#).unwrap();
        assert_eq!(bare.kind, CorrectionKind::TagIsOther);
        assert_eq!(bare.timestamp_ms, 0);
    }
}
