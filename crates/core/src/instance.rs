//! Instances: the XML element occurrences the learners classify.
//!
//! In the matching phase "LSD extracts data from the source, and creates for
//! each source-schema element a column of XML elements that belong to it"
//! (Section 3). An [`Instance`] is one such element occurrence plus the
//! context the learners need: the tag path from the listing root and — for
//! the XML learner — the (true or currently-predicted) labels of the tags
//! below it.

use lsd_constraints::SourceData;
use lsd_xml::Element;
use std::collections::HashMap;

/// One occurrence of a source tag in a listing.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The element subtree (the element itself plus everything below it).
    pub element: Element,
    /// Tag names from the listing root down to this element, inclusive —
    /// the name matcher learns from the whole path (Section 3.3: the tag
    /// name is "expanded with … all tag names leading to this element from
    /// the root element").
    pub path: Vec<String>,
    /// Per source tag, the label index of that tag — the true labels during
    /// training, or LSD's first-pass predictions during matching. Consumed
    /// by the XML learner (Section 5) to turn non-leaf descendants into
    /// node/edge tokens. Empty when structure labels are unavailable.
    pub sub_labels: HashMap<String, usize>,
}

impl Instance {
    /// Creates an instance with no structure-label context.
    pub fn new(element: Element, path: Vec<String>) -> Self {
        Instance {
            element,
            path,
            sub_labels: HashMap::new(),
        }
    }

    /// The tag name of the instance's element.
    pub fn tag(&self) -> &str {
        &self.element.name
    }

    /// All text in the instance's subtree.
    pub fn text(&self) -> String {
        self.element.deep_text()
    }

    /// Returns a copy with the given structure labels attached.
    pub fn with_sub_labels(mut self, sub_labels: HashMap<String, usize>) -> Self {
        self.sub_labels = sub_labels;
        self
    }
}

/// Extracts one [`Instance`] per element occurrence from a set of listings,
/// grouped by tag name. The listing root elements themselves are included
/// (their tag is a schema element too), each with a single-entry path.
pub fn extract_instances(listings: &[Element]) -> HashMap<String, Vec<Instance>> {
    let mut columns: HashMap<String, Vec<Instance>> = HashMap::new();
    for listing in listings {
        let mut stack: Vec<(Vec<String>, &Element)> = vec![(vec![listing.name.clone()], listing)];
        while let Some((path, element)) = stack.pop() {
            columns
                .entry(element.name.clone())
                .or_default()
                .push(Instance::new(element.clone(), path.clone()));
            for child in element.child_elements() {
                let mut child_path = path.clone();
                child_path.push(child.name.clone());
                stack.push((child_path, child));
            }
        }
    }
    columns
}

/// Builds the row-aligned [`SourceData`] used by column constraints: one
/// row per listing, each tag's cell holding the concatenated text of that
/// tag's occurrences in the listing.
pub fn build_source_data<'a, I>(tags: I, listings: &[Element]) -> SourceData
where
    I: IntoIterator<Item = &'a str>,
{
    let mut data = SourceData::new(tags.into_iter().map(str::to_string).collect::<Vec<_>>());
    for listing in listings {
        let mut values: Vec<(String, String)> = Vec::new();
        listing.visit(&mut |e| {
            if e.is_leaf() {
                values.push((e.name.clone(), e.direct_text()));
            } else {
                values.push((e.name.clone(), e.deep_text()));
            }
        });
        data.push_row(values.iter().map(|(t, v)| (t.as_str(), v.as_str())));
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::parse_fragment;

    fn listings() -> Vec<Element> {
        vec![
            parse_fragment(
                "<listing><area>Miami, FL</area>\
                 <contact><name>Kate</name><phone>(305) 111 2222</phone></contact></listing>",
            )
            .unwrap(),
            parse_fragment(
                "<listing><area>Boston, MA</area>\
                 <contact><name>Mike</name><phone>(617) 333 4444</phone></contact></listing>",
            )
            .unwrap(),
        ]
    }

    #[test]
    fn extracts_one_column_per_tag() {
        let cols = extract_instances(&listings());
        assert_eq!(cols.len(), 5);
        assert_eq!(cols["area"].len(), 2);
        assert_eq!(cols["contact"].len(), 2);
        assert_eq!(cols["listing"].len(), 2);
    }

    #[test]
    fn instance_paths_run_from_root() {
        let cols = extract_instances(&listings());
        let phone = &cols["phone"][0];
        assert_eq!(phone.path, vec!["listing", "contact", "phone"]);
        assert_eq!(cols["listing"][0].path, vec!["listing"]);
    }

    #[test]
    fn instance_text_is_subtree_text() {
        let cols = extract_instances(&listings());
        let contact_texts: Vec<String> = cols["contact"].iter().map(Instance::text).collect();
        assert!(contact_texts.contains(&"Kate (305) 111 2222".to_string()));
    }

    #[test]
    fn source_data_rows_align_with_listings() {
        let data = build_source_data(["listing", "area", "contact", "name", "phone"], &listings());
        assert_eq!(data.num_rows(), 2);
        let areas = data.column("area");
        assert_eq!(areas.len(), 2);
        assert!(areas.contains(&"Miami, FL"));
        // Non-leaf tag cells hold the subtree text.
        assert!(data.column("contact")[0].contains("Kate"));
    }

    #[test]
    fn sub_labels_attach() {
        let cols = extract_instances(&listings());
        let inst = cols["contact"][0]
            .clone()
            .with_sub_labels(HashMap::from([("name".to_string(), 3usize)]));
        assert_eq!(inst.sub_labels.get("name"), Some(&3));
    }

    #[test]
    fn empty_listings_give_empty_columns() {
        assert!(extract_instances(&[]).is_empty());
        let data = build_source_data(["a"], &[]);
        assert_eq!(data.num_rows(), 0);
    }
}
