//! Pipeline observability reports.
//!
//! [`crate::Lsd::train_with_report`], [`crate::Lsd::match_source_with_report`]
//! and [`crate::Lsd::match_batch_with_report`] wrap the corresponding
//! pipeline entry points in an `lsd_obs::collect` scope and return these
//! snapshot types. The raw [`lsd_obs::MetricsSnapshot`] is public — the
//! accessors below only name the keys the pipeline emits, so callers and
//! the bench runner's JSON exporter don't have to hard-code strings.

use lsd_obs::MetricsSnapshot;
use serde::Serialize;

/// Everything one training run recorded: per-learner train wall time,
/// cross-validation fold counts, parallelism counters and spans.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TrainReport {
    /// The full metrics snapshot of the training run.
    pub metrics: MetricsSnapshot,
}

impl TrainReport {
    /// Number of cross-validation folds executed (summed over learners).
    pub fn cv_folds(&self) -> u64 {
        self.metrics.counter("crossval.folds")
    }

    /// Number of training examples the run was fed.
    pub fn examples(&self) -> u64 {
        self.metrics.counter("train.examples")
    }

    /// `(learner name, nanoseconds)` spent in each base learner's
    /// full-set `train` call. Wall-clock, so recorded as histograms — the
    /// counters stay deterministic across thread counts.
    pub fn train_nanos(&self) -> Vec<(&str, u64)> {
        self.metrics
            .histograms_labelled("learner.train_ns")
            .into_iter()
            .map(|(name, h)| (name, h.sum))
            .collect()
    }

    /// The run's spans as a Chrome trace-event JSON document (load it in
    /// Perfetto / `chrome://tracing`). See [`lsd_obs::export::chrome_trace`].
    pub fn chrome_trace(&self) -> String {
        lsd_obs::export::chrome_trace(&self.metrics)
    }

    /// The run's metrics and spans as JSON-Lines, newest-first-capped by a
    /// ring buffer of `capacity` events. See [`lsd_obs::export::EventSink`].
    pub fn events_jsonl(&self, capacity: usize) -> String {
        let mut sink = lsd_obs::export::EventSink::with_capacity(capacity);
        sink.record_snapshot(&self.metrics);
        sink.to_jsonl()
    }
}

/// Everything one match run (single source or batch) recorded: A\* search
/// counters, constraint evaluations, per-learner predict wall time,
/// WHIRL/TF-IDF gauges, batch-queue occupancy and spans.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MatchReport {
    /// The full metrics snapshot of the match run.
    pub metrics: MetricsSnapshot,
}

impl MatchReport {
    /// A\*/beam nodes expanded across every search in the run.
    pub fn nodes_expanded(&self) -> u64 {
        self.metrics.counter("search.nodes_expanded")
    }

    /// Child nodes rejected before entering the frontier (hard-constraint
    /// infeasibility or mandatory-label deadlines).
    pub fn nodes_pruned(&self) -> u64 {
        self.metrics.counter("search.nodes_pruned")
    }

    /// Compiled constraint-set evaluations across every search in the run.
    pub fn constraint_evaluations(&self) -> u64 {
        self.metrics.counter("search.evaluations")
    }

    /// Number of sources matched.
    pub fn sources_matched(&self) -> u64 {
        self.metrics.counter("match.sources")
    }

    /// `(learner name, nanoseconds)` spent inside each base learner's
    /// `predict` calls. Wall-clock, so recorded as histograms — the
    /// counters stay deterministic across thread counts.
    pub fn predict_nanos(&self) -> Vec<(&str, u64)> {
        self.metrics
            .histograms_labelled("learner.predict_ns")
            .into_iter()
            .map(|(name, h)| (name, h.sum))
            .collect()
    }

    /// `(learner name, calls)` — how often each base learner predicted.
    pub fn predict_calls(&self) -> Vec<(&str, u64)> {
        self.metrics.counters_labelled("learner.predict_calls")
    }

    /// The run's spans as a Chrome trace-event JSON document (load it in
    /// Perfetto / `chrome://tracing`). See [`lsd_obs::export::chrome_trace`].
    pub fn chrome_trace(&self) -> String {
        lsd_obs::export::chrome_trace(&self.metrics)
    }

    /// The run's metrics and spans as JSON-Lines, newest-first-capped by a
    /// ring buffer of `capacity` events. See [`lsd_obs::export::EventSink`].
    pub fn events_jsonl(&self, capacity: usize) -> String {
        let mut sink = lsd_obs::export::EventSink::with_capacity(capacity);
        sink.record_snapshot(&self.metrics);
        sink.to_jsonl()
    }
}
