//! The stacking meta-learner (paper Sections 3.1 step 5 and 3.2).
//!
//! The meta-learner combines base-learner predictions using *stacking*: for
//! each (label `cᵢ`, learner `Lⱼ`) pair it learns a weight `W(cᵢ,Lⱼ)`
//! indicating how much it trusts `Lⱼ`'s predictions regarding `cᵢ`. The
//! weights come from least-squares regression over cross-validated (and
//! therefore unbiased) base-learner predictions: if a learner tends to give
//! a high score when an instance truly matches `cᵢ` and low otherwise, it
//! earns a high weight.
//!
//! At matching time the combined score for label `cᵢ` is the weight-summed
//! base-learner score `Σⱼ W(cᵢ,Lⱼ)·s(cᵢ|x,Lⱼ)`, normalized across labels
//! (Section 3.2's worked example: `0.3·0.5 + 0.8·0.7 = 0.71` for ADDRESS).

use lsd_learn::{nonnegative_least_squares, Prediction};
use serde::{Deserialize, Serialize};

/// Ridge used in the regression; guards against degenerate CV score
/// matrices (e.g. two learners emitting identical scores).
const RIDGE: f64 = 1e-6;

/// Shrinkage toward uniform weights. With only three training sources the
/// per-label regressions see few independent tag groups, so the raw NNLS
/// weights are high-variance; shrinking them toward equal trust
/// (`w' = λ·w + (1−λ)/k`) trades a little fidelity on well-estimated
/// labels for much better behaviour on sparsely observed ones.
const SHRINKAGE: f64 = 0.55;

/// Per-(label, learner) trust weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaLearner {
    /// `weights[label][learner]`.
    weights: Vec<Vec<f64>>,
}

impl MetaLearner {
    /// A meta-learner that trusts every base learner equally — the ablation
    /// baseline for the `ablation_meta` bench and the fallback when no
    /// training data exists.
    pub fn uniform(num_labels: usize, num_learners: usize) -> Self {
        assert!(num_learners > 0);
        MetaLearner {
            weights: vec![vec![1.0 / num_learners as f64; num_learners]; num_labels],
        }
    }

    /// Trains the weights by per-label least-squares regression.
    ///
    /// * `cv[j][x]` — learner `j`'s cross-validated prediction for training
    ///   example `x` (the `CV(Lⱼ)` sets of Section 3.1 step 5a).
    /// * `truths[x]` — the true label of example `x`.
    ///
    /// For each label `cᵢ` the regression rows are
    /// `⟨s(cᵢ|x,L₁), …, s(cᵢ|x,Lₖ)⟩` with target `l(cᵢ,x) ∈ {0,1}`
    /// (the `T(ML,cᵢ)` sets of step 5b).
    pub fn train(cv: &[Vec<Prediction>], truths: &[usize], num_labels: usize) -> Self {
        let num_learners = cv.len();
        assert!(num_learners > 0, "need at least one base learner");
        for learner_cv in cv {
            assert_eq!(learner_cv.len(), truths.len(), "CV set size mismatch");
        }
        if truths.is_empty() {
            return Self::uniform(num_labels, num_learners);
        }

        let mut weights = Vec::with_capacity(num_labels);
        for label in 0..num_labels {
            let rows: Vec<Vec<f64>> = (0..truths.len())
                .map(|x| (0..num_learners).map(|j| cv[j][x].score(label)).collect())
                .collect();
            let targets: Vec<f64> = truths
                .iter()
                .map(|&t| if t == label { 1.0 } else { 0.0 })
                .collect();
            let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            let mut w = nonnegative_least_squares(&row_refs, &targets, RIDGE);
            // If cross-validation found *no* learner informative for this
            // label (common when only one training source exhibits it —
            // the held-out fold then has no examples of it at all), being
            // blind is worse than being undiscriminating: fall back to
            // trusting every learner equally.
            if w.iter().all(|&x| x <= 0.0) {
                w = vec![1.0 / num_learners as f64; num_learners];
            }
            for x in &mut w {
                *x = SHRINKAGE * *x + (1.0 - SHRINKAGE) / num_learners as f64;
            }
            weights.push(w);
        }
        MetaLearner { weights }
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.weights.len()
    }

    /// Number of base learners.
    pub fn num_learners(&self) -> usize {
        self.weights.first().map_or(0, Vec::len)
    }

    /// The weight of learner `j` for label `i`.
    pub fn weight(&self, label: usize, learner: usize) -> f64 {
        self.weights[label][learner]
    }

    /// The full `weights[label][learner]` matrix — the provenance behind
    /// every combined score ([`crate::MatchOutcome::explain`] snapshots it
    /// so explanations survive after the system itself is gone).
    pub fn weight_matrix(&self) -> &[Vec<f64>] {
        &self.weights
    }

    /// Combines one prediction per base learner into a single prediction:
    /// per-label weighted sum, negative sums clamped to zero, normalized.
    pub fn combine(&self, predictions: &[Prediction]) -> Prediction {
        assert_eq!(
            predictions.len(),
            self.num_learners(),
            "one prediction per learner"
        );
        lsd_obs::counter_add("meta.combines", "", 1);
        let n = self.num_labels();
        let scores: Vec<f64> = (0..n)
            .map(|label| {
                let s: f64 = predictions
                    .iter()
                    .enumerate()
                    .map(|(j, p)| self.weights[label][j] * p.score(label))
                    .sum();
                s.max(0.0)
            })
            .collect();
        Prediction::from_scores(scores)
    }

    /// Combines predictions for a *subset* of the learners, given their
    /// indices — used in lesion studies where a learner is removed at match
    /// time without retraining the stack.
    pub fn combine_subset(&self, predictions: &[Prediction], learners: &[usize]) -> Prediction {
        assert_eq!(predictions.len(), learners.len());
        lsd_obs::counter_add("meta.combines", "", 1);
        let n = self.num_labels();
        let scores: Vec<f64> = (0..n)
            .map(|label| {
                let s: f64 = predictions
                    .iter()
                    .zip(learners)
                    .map(|(p, &j)| self.weights[label][j] * p.score(label))
                    .sum();
                s.max(0.0)
            })
            .collect();
        Prediction::from_scores(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example_combination() {
        // Section 3.2: W(ADDRESS, NameMatcher)=0.3, W(ADDRESS, NaiveBayes)=0.8.
        // Name matcher: ⟨0.5,0.3,0.2⟩, Naive Bayes: ⟨0.7,0.3,0.0⟩.
        // ADDRESS combined score = 0.3·0.5 + 0.8·0.7 = 0.71.
        let ml = MetaLearner {
            weights: vec![vec![0.3, 0.8], vec![0.3, 0.8], vec![0.3, 0.8]],
        };
        let preds = [
            Prediction::from_scores(vec![0.5, 0.3, 0.2]),
            Prediction::from_scores(vec![0.7, 0.3, 0.0]),
        ];
        let combined = ml.combine(&preds);
        // Unnormalized: ADDRESS 0.71, DESCRIPTION 0.33, AGENT-PHONE 0.06.
        let total = 0.71 + 0.33 + 0.06;
        assert!((combined.score(0) - 0.71 / total).abs() < 1e-9);
        assert_eq!(combined.best_label(), 0);
    }

    #[test]
    fn training_trusts_the_informative_learner() {
        // Learner 0 is perfect on label 0; learner 1 is uninformative.
        let n = 2;
        let mut cv0 = Vec::new();
        let mut cv1 = Vec::new();
        let mut truths = Vec::new();
        for i in 0..40 {
            let truth = i % 2;
            truths.push(truth);
            cv0.push(if truth == 0 {
                Prediction::from_scores(vec![0.9, 0.1])
            } else {
                Prediction::from_scores(vec![0.1, 0.9])
            });
            cv1.push(Prediction::uniform(2));
        }
        let ml = MetaLearner::train(&[cv0, cv1], &truths, n);
        assert!(
            ml.weight(0, 0) > ml.weight(0, 1),
            "informative learner must earn the higher weight: {:?}",
            ml.weights
        );
        // Combination follows learner 0.
        let combined = ml.combine(&[
            Prediction::from_scores(vec![0.9, 0.1]),
            Prediction::uniform(2),
        ]);
        assert_eq!(combined.best_label(), 0);
    }

    #[test]
    fn per_label_weights_differ() {
        // Learner 0 is good at label 0 only; learner 1 good at label 1 only.
        let mut cv0 = Vec::new();
        let mut cv1 = Vec::new();
        let mut truths = Vec::new();
        for i in 0..60 {
            let truth = i % 3;
            truths.push(truth);
            cv0.push(if truth == 0 {
                Prediction::from_scores(vec![0.8, 0.1, 0.1])
            } else {
                Prediction::from_scores(vec![0.2, 0.4, 0.4])
            });
            cv1.push(if truth == 1 {
                Prediction::from_scores(vec![0.1, 0.8, 0.1])
            } else {
                Prediction::from_scores(vec![0.4, 0.2, 0.4])
            });
        }
        let ml = MetaLearner::train(&[cv0, cv1], &truths, 3);
        assert!(ml.weight(0, 0) > ml.weight(0, 1), "{:?}", ml.weights);
        assert!(ml.weight(1, 1) > ml.weight(1, 0), "{:?}", ml.weights);
    }

    #[test]
    fn uniform_fallback() {
        let ml = MetaLearner::uniform(3, 2);
        assert_eq!(ml.num_labels(), 3);
        assert_eq!(ml.num_learners(), 2);
        let combined = ml.combine(&[
            Prediction::from_scores(vec![0.6, 0.2, 0.2]),
            Prediction::from_scores(vec![0.2, 0.6, 0.2]),
        ]);
        // Equal trust: scores average out.
        assert!((combined.score(0) - combined.score(1)).abs() < 1e-9);
    }

    #[test]
    fn empty_training_returns_uniform() {
        let ml = MetaLearner::train(&[vec![], vec![]], &[], 4);
        assert_eq!(ml, MetaLearner::uniform(4, 2));
    }

    #[test]
    fn negative_weighted_sums_clamp_to_zero() {
        let ml = MetaLearner {
            weights: vec![vec![-1.0], vec![1.0]],
        };
        let combined = ml.combine(&[Prediction::from_scores(vec![0.5, 0.5])]);
        assert_eq!(combined.score(0), 0.0);
        assert_eq!(combined.score(1), 1.0);
    }

    #[test]
    fn combine_subset_uses_selected_weights() {
        let ml = MetaLearner {
            weights: vec![vec![0.1, 0.9], vec![0.9, 0.1]],
        };
        let p = Prediction::from_scores(vec![0.5, 0.5]);
        let full = ml.combine(&[p.clone(), p.clone()]);
        let only_second = ml.combine_subset(std::slice::from_ref(&p), &[1]);
        // With only learner 1: label 0 gets 0.9·0.5, label 1 gets 0.1·0.5.
        assert_eq!(only_second.best_label(), 0);
        assert!((full.score(0) - 0.5).abs() < 1e-9);
    }
}
