//! Dictionary recognizers (paper Section 3.3).
//!
//! "The County-Name Recognizer searches a database (extracted from the Web)
//! to verify if an XML element is a county name. … This module illustrates
//! how recognizers with a narrow and specific area of expertise can be
//! incorporated into our system." A [`Recognizer`] is a generic dictionary
//! membership test over one target label; [`county_name_recognizer`] is the
//! paper's concrete example.

use crate::counties::is_county_name;
use crate::instance::Instance;
use crate::learners::BaseLearner;
use lsd_learn::Prediction;
use std::sync::Arc;

/// A narrow-expertise base learner: if the instance's text passes the
/// membership test, predict the target label with high confidence;
/// otherwise spread mass over all *other* labels (the recognizer knows the
/// instance is not its label, and says nothing more).
#[derive(Clone)]
pub struct Recognizer {
    name: &'static str,
    num_labels: usize,
    target: usize,
    /// Confidence when the test passes.
    hit_confidence: f64,
    test: Arc<dyn Fn(&str) -> bool + Send + Sync>,
}

impl std::fmt::Debug for Recognizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recognizer")
            .field("name", &self.name)
            .field("target", &self.target)
            .finish_non_exhaustive()
    }
}

impl Recognizer {
    /// Creates a recognizer for `target` (a label index) with the given
    /// membership test.
    pub fn new(
        name: &'static str,
        num_labels: usize,
        target: usize,
        test: impl Fn(&str) -> bool + Send + Sync + 'static,
    ) -> Self {
        assert!(target < num_labels);
        Recognizer {
            name,
            num_labels,
            target,
            hit_confidence: 0.9,
            test: Arc::new(test),
        }
    }

    /// Overrides the hit confidence (default 0.9).
    pub fn with_hit_confidence(mut self, confidence: f64) -> Self {
        assert!((0.0..=1.0).contains(&confidence));
        self.hit_confidence = confidence;
        self
    }
}

impl BaseLearner for Recognizer {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Recognizers are knowledge-based, not trained.
    fn train(&mut self, _examples: &[(&Instance, usize)]) {}

    fn supports_warm_start(&self) -> bool {
        true
    }

    /// Knowledge-based: additional examples change nothing, trivially
    /// satisfying the warm-start contract.
    fn warm_train(&mut self, _examples: &[(&Instance, usize)]) -> bool {
        true
    }

    fn predict(&self, instance: &Instance) -> Prediction {
        let n = self.num_labels;
        let hit = (self.test)(&instance.text());
        let mut scores = vec![0.0; n];
        if hit {
            let rest = (1.0 - self.hit_confidence) / (n - 1) as f64;
            scores.fill(rest);
            scores[self.target] = self.hit_confidence;
        } else {
            // Not my label; mildly demote the target, stay agnostic elsewhere.
            scores.fill(1.0 / (n - 1) as f64);
            scores[self.target] = 0.0;
        }
        Prediction::from_scores(scores)
    }

    fn fresh(&self) -> Box<dyn BaseLearner> {
        Box::new(self.clone())
    }

    /// Only the built-in county recognizer is reconstructible from
    /// parameters; custom recognizers carry arbitrary closures.
    fn snapshot(&self) -> Option<crate::persist::SavedLearner> {
        if self.name == "county-recognizer" {
            Some(crate::persist::SavedLearner::CountyRecognizer {
                num_labels: self.num_labels,
                target: self.target,
            })
        } else {
            None
        }
    }
}

/// The paper's county-name recognizer, targeting the given label index
/// (typically the mediated schema's `COUNTY` tag).
pub fn county_name_recognizer(num_labels: usize, county_label: usize) -> Recognizer {
    Recognizer::new(
        "county-recognizer",
        num_labels,
        county_label,
        is_county_name,
    )
}

/// Recognizes two-letter U.S. state abbreviations ("WA", "fl", …) — another
/// narrow-expertise module in the spirit of the county recognizer.
pub fn state_abbrev_recognizer(num_labels: usize, state_label: usize) -> Recognizer {
    const STATES: [&str; 50] = [
        "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA",
        "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
        "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT",
        "VA", "WA", "WV", "WI", "WY",
    ];
    Recognizer::new("state-recognizer", num_labels, state_label, |value| {
        let v = value.trim().to_ascii_uppercase();
        STATES.contains(&v.as_str())
    })
}

/// Recognizes five-digit U.S. ZIP codes.
pub fn zip_recognizer(num_labels: usize, zip_label: usize) -> Recognizer {
    Recognizer::new("zip-recognizer", num_labels, zip_label, |value| {
        let v = value.trim();
        v.len() == 5 && v.chars().all(|c| c.is_ascii_digit())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::Element;

    fn inst(text: &str) -> Instance {
        Instance::new(Element::text_leaf("t", text), vec!["t".to_string()])
    }

    #[test]
    fn hit_concentrates_on_target() {
        let r = county_name_recognizer(4, 2);
        let p = r.predict(&inst("King County"));
        assert_eq!(p.best_label(), 2);
        assert!(p.score(2) >= 0.9 - 1e-9);
    }

    #[test]
    fn miss_zeroes_target() {
        let r = county_name_recognizer(4, 2);
        let p = r.predict(&inst("fantastic house"));
        assert_eq!(p.score(2), 0.0);
        assert!((p.score(0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn custom_recognizer_and_confidence() {
        let r = Recognizer::new("zip-recognizer", 3, 1, |v| {
            v.trim().len() == 5 && v.trim().chars().all(|c| c.is_ascii_digit())
        })
        .with_hit_confidence(0.8);
        let p = r.predict(&inst("98195"));
        assert!((p.score(1) - 0.8).abs() < 1e-9);
        assert_eq!(r.predict(&inst("9819")).score(1), 0.0);
    }

    #[test]
    fn training_is_a_noop() {
        let mut r = county_name_recognizer(3, 0);
        let i = inst("whatever");
        r.train(&[(&i, 2)]);
        assert_eq!(r.predict(&inst("King")).best_label(), 0);
    }

    #[test]
    fn state_recognizer_matches_abbreviations() {
        let r = state_abbrev_recognizer(3, 1);
        assert_eq!(r.predict(&inst("WA")).best_label(), 1);
        assert_eq!(r.predict(&inst(" fl ")).best_label(), 1);
        assert_eq!(r.predict(&inst("Washington")).score(1), 0.0);
        assert_eq!(r.predict(&inst("ZZ")).score(1), 0.0);
    }

    #[test]
    fn zip_recognizer_matches_five_digits() {
        let r = zip_recognizer(3, 2);
        assert_eq!(r.predict(&inst("98195")).best_label(), 2);
        assert_eq!(r.predict(&inst("9819")).score(2), 0.0);
        assert_eq!(r.predict(&inst("98195-1234")).score(2), 0.0);
    }

    #[test]
    fn fresh_preserves_behavior() {
        let r = county_name_recognizer(3, 0);
        let f = r.fresh();
        assert_eq!(f.predict(&inst("King")).best_label(), 0);
        assert_eq!(f.name(), "county-recognizer");
    }
}
