//! The base learners (paper Sections 3.3 and 5).
//!
//! Each base learner exploits a different type of information in the source
//! schema or data. The [`BaseLearner`] trait is the extension point the
//! paper emphasizes: "our system is extensible since we can add new
//! learners that have specific strengths in particular domains".

mod content_matcher;
mod format_learner;
mod naive_bayes;
mod name_matcher;
mod recognizer;
mod stats_learner;
mod xml_learner;

pub use content_matcher::ContentMatcher;
pub use format_learner::FormatLearner;
pub use naive_bayes::NaiveBayesLearner;
pub use name_matcher::NameMatcher;
pub use recognizer::{county_name_recognizer, state_abbrev_recognizer, zip_recognizer, Recognizer};
pub use stats_learner::StatsLearner;
pub use xml_learner::{XmlLearner, XmlTokenKinds};

use crate::instance::Instance;
use crate::persist::SavedLearner;
use lsd_learn::{Classifier, Prediction};

/// A base learner: trains on labelled [`Instance`]s and predicts
/// confidence-score distributions for new ones.
///
/// `Send + Sync` is part of the contract: the batch-matching engine shares
/// a trained system across scoped worker threads (`&Lsd` per worker), and
/// the meta-learner's cross-validation calls [`BaseLearner::fresh`] from
/// per-fold workers. All built-in learners are plain data; a custom learner
/// with interior mutability must use thread-safe primitives.
pub trait BaseLearner: Send + Sync {
    /// Stable display name, used in lesion studies and experiment reports.
    fn name(&self) -> &'static str;

    /// Trains from scratch on the given examples.
    fn train(&mut self, examples: &[(&Instance, usize)]);

    /// Predicts the label distribution for one instance.
    fn predict(&self, instance: &Instance) -> Prediction;

    /// A fresh, untrained learner with the same configuration — used by the
    /// meta-learner's cross-validation, which must train per-fold copies.
    fn fresh(&self) -> Box<dyn BaseLearner>;

    /// A serializable snapshot of the trained state, if this learner
    /// supports persistence (all built-in learners do; custom learners may
    /// return `None`, which makes [`crate::Lsd::to_saved`] fail loudly
    /// rather than drop them silently).
    fn snapshot(&self) -> Option<SavedLearner> {
        None
    }

    /// Whether [`Self::warm_train`] can fold additional examples into this
    /// learner's *current* trained state. All built-in learners support it;
    /// the default is `false` so custom learners opt in explicitly.
    ///
    /// May depend on runtime state, not just the type: a learner restored
    /// from a snapshot that lacks the data needed to extend its statistics
    /// soundly should return `false` here.
    fn supports_warm_start(&self) -> bool {
        false
    }

    /// Folds additional examples into the current trained state, so that
    /// the result is equivalent to [`Self::train`] on the concatenation of
    /// all examples seen so far. Returns `false` (leaving the learner
    /// unchanged) when warm-starting is unsupported — callers should check
    /// [`Self::supports_warm_start`] on every learner *before* mutating any
    /// of them, to keep incremental training all-or-nothing.
    fn warm_train(&mut self, examples: &[(&Instance, usize)]) -> bool {
        let _ = examples;
        false
    }
}

/// Adapter so boxed base learners plug into `lsd-learn`'s generic
/// cross-validation machinery.
impl Classifier<Instance> for Box<dyn BaseLearner> {
    fn train(&mut self, examples: &[(&Instance, usize)]) {
        BaseLearner::train(self.as_mut(), examples);
    }

    fn predict(&self, example: &Instance) -> Prediction {
        BaseLearner::predict(self.as_ref(), example)
    }
}
