//! The Name matcher (paper Section 3.3).
//!
//! "Matches an XML element using its tag name (expanded with synonyms and
//! all tag names leading to this element from the root element). It uses
//! Whirl, the nearest-neighbor classification model developed by Cohen and
//! Hirsh." Works well on specific, descriptive names (`price`,
//! `house-location`); poor on names without shared synonyms, partial names
//! or vacuous names (`item`, `listing`).

use crate::instance::Instance;
use crate::learners::BaseLearner;
use lsd_learn::Prediction;
use lsd_text::{char_ngrams, tokenize_name, NeighborCombination, Whirl, WhirlConfig};
use std::collections::HashMap;

/// WHIRL over name tokens: path tags split into words, each word expanded
/// with its synonyms.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NameMatcher {
    num_labels: usize,
    whirl_config: WhirlConfig,
    synonyms: HashMap<String, Vec<String>>,
    whirl: Whirl,
}

impl NameMatcher {
    /// Creates an untrained name matcher. `synonyms` maps a word to the
    /// words it should be expanded with (applied in both training and
    /// prediction; expansion is one-directional, so supply both directions
    /// if desired or use [`Self::with_synonym_pairs`]).
    pub fn new(num_labels: usize, synonyms: HashMap<String, Vec<String>>) -> Self {
        let whirl_config = WhirlConfig {
            combination: NeighborCombination::NoisyOr,
            ..WhirlConfig::default()
        };
        NameMatcher {
            num_labels,
            whirl_config,
            synonyms,
            whirl: Whirl::new(num_labels, whirl_config),
        }
    }

    /// Convenience constructor from symmetric synonym pairs, e.g.
    /// `("phone", "contact")` makes each expand to the other.
    pub fn with_synonym_pairs<'a>(
        num_labels: usize,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Self {
        let mut synonyms: HashMap<String, Vec<String>> = HashMap::new();
        for (a, b) in pairs {
            synonyms
                .entry(a.to_string())
                .or_default()
                .push(b.to_string());
            synonyms
                .entry(b.to_string())
                .or_default()
                .push(a.to_string());
        }
        Self::new(num_labels, synonyms)
    }

    /// Rebuilds the WHIRL inverted index after deserialization (it is not
    /// part of the serialized form).
    pub(crate) fn rehydrate(&mut self) {
        self.whirl.finalize();
    }

    /// The feature tokens of one instance: every word of every path tag,
    /// plus synonyms. Two refinements over a naive path bag:
    ///
    /// - The element's own tag words are included twice, so the local name
    ///   outweighs ancestor context.
    /// - The *root* tag is dropped from the ancestor context of non-root
    ///   elements: it is identical for every element of a source, so it
    ///   says nothing about which tag this is — but, being the only
    ///   guaranteed in-vocabulary token, it would otherwise make every
    ///   unseen tag name look exactly like the root element.
    fn tokens(&self, instance: &Instance) -> Vec<String> {
        let mut out = Vec::new();
        for (i, tag) in instance.path.iter().enumerate() {
            let is_last = i + 1 == instance.path.len();
            if i == 0 && !is_last {
                continue; // root as ancestor context: uninformative
            }
            for word in tokenize_name(tag) {
                if let Some(syns) = self.synonyms.get(&word) {
                    out.extend(syns.iter().cloned());
                }
                if is_last {
                    out.push(word.clone());
                    // Character trigrams of the element's own name bridge
                    // fused spellings ("zipcode" ↔ "zip-code") and shared
                    // prefixes ("sqft" ↔ "sq-ft") that word tokens and the
                    // synonym table miss. Prefixed so they never collide
                    // with word tokens.
                    if word.len() > 3 {
                        out.extend(char_ngrams(&word, 3).into_iter().map(|g| format!("#{g}")));
                    }
                }
                out.push(word);
            }
        }
        out
    }
}

impl BaseLearner for NameMatcher {
    fn snapshot(&self) -> Option<crate::persist::SavedLearner> {
        Some(crate::persist::SavedLearner::Name(self.clone()))
    }

    fn name(&self) -> &'static str {
        "name-matcher"
    }

    fn train(&mut self, examples: &[(&Instance, usize)]) {
        let mut whirl = Whirl::new(self.num_labels, self.whirl_config);
        for (instance, label) in examples {
            let toks = self.tokens(instance);
            whirl.add_example(toks.iter().map(String::as_str), *label);
        }
        whirl.finalize();
        self.whirl = whirl;
    }

    fn supports_warm_start(&self) -> bool {
        self.whirl.retains_documents()
    }

    fn warm_train(&mut self, examples: &[(&Instance, usize)]) -> bool {
        if !self.whirl.retains_documents() {
            return false;
        }
        for (instance, label) in examples {
            let toks = self.tokens(instance);
            self.whirl
                .add_example(toks.iter().map(String::as_str), *label);
        }
        self.whirl.finalize();
        true
    }

    fn predict(&self, instance: &Instance) -> Prediction {
        let toks = self.tokens(instance);
        Prediction::from_scores(self.whirl.classify(toks.iter().map(String::as_str)))
    }

    fn fresh(&self) -> Box<dyn BaseLearner> {
        Box::new(NameMatcher {
            num_labels: self.num_labels,
            whirl_config: self.whirl_config,
            synonyms: self.synonyms.clone(),
            whirl: Whirl::new(self.num_labels, self.whirl_config),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::Element;

    fn inst(path: &[&str]) -> Instance {
        let element = Element::text_leaf(*path.last().unwrap(), "x");
        Instance::new(element, path.iter().map(|s| s.to_string()).collect())
    }

    /// Labels: 0 ADDRESS, 1 AGENT-PHONE, 2 PRICE.
    fn trained() -> NameMatcher {
        let mut m = NameMatcher::with_synonym_pairs(3, [("location", "address")]);
        let examples = [
            (inst(&["listing", "location"]), 0),
            (inst(&["listing", "house-addr"]), 0),
            (inst(&["listing", "contact", "phone"]), 1),
            (inst(&["listing", "contact-phone"]), 1),
            (inst(&["listing", "listed-price"]), 2),
            (inst(&["listing", "price"]), 2),
        ];
        let refs: Vec<(&Instance, usize)> = examples.iter().map(|(i, l)| (i, *l)).collect();
        m.train(&refs);
        m
    }

    #[test]
    fn phone_in_name_predicts_agent_phone() {
        // The paper's Figure 2 hypothesis: "if 'phone' occurs in the name
        // => AGENT-PHONE".
        let m = trained();
        let p = m.predict(&inst(&["home", "work-phone"]));
        assert_eq!(p.best_label(), 1, "{:?}", p.scores());
    }

    #[test]
    fn synonym_expansion_bridges_vocabularies() {
        let m = trained();
        // "address" never appears as a training token directly, but
        // house-addr→addr… the synonym location↔address links them.
        let p = m.predict(&inst(&["home", "address"]));
        assert_eq!(p.best_label(), 0, "{:?}", p.scores());
    }

    #[test]
    fn path_context_contributes() {
        let m = trained();
        // A vacuous name alone gives no signal, but a path through
        // "contact" leans toward AGENT-PHONE.
        let p = m.predict(&inst(&["listing", "contact", "info"]));
        assert_eq!(p.best_label(), 1, "{:?}", p.scores());
    }

    #[test]
    fn compound_names_split() {
        let m = trained();
        let p = m.predict(&inst(&["home", "listedPrice"]));
        assert_eq!(p.best_label(), 2, "{:?}", p.scores());
    }

    #[test]
    fn unknown_name_is_near_uniform() {
        let m = trained();
        let p = m.predict(&inst(&["zzz", "qqq"]));
        let s = p.scores();
        assert!(s.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-6), "{s:?}");
    }

    #[test]
    fn fresh_is_untrained() {
        let m = trained();
        let f = m.fresh();
        let p = f.predict(&inst(&["listing", "price"]));
        assert!(p.scores().iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-9));
    }
}
