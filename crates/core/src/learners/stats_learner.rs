//! The value-statistics learner (paper Section 1 / related work).
//!
//! The introduction motivates learning "from the characteristics of value
//! distributions: it can look at the average value of an element, and learn
//! that if that value is in the thousands, then the element is more likely
//! to be price than the number of bathrooms" — the kind of evidence the
//! Semint system (related work, Section 8) exploits. This learner models
//! each class's numeric profile — mean/variance of value magnitude, token
//! count, text length, digit/letter ratios — and scores a new instance by
//! Gaussian log-likelihood per feature. It is the numeric complement of the
//! text-oriented learners: strongest exactly where Naive Bayes and WHIRL
//! are weakest (short numeric fields), and a live demonstration that LSD's
//! learner set is extensible.

use crate::instance::Instance;
use crate::learners::BaseLearner;
use lsd_learn::Prediction;

/// Number of numeric features extracted per instance.
const NUM_FEATURES: usize = 6;

/// Per-class running statistics for one feature.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
struct Moments {
    count: f64,
    sum: f64,
    sum_sq: f64,
}

impl Moments {
    fn push(&mut self, x: f64) {
        self.count += 1.0;
        self.sum += x;
        self.sum_sq += x * x;
    }

    fn mean(&self) -> f64 {
        if self.count == 0.0 {
            0.0
        } else {
            self.sum / self.count
        }
    }

    /// Variance with a floor, so constant features don't produce
    /// zero-width Gaussians.
    fn variance(&self) -> f64 {
        if self.count < 2.0 {
            return 1.0;
        }
        let m = self.mean();
        ((self.sum_sq / self.count) - m * m).max(0.05)
    }

    /// Gaussian log-density of `x` under this feature's fitted moments.
    fn log_density(&self, x: f64) -> f64 {
        let var = self.variance();
        let d = x - self.mean();
        -0.5 * (d * d / var) - 0.5 * (var * std::f64::consts::TAU).ln()
    }
}

/// Gaussian naive-Bayes over numeric value-shape features.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StatsLearner {
    num_labels: usize,
    /// `moments[label][feature]`.
    moments: Vec<[Moments; NUM_FEATURES]>,
    class_counts: Vec<f64>,
    total: f64,
}

impl StatsLearner {
    /// Creates an untrained learner.
    pub fn new(num_labels: usize) -> Self {
        StatsLearner {
            num_labels,
            moments: vec![[Moments::default(); NUM_FEATURES]; num_labels],
            class_counts: vec![0.0; num_labels],
            total: 0.0,
        }
    }

    /// The feature vector of one instance:
    /// `[log10 magnitude, token count, char length, digit ratio, letter
    /// ratio, numeric-token ratio]`.
    fn features(instance: &Instance) -> [f64; NUM_FEATURES] {
        let text = instance.text();
        let trimmed = text.trim();
        let chars = trimmed.chars().count().max(1);
        let digits = trimmed.chars().filter(char::is_ascii_digit).count();
        let letters = trimmed.chars().filter(|c| c.is_alphabetic()).count();
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        let numeric_tokens = tokens
            .iter()
            .filter(|t| {
                let cleaned: String = t
                    .chars()
                    .filter(|c| !matches!(c, '$' | ',' | '%' | '#'))
                    .collect();
                !cleaned.is_empty() && cleaned.parse::<f64>().is_ok()
            })
            .count();
        // Magnitude: the largest numeric value found, log-scaled; 0 when
        // the instance has no number (log10 of 1).
        let magnitude = tokens
            .iter()
            .filter_map(|t| {
                let cleaned: String = t
                    .chars()
                    .filter(|c| c.is_ascii_digit() || *c == '.')
                    .collect();
                cleaned.parse::<f64>().ok()
            })
            .fold(0.0f64, f64::max);
        [
            (magnitude.max(1.0)).log10(),
            (tokens.len() as f64).min(40.0),
            (chars as f64).min(200.0).ln(),
            digits as f64 / chars as f64,
            letters as f64 / chars as f64,
            if tokens.is_empty() {
                0.0
            } else {
                numeric_tokens as f64 / tokens.len() as f64
            },
        ]
    }
}

impl BaseLearner for StatsLearner {
    fn snapshot(&self) -> Option<crate::persist::SavedLearner> {
        Some(crate::persist::SavedLearner::Stats(self.clone()))
    }

    fn name(&self) -> &'static str {
        "stats-learner"
    }

    fn train(&mut self, examples: &[(&Instance, usize)]) {
        *self = StatsLearner::new(self.num_labels);
        for (instance, label) in examples {
            let f = Self::features(instance);
            for (m, x) in self.moments[*label].iter_mut().zip(f) {
                m.push(x);
            }
            self.class_counts[*label] += 1.0;
            self.total += 1.0;
        }
    }

    fn supports_warm_start(&self) -> bool {
        true
    }

    fn warm_train(&mut self, examples: &[(&Instance, usize)]) -> bool {
        for (instance, label) in examples {
            let f = Self::features(instance);
            for (m, x) in self.moments[*label].iter_mut().zip(f) {
                m.push(x);
            }
            self.class_counts[*label] += 1.0;
            self.total += 1.0;
        }
        true
    }

    fn predict(&self, instance: &Instance) -> Prediction {
        if self.total == 0.0 {
            return Prediction::uniform(self.num_labels);
        }
        let f = Self::features(instance);
        let log_scores: Vec<f64> = (0..self.num_labels)
            .map(|label| {
                if self.class_counts[label] == 0.0 {
                    return f64::NEG_INFINITY;
                }
                let prior = (self.class_counts[label] / self.total).ln();
                let likelihood: f64 = self.moments[label]
                    .iter()
                    .zip(f)
                    .map(|(m, x)| m.log_density(x))
                    .sum();
                prior + likelihood
            })
            .collect();
        Prediction::from_log_scores(&log_scores)
    }

    fn fresh(&self) -> Box<dyn BaseLearner> {
        Box::new(StatsLearner::new(self.num_labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::Element;

    fn inst(text: &str) -> Instance {
        Instance::new(Element::text_leaf("t", text), vec!["t".to_string()])
    }

    /// Labels: 0 PRICE (thousands), 1 BATHS (single digits), 2 DESCRIPTION
    /// (long text).
    fn trained() -> StatsLearner {
        let mut l = StatsLearner::new(3);
        let ex = [
            (inst("$250,000"), 0),
            (inst("$110,000"), 0),
            (inst("$485,000"), 0),
            (inst("$90,000"), 0),
            (inst("2"), 1),
            (inst("3"), 1),
            (inst("1.5"), 1),
            (inst("2.5"), 1),
            (inst("Fantastic house with a great yard near the river"), 2),
            (inst("Charming bungalow, close to downtown and schools"), 2),
            (inst("Spacious rooms and a beautiful garden"), 2),
        ];
        let refs: Vec<(&Instance, usize)> = ex.iter().map(|(i, l)| (i, *l)).collect();
        BaseLearner::train(&mut l, &refs);
        l
    }

    #[test]
    fn magnitude_separates_price_from_baths() {
        // The introduction's example: average value in the thousands →
        // price, not number of bathrooms.
        let l = trained();
        assert_eq!(l.predict(&inst("$375,000")).best_label(), 0);
        assert_eq!(l.predict(&inst("4")).best_label(), 1);
    }

    #[test]
    fn long_text_is_not_numeric() {
        let l = trained();
        let p = l.predict(&inst("Lovely cottage with mountain views and a new roof"));
        assert_eq!(p.best_label(), 2);
    }

    #[test]
    fn unseen_class_gets_zero_mass() {
        let mut l = StatsLearner::new(3);
        let a = inst("5");
        let b = inst("7");
        let refs: Vec<(&Instance, usize)> = vec![(&a, 0), (&b, 0)];
        BaseLearner::train(&mut l, &refs);
        let p = l.predict(&inst("6"));
        assert_eq!(p.best_label(), 0);
        assert_eq!(p.score(1), 0.0);
        assert_eq!(p.score(2), 0.0);
    }

    #[test]
    fn untrained_is_uniform() {
        let l = StatsLearner::new(4);
        let p = l.predict(&inst("anything"));
        assert!(p.scores().iter().all(|&s| (s - 0.25).abs() < 1e-12));
    }

    #[test]
    fn features_are_finite_on_edge_inputs() {
        for text in ["", " ", "$", "0", "a", "999999999999", "§§§"] {
            let f = StatsLearner::features(&inst(text));
            assert!(f.iter().all(|x| x.is_finite()), "{text:?}: {f:?}");
        }
    }

    #[test]
    fn fresh_is_untrained() {
        let l = trained();
        let p = l.fresh().predict(&inst("$100,000"));
        assert!(p.scores().iter().all(|&s| (s - 1.0 / 3.0).abs() < 1e-9));
    }
}
