//! The Content matcher (paper Section 3.3).
//!
//! "Also uses Whirl. However, this learner matches an XML element using its
//! data content, instead of its tag name." Works well on long textual
//! elements (house descriptions) and elements with distinct descriptive
//! values (colors); poor on short numeric elements.

use crate::instance::Instance;
use crate::learners::BaseLearner;
use lsd_learn::Prediction;
use lsd_text::{tokenize, Whirl, WhirlConfig};

/// WHIRL over the tokens of the instance's subtree text.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ContentMatcher {
    num_labels: usize,
    config: WhirlConfig,
    whirl: Whirl,
}

impl ContentMatcher {
    /// Creates an untrained content matcher with default WHIRL settings.
    pub fn new(num_labels: usize) -> Self {
        Self::with_config(num_labels, WhirlConfig::default())
    }

    /// Creates an untrained content matcher with explicit WHIRL settings
    /// (exposed for the `ablation_whirl` bench).
    pub fn with_config(num_labels: usize, config: WhirlConfig) -> Self {
        ContentMatcher {
            num_labels,
            config,
            whirl: Whirl::new(num_labels, config),
        }
    }

    /// Rebuilds the WHIRL inverted index after deserialization (it is not
    /// part of the serialized form).
    pub(crate) fn rehydrate(&mut self) {
        self.whirl.finalize();
    }

    fn tokens(instance: &Instance) -> Vec<String> {
        tokenize(&instance.text())
    }
}

impl BaseLearner for ContentMatcher {
    fn snapshot(&self) -> Option<crate::persist::SavedLearner> {
        Some(crate::persist::SavedLearner::Content(self.clone()))
    }

    fn name(&self) -> &'static str {
        "content-matcher"
    }

    fn train(&mut self, examples: &[(&Instance, usize)]) {
        let mut whirl = Whirl::new(self.num_labels, self.config);
        for (instance, label) in examples {
            let toks = Self::tokens(instance);
            whirl.add_example(toks.iter().map(String::as_str), *label);
        }
        whirl.finalize();
        self.whirl = whirl;
    }

    fn supports_warm_start(&self) -> bool {
        self.whirl.retains_documents()
    }

    fn warm_train(&mut self, examples: &[(&Instance, usize)]) -> bool {
        if !self.whirl.retains_documents() {
            return false;
        }
        for (instance, label) in examples {
            let toks = Self::tokens(instance);
            self.whirl
                .add_example(toks.iter().map(String::as_str), *label);
        }
        self.whirl.finalize();
        true
    }

    fn predict(&self, instance: &Instance) -> Prediction {
        let toks = Self::tokens(instance);
        Prediction::from_scores(self.whirl.classify(toks.iter().map(String::as_str)))
    }

    fn fresh(&self) -> Box<dyn BaseLearner> {
        Box::new(ContentMatcher::with_config(self.num_labels, self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::Element;

    fn inst(tag: &str, text: &str) -> Instance {
        Instance::new(Element::text_leaf(tag, text), vec![tag.to_string()])
    }

    /// Labels: 0 DESCRIPTION, 1 ADDRESS, 2 COLOR.
    fn trained() -> ContentMatcher {
        let mut m = ContentMatcher::new(3);
        let ex = [
            (inst("comments", "Fantastic house with great view"), 0),
            (inst("comments", "Nice area close to the river"), 0),
            (inst("extra-info", "Great location, beautiful yard"), 0),
            (inst("location", "Miami, FL"), 1),
            (inst("location", "Boston, MA"), 1),
            (inst("house-addr", "Seattle, WA"), 1),
            (inst("color", "red"), 2),
            (inst("color", "blue"), 2),
            (inst("paint", "green"), 2),
        ];
        let refs: Vec<(&Instance, usize)> = ex.iter().map(|(i, l)| (i, *l)).collect();
        m.train(&refs);
        m
    }

    #[test]
    fn long_text_matches_description() {
        let m = trained();
        let p = m.predict(&inst("anything", "Great house, fantastic river view"));
        assert_eq!(p.best_label(), 0, "{:?}", p.scores());
    }

    #[test]
    fn distinct_values_match_color() {
        let m = trained();
        let p = m.predict(&inst("x", "blue"));
        assert_eq!(p.best_label(), 2, "{:?}", p.scores());
    }

    #[test]
    fn tag_name_is_ignored() {
        let m = trained();
        // Tag says "color" but the content is an address.
        let p = m.predict(&inst("color", "Portland, OR"));
        assert_eq!(p.best_label(), 1, "{:?}", p.scores());
    }

    #[test]
    fn nested_content_uses_subtree_text() {
        let m = trained();
        let element = lsd_xml::parse_fragment(
            "<info><line1>great view</line1><line2>fantastic yard</line2></info>",
        )
        .unwrap();
        let p = m.predict(&Instance::new(element, vec!["info".into()]));
        assert_eq!(p.best_label(), 0);
    }

    #[test]
    fn fresh_is_untrained() {
        let m = trained();
        let p = m.fresh().predict(&inst("x", "blue"));
        assert!(p.scores().iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-9));
    }
}
