//! The format learner (paper Section 7, implemented as an extension).
//!
//! "Some tags simply require different types of learners. For example,
//! course codes are short alpha-numeric strings that consist of department
//! code followed by course number. As such, a format learner would
//! presumably match it better than any of LSD's current base learners."
//!
//! This learner abstracts each value into a character-class *pattern*
//! (runs of letters → `A`, digits → `9`, other characters kept verbatim;
//! e.g. `CSE142` → `A9`, `$70,000` → `$9,9`, `(206) 523 4719` →
//! `(9) 9 9`) and trains Naive Bayes over the patterns. It excels exactly
//! where the content matcher and Naive Bayes are weak: short numeric and
//! code-like fields whose *shape*, not vocabulary, is the signal.

use crate::instance::Instance;
use crate::learners::BaseLearner;
use lsd_learn::{NaiveBayes, NaiveBayesConfig, Prediction};

/// Naive Bayes over character-class patterns of the instance's values.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FormatLearner {
    num_labels: usize,
    model: NaiveBayes,
}

impl FormatLearner {
    /// Creates an untrained format learner.
    pub fn new(num_labels: usize) -> Self {
        FormatLearner {
            num_labels,
            model: NaiveBayes::new(num_labels, NaiveBayesConfig::default()),
        }
    }

    /// Pattern tokens of one instance: the whole-value pattern plus a
    /// length bucket, so `A9` codes of similar lengths cluster.
    fn tokens(instance: &Instance) -> Vec<String> {
        let text = instance.text();
        let value = text.trim();
        let mut tokens = vec![format!("p:{}", pattern_of(value))];
        tokens.push(format!("len:{}", length_bucket(value.len())));
        // Per-whitespace-word patterns add robustness for composite values.
        for word in value.split_whitespace() {
            tokens.push(format!("wp:{}", pattern_of(word)));
        }
        tokens
    }
}

/// Collapses a value to its character-class pattern: letter runs → `A`,
/// digit runs → `9`, whitespace runs → one space, everything else verbatim.
pub fn pattern_of(value: &str) -> String {
    #[derive(PartialEq, Clone, Copy)]
    enum Class {
        Alpha,
        Digit,
        Space,
        Other,
    }
    let mut out = String::new();
    let mut prev: Option<Class> = None;
    for c in value.chars() {
        let class = if c.is_alphabetic() {
            Class::Alpha
        } else if c.is_ascii_digit() {
            Class::Digit
        } else if c.is_whitespace() {
            Class::Space
        } else {
            Class::Other
        };
        let repeat_collapsed = matches!(class, Class::Alpha | Class::Digit | Class::Space);
        if repeat_collapsed && prev == Some(class) {
            continue;
        }
        match class {
            Class::Alpha => out.push('A'),
            Class::Digit => out.push('9'),
            Class::Space => out.push(' '),
            Class::Other => out.push(c),
        }
        prev = Some(class);
    }
    out
}

/// Buckets a length into a coarse token: exact to 6, then ranges.
fn length_bucket(len: usize) -> String {
    match len {
        0..=6 => len.to_string(),
        7..=10 => "7-10".to_string(),
        11..=20 => "11-20".to_string(),
        _ => "20+".to_string(),
    }
}

impl BaseLearner for FormatLearner {
    fn snapshot(&self) -> Option<crate::persist::SavedLearner> {
        Some(crate::persist::SavedLearner::Format(self.clone()))
    }

    fn name(&self) -> &'static str {
        "format-learner"
    }

    fn train(&mut self, examples: &[(&Instance, usize)]) {
        let mut model = NaiveBayes::new(self.num_labels, NaiveBayesConfig::default());
        for (instance, label) in examples {
            model.add_example(&Self::tokens(instance), *label);
        }
        self.model = model;
    }

    fn supports_warm_start(&self) -> bool {
        true
    }

    fn warm_train(&mut self, examples: &[(&Instance, usize)]) -> bool {
        for (instance, label) in examples {
            self.model.add_example(&Self::tokens(instance), *label);
        }
        true
    }

    fn predict(&self, instance: &Instance) -> Prediction {
        self.model.predict_tokens(&Self::tokens(instance))
    }

    fn fresh(&self) -> Box<dyn BaseLearner> {
        Box::new(FormatLearner::new(self.num_labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::Element;

    fn inst(text: &str) -> Instance {
        Instance::new(Element::text_leaf("t", text), vec!["t".to_string()])
    }

    #[test]
    fn patterns_abstract_shape() {
        assert_eq!(pattern_of("CSE142"), "A9");
        assert_eq!(pattern_of("$70,000"), "$9,9");
        assert_eq!(pattern_of("(206) 523 4719"), "(9) 9 9");
        assert_eq!(pattern_of("Seattle, WA"), "A, A");
        assert_eq!(pattern_of(""), "");
        assert_eq!(pattern_of("a  b"), "A A");
    }

    /// Labels: 0 COURSE-CODE, 1 PRICE, 2 CREDITS.
    fn trained() -> FormatLearner {
        let mut m = FormatLearner::new(3);
        let ex = [
            (inst("CSE142"), 0),
            (inst("MATH126"), 0),
            (inst("BIO101"), 0),
            (inst("$250,000"), 1),
            (inst("$1,100,000"), 1),
            (inst("$90,000"), 1),
            (inst("3"), 2),
            (inst("4"), 2),
            (inst("5"), 2),
        ];
        let refs: Vec<(&Instance, usize)> = ex.iter().map(|(i, l)| (i, *l)).collect();
        m.train(&refs);
        m
    }

    #[test]
    fn classifies_by_shape_not_vocabulary() {
        let m = trained();
        // Unseen department code, unseen number: only the shape matches.
        assert_eq!(m.predict(&inst("PHYS121")).best_label(), 0);
        assert_eq!(m.predict(&inst("$475,000")).best_label(), 1);
        assert_eq!(m.predict(&inst("2")).best_label(), 2);
    }

    #[test]
    fn single_digit_vs_code_distinction() {
        let m = trained();
        let code = m.predict(&inst("CHEM237"));
        let credit = m.predict(&inst("3"));
        assert_ne!(code.best_label(), credit.best_label());
    }

    #[test]
    fn fresh_is_untrained() {
        let p = trained().fresh().predict(&inst("CSE142"));
        assert!(p.scores().iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-9));
    }
}
