//! The XML learner (paper Section 5, Table 2).
//!
//! Naive Bayes "flattens" instances into word bags, so it confuses classes
//! like HOUSE, CONTACT-INFO, OFFICE-INFO and AGENT-INFO that share words.
//! The XML learner keeps the hierarchy: it rebuilds the instance as a tree,
//! replaces the root with a generic root `d` and every non-root element
//! node with its *label* (true labels during training, LSD's first-pass
//! predictions during matching — carried in [`Instance::sub_labels`]), and
//! then tokenizes the tree into:
//!
//! - **text tokens** — the stemmed leaf words;
//! - **node tokens** — one per labelled node (`AGENT-NAME` appearing inside
//!   an instance is evidence about the instance's own class);
//! - **edge tokens** — `parent→child` pairs, including `d→label`,
//!   `label→label`, and `label→word` edges (the paper's
//!   `WATERFRONT→"yes"` example), which discriminate where node tokens
//!   fail (e.g. `d→AGENT-NAME` separates AGENT-INFO from HOUSE).
//!
//! The bag of all three token kinds feeds a multinomial Naive Bayes model.

use crate::instance::Instance;
use crate::learners::BaseLearner;
use lsd_learn::{NaiveBayes, NaiveBayesConfig, Prediction};
use lsd_text::{tokenize, PorterStemmer};
use lsd_xml::Element;
use std::collections::HashMap;

/// Which structure-token kinds the learner generates; all on by default.
/// Exposed for the `ablation_xml` bench (text-only degenerates to plain
/// Naive Bayes).
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct XmlTokenKinds {
    /// Stemmed leaf words.
    pub text: bool,
    /// Labels of non-root element nodes.
    pub nodes: bool,
    /// Parent→child label/word pairs.
    pub edges: bool,
}

impl Default for XmlTokenKinds {
    fn default() -> Self {
        XmlTokenKinds {
            text: true,
            nodes: true,
            edges: true,
        }
    }
}

/// The structure-aware Naive Bayes classifier of Section 5.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct XmlLearner {
    num_labels: usize,
    kinds: XmlTokenKinds,
    model: NaiveBayes,
    stemmer: PorterStemmer,
}

impl XmlLearner {
    /// Creates an untrained XML learner generating all token kinds.
    pub fn new(num_labels: usize) -> Self {
        Self::with_token_kinds(num_labels, XmlTokenKinds::default())
    }

    /// Creates an untrained XML learner with selected token kinds.
    pub fn with_token_kinds(num_labels: usize, kinds: XmlTokenKinds) -> Self {
        XmlLearner {
            num_labels,
            kinds,
            model: NaiveBayes::new(num_labels, NaiveBayesConfig::default()),
            stemmer: PorterStemmer::new(),
        }
    }

    /// Generates the token bag for an element under a tag→label map.
    fn tokens(&self, instance: &Instance) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&instance.element, "d", &instance.sub_labels, &mut out);
        out
    }

    /// Recursive tree walk. `parent_id` is the token identity of the
    /// current node seen as a parent: `"d"` for the instance root, the
    /// label index for labelled descendants.
    fn walk(
        &self,
        element: &Element,
        parent_id: &str,
        sub_labels: &HashMap<String, usize>,
        out: &mut Vec<String>,
    ) {
        // Direct text words hang below this node.
        for word in tokenize(&element.direct_text()) {
            let w = self.stemmer.stem(&word);
            if self.kinds.text {
                out.push(format!("w:{w}"));
            }
            if self.kinds.edges {
                out.push(format!("e:{parent_id}>w:{w}"));
            }
        }
        for child in element.child_elements() {
            // Unknown tags (no first-pass label yet) fall back to the
            // OTHER slot, which is always index num_labels-1.
            let label = sub_labels
                .get(&child.name)
                .copied()
                .unwrap_or(self.num_labels - 1);
            let child_id = format!("L{label}");
            if self.kinds.nodes {
                out.push(format!("n:{child_id}"));
            }
            if self.kinds.edges {
                out.push(format!("e:{parent_id}>{child_id}"));
            }
            self.walk(child, &child_id, sub_labels, out);
        }
    }
}

impl BaseLearner for XmlLearner {
    fn snapshot(&self) -> Option<crate::persist::SavedLearner> {
        Some(crate::persist::SavedLearner::Xml(self.clone()))
    }

    fn name(&self) -> &'static str {
        "xml-learner"
    }

    fn train(&mut self, examples: &[(&Instance, usize)]) {
        let mut model = NaiveBayes::new(self.num_labels, NaiveBayesConfig::default());
        for (instance, label) in examples {
            model.add_example(&self.tokens(instance), *label);
        }
        self.model = model;
    }

    fn supports_warm_start(&self) -> bool {
        true
    }

    fn warm_train(&mut self, examples: &[(&Instance, usize)]) -> bool {
        for (instance, label) in examples {
            self.model.add_example(&self.tokens(instance), *label);
        }
        true
    }

    fn predict(&self, instance: &Instance) -> Prediction {
        self.model.predict_tokens(&self.tokens(instance))
    }

    fn fresh(&self) -> Box<dyn BaseLearner> {
        Box::new(XmlLearner::with_token_kinds(self.num_labels, self.kinds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::parse_fragment;

    /// Labels: 0 CONTACT-INFO, 1 DESCRIPTION, 2 AGENT-NAME, 3 OFFICE-NAME,
    /// 4 OTHER.
    const N: usize = 5;

    fn labels() -> HashMap<String, usize> {
        HashMap::from([
            ("name".to_string(), 2usize),
            ("firm".to_string(), 3usize),
            ("agent".to_string(), 2usize),
            ("office".to_string(), 3usize),
        ])
    }

    fn contact(name: &str, firm: &str) -> Instance {
        let el = parse_fragment(&format!(
            "<contact><name>{name}</name><firm>{firm}</firm></contact>"
        ))
        .unwrap();
        Instance::new(el, vec!["contact".into()]).with_sub_labels(labels())
    }

    fn description(text: &str) -> Instance {
        let el = parse_fragment(&format!("<description>{text}</description>")).unwrap();
        Instance::new(el, vec!["description".into()]).with_sub_labels(labels())
    }

    /// The paper's Figure 7 pair: a CONTACT-INFO element and a DESCRIPTION
    /// element that share all their words. Flat NB cannot separate them;
    /// the XML learner must.
    fn figure7_training() -> Vec<(Instance, usize)> {
        vec![
            (contact("Gail Murphy", "MAX Realtors"), 0),
            (contact("Jane Kendall", "ACME Homes"), 0),
            (contact("Mike Smith", "MAX Realtors"), 0),
            (
                description("Victorian house with a view. Contact Gail Murphy at MAX Realtors"),
                1,
            ),
            (
                description("Name your price! call Jane Kendall of ACME Homes"),
                1,
            ),
            (description("Great house. Mike Smith will show it"), 1),
        ]
    }

    fn trained(kinds: XmlTokenKinds) -> XmlLearner {
        let mut m = XmlLearner::with_token_kinds(N, kinds);
        let data = figure7_training();
        let refs: Vec<(&Instance, usize)> = data.iter().map(|(i, l)| (i, *l)).collect();
        m.train(&refs);
        m
    }

    #[test]
    fn structure_tokens_separate_shared_vocabulary() {
        let m = trained(XmlTokenKinds::default());
        let c = m.predict(&contact("Pat Doe", "MAX Realtors"));
        let d = m.predict(&description("To see it, contact Pat Doe at MAX Realtors"));
        assert_eq!(c.best_label(), 0, "{:?}", c.scores());
        assert_eq!(d.best_label(), 1, "{:?}", d.scores());
    }

    #[test]
    fn text_only_kinds_degenerate_to_flat_bag() {
        // With only text tokens the two Figure-7 instances are nearly
        // indistinguishable — structure is what separates them.
        let m = trained(XmlTokenKinds {
            text: true,
            nodes: false,
            edges: false,
        });
        let c = m.predict(&contact("Gail Murphy", "MAX Realtors"));
        let full = trained(XmlTokenKinds::default());
        let c_full = full.predict(&contact("Gail Murphy", "MAX Realtors"));
        assert!(
            c_full.score(0) > c.score(0),
            "structure tokens should sharpen the correct class: full={:.3} text-only={:.3}",
            c_full.score(0),
            c.score(0)
        );
    }

    #[test]
    fn token_generation_covers_all_kinds() {
        let m = XmlLearner::new(N);
        let inst = contact("Gail Murphy", "MAX Realtors");
        let toks = m.tokens(&inst);
        // Node tokens for the two labelled children.
        assert!(toks.contains(&"n:L2".to_string()), "{toks:?}");
        assert!(toks.contains(&"n:L3".to_string()));
        // Root edges.
        assert!(toks.contains(&"e:d>L2".to_string()));
        // Label→word edge (the WATERFRONT→"yes" pattern).
        assert!(toks.contains(&"e:L2>w:gail".to_string()));
        // Text tokens.
        assert!(toks.contains(&"w:gail".to_string()));
    }

    #[test]
    fn unknown_child_tags_fall_back_to_other() {
        let m = XmlLearner::new(N);
        let el = parse_fragment("<x><mystery>v</mystery></x>").unwrap();
        let inst = Instance::new(el, vec!["x".into()]); // no sub_labels
        let toks = m.tokens(&inst);
        assert!(toks.contains(&format!("n:L{}", N - 1)), "{toks:?}");
    }

    #[test]
    fn root_text_gets_d_edges() {
        let m = XmlLearner::new(N);
        let inst = description("hello");
        let toks = m.tokens(&inst);
        assert!(toks.contains(&"e:d>w:hello".to_string()), "{toks:?}");
    }

    #[test]
    fn fresh_is_untrained() {
        let m = trained(XmlTokenKinds::default());
        let p = m.fresh().predict(&contact("A B", "C D"));
        assert!(p
            .scores()
            .iter()
            .all(|&x| (x - 1.0 / N as f64).abs() < 1e-9));
    }
}
