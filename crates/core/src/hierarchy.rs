//! Partial mappings through a label hierarchy (paper Section 7).
//!
//! "Some tags cannot be matched because they are simply ambiguous. … Here,
//! the challenge is to provide the user with a possible partial mapping. If
//! our mediated DTD contains a label hierarchy, in which each label (e.g.,
//! `credit`) refers to a concept more general than those of its descendent
//! labels (e.g., `course-credit` and `section-credit`) then we can match a
//! tag with the most specific unambiguous label in the hierarchy … and
//! leave it to the user to choose the appropriate child label."
//!
//! The mediated DTD *is* a label hierarchy: a non-leaf mediated tag is more
//! general than the tags nested within it. [`most_specific_unambiguous`]
//! walks it: when no single label is confident but the probability mass
//! concentrates inside one subtree, it proposes that subtree's root as a
//! partial match.

use lsd_learn::{LabelSet, Prediction};
use lsd_xml::SchemaTree;

/// The outcome of hierarchy-aware matching for one tag.
#[derive(Debug, Clone, PartialEq)]
pub enum PartialMatch {
    /// One label is confident on its own.
    Exact {
        /// The confident label index.
        label: usize,
        /// Its score.
        score: f64,
    },
    /// No single label is confident, but this (non-leaf) mediated label's
    /// subtree collectively is: the user should pick among its children.
    Partial {
        /// The most specific unambiguous ancestor label index.
        ancestor: usize,
        /// Total probability mass inside the ancestor's subtree.
        mass: f64,
    },
    /// The mass is spread too thin even at the mediated root; no useful
    /// proposal.
    Unknown,
}

/// Finds the most specific unambiguous label for a tag-level prediction.
///
/// * `prediction` — the converter's output for the tag.
/// * `labels` — the label set (mediated tags + OTHER).
/// * `mediated` — the mediated schema tree (the label hierarchy).
/// * `confidence` — the mass a proposal must reach (e.g. 0.6).
pub fn most_specific_unambiguous(
    prediction: &Prediction,
    labels: &LabelSet,
    mediated: &SchemaTree,
    confidence: f64,
) -> PartialMatch {
    let best = prediction.best_label();
    if prediction.score(best) >= confidence {
        return PartialMatch::Exact {
            label: best,
            score: prediction.score(best),
        };
    }

    // Subtree mass per mediated tag: own score plus every descendant's.
    let mut candidate: Option<(usize, usize, f64)> = None; // (depth, label, mass)
    for tag in mediated.tags() {
        if tag.is_leaf {
            continue; // a leaf subtree is just the label itself: covered above
        }
        let Some(own) = labels.get(&tag.name) else {
            continue;
        };
        let mut mass = prediction.score(own);
        for other in mediated.tags() {
            if other.name != tag.name && mediated.is_nested_in(&other.name, &tag.name) {
                if let Some(l) = labels.get(&other.name) {
                    mass += prediction.score(l);
                }
            }
        }
        if mass >= confidence {
            let deeper = match candidate {
                None => true,
                Some((depth, _, best_mass)) => {
                    tag.depth > depth || (tag.depth == depth && mass > best_mass)
                }
            };
            if deeper {
                candidate = Some((tag.depth, own, mass));
            }
        }
    }
    match candidate {
        Some((_, ancestor, mass)) => PartialMatch::Partial { ancestor, mass },
        None => PartialMatch::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::parse_dtd;

    /// The paper's example: CREDIT generalizes COURSE-CREDIT and
    /// SECTION-CREDIT.
    fn fixture() -> (LabelSet, SchemaTree) {
        let dtd = parse_dtd(
            "<!ELEMENT COURSE (TITLE, CREDIT)>\n\
             <!ELEMENT TITLE (#PCDATA)>\n\
             <!ELEMENT CREDIT (COURSE-CREDIT, SECTION-CREDIT)>\n\
             <!ELEMENT COURSE-CREDIT (#PCDATA)>\n\
             <!ELEMENT SECTION-CREDIT (#PCDATA)>",
        )
        .expect("valid DTD");
        let tree = SchemaTree::from_dtd(&dtd).expect("closed DTD");
        let labels = LabelSet::new(dtd.element_names().map(str::to_string));
        (labels, tree)
    }

    /// Builds a prediction over the fixture labels from (name, score)
    /// pairs.
    fn pred(labels: &LabelSet, pairs: &[(&str, f64)]) -> Prediction {
        let mut scores = vec![0.001; labels.len()];
        for (name, s) in pairs {
            scores[labels.get(name).expect("known label")] = *s;
        }
        Prediction::from_scores(scores)
    }

    #[test]
    fn confident_label_is_exact() {
        let (labels, tree) = fixture();
        let p = pred(&labels, &[("TITLE", 0.9)]);
        match most_specific_unambiguous(&p, &labels, &tree, 0.6) {
            PartialMatch::Exact { label, score } => {
                assert_eq!(labels.name(label), "TITLE");
                assert!(score > 0.8);
            }
            other => panic!("expected exact, got {other:?}"),
        }
    }

    #[test]
    fn credit_ambiguity_resolves_to_credit_parent() {
        // The Section 7 scenario: "credits" splits between course- and
        // section-credit; neither is confident, their parent CREDIT is.
        let (labels, tree) = fixture();
        let p = pred(
            &labels,
            &[("COURSE-CREDIT", 0.45), ("SECTION-CREDIT", 0.45)],
        );
        match most_specific_unambiguous(&p, &labels, &tree, 0.6) {
            PartialMatch::Partial { ancestor, mass } => {
                assert_eq!(labels.name(ancestor), "CREDIT");
                assert!(mass > 0.85);
            }
            other => panic!("expected partial CREDIT, got {other:?}"),
        }
    }

    #[test]
    fn prefers_most_specific_subtree() {
        // Mass concentrated under CREDIT also lies under COURSE (the
        // root); the deeper ancestor must win.
        let (labels, tree) = fixture();
        let p = pred(
            &labels,
            &[
                ("COURSE-CREDIT", 0.35),
                ("SECTION-CREDIT", 0.35),
                ("CREDIT", 0.2),
            ],
        );
        match most_specific_unambiguous(&p, &labels, &tree, 0.6) {
            PartialMatch::Partial { ancestor, .. } => {
                assert_eq!(labels.name(ancestor), "CREDIT");
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn scattered_mass_is_unknown() {
        let (labels, tree) = fixture();
        // Half the mass on OTHER, rest scattered: even the root subtree
        // misses the bar.
        let mut scores = vec![0.1; labels.len()];
        scores[labels.other()] = 0.5;
        let p = Prediction::from_scores(scores);
        assert_eq!(
            most_specific_unambiguous(&p, &labels, &tree, 0.8),
            PartialMatch::Unknown
        );
    }

    #[test]
    fn cross_subtree_ambiguity_climbs_to_root() {
        let (labels, tree) = fixture();
        let p = pred(&labels, &[("TITLE", 0.45), ("COURSE-CREDIT", 0.45)]);
        match most_specific_unambiguous(&p, &labels, &tree, 0.6) {
            PartialMatch::Partial { ancestor, .. } => {
                assert_eq!(labels.name(ancestor), "COURSE");
            }
            other => panic!("expected partial COURSE, got {other:?}"),
        }
    }
}
