//! Property-based tests for the text/IR toolkit.

use lsd_text::{
    tokenize, tokenize_name, PorterStemmer, SparseVector, TfIdfModel, Whirl, WhirlConfig,
};
use proptest::prelude::*;

proptest! {
    /// The tokenizer never panics and produces only lowercase alphabetic,
    /// digit, or single-symbol tokens.
    #[test]
    fn tokenize_output_shape(s in "\\PC{0,60}") {
        for token in tokenize(&s) {
            prop_assert!(!token.is_empty());
            // "Lowercase" means fixed under lowercasing: some alphabetic
            // characters (e.g. 𝒢) have no lowercase mapping at all.
            let alpha = token
                .chars()
                .all(|c| c.is_alphabetic() && c.to_lowercase().collect::<String>() == c.to_string());
            let digit = token.chars().all(|c| c.is_ascii_digit());
            let symbol = token.chars().count() == 1
                && !token.chars().next().expect("non-empty").is_alphanumeric();
            prop_assert!(alpha || digit || symbol, "bad token {token:?} from {s:?}");
        }
    }

    /// Name tokenization is insensitive to separator choice.
    #[test]
    fn name_separators_equivalent(words in prop::collection::vec("[a-z]{1,6}", 1..4)) {
        let dashed = words.join("-");
        let under = words.join("_");
        prop_assert_eq!(tokenize_name(&dashed), tokenize_name(&under));
        prop_assert_eq!(tokenize_name(&dashed), words);
    }

    /// Stemming never grows a word and never panics.
    #[test]
    fn stem_never_grows(w in "[a-z]{1,15}") {
        let stemmer = PorterStemmer::new();
        let s = stemmer.stem(&w);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= w.len(), "stem({w}) = {s} grew");
    }

    /// Cosine similarity is symmetric, bounded, and 1 on self (for
    /// non-zero vectors).
    #[test]
    fn cosine_properties(
        a in prop::collection::vec((0u32..50, 0.01f64..10.0), 1..10),
        b in prop::collection::vec((0u32..50, 0.01f64..10.0), 1..10),
    ) {
        let va = SparseVector::from_pairs(a);
        let vb = SparseVector::from_pairs(b);
        let ab = va.cosine(&vb);
        let ba = vb.cosine(&va);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&ab));
        prop_assert!((va.cosine(&va) - 1.0).abs() < 1e-9);
    }

    /// TF/IDF vectors are unit-normalized (or zero for out-of-vocabulary
    /// input).
    #[test]
    fn tfidf_vectors_unit_norm(
        docs in prop::collection::vec(prop::collection::vec("[a-e]", 1..6), 1..6),
        query in prop::collection::vec("[a-g]", 0..6),
    ) {
        let mut m = TfIdfModel::new();
        for d in &docs {
            m.add_document(d.iter().map(String::as_str));
        }
        let v = m.vector_for_tokens(query.iter().map(String::as_str));
        let norm = v.norm();
        prop_assert!(v.is_zero() || (norm - 1.0).abs() < 1e-9, "norm = {norm}");
    }

    /// WHIRL always returns a probability distribution over its labels.
    #[test]
    fn whirl_returns_distribution(
        examples in prop::collection::vec((prop::collection::vec("[a-f]", 1..4), 0usize..3), 1..12),
        query in prop::collection::vec("[a-h]", 0..5),
    ) {
        let mut w = Whirl::new(3, WhirlConfig::default());
        for (tokens, label) in &examples {
            w.add_example(tokens.iter().map(String::as_str), *label);
        }
        w.finalize();
        let scores = w.classify(query.iter().map(String::as_str));
        prop_assert_eq!(scores.len(), 3);
        let total: f64 = scores.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        prop_assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }
}
