//! TF/IDF vector space with cosine similarity.
//!
//! WHIRL (Cohen & Hirsh), which the paper's Name and Content matchers use,
//! represents each text fragment as a TF/IDF-weighted term vector and
//! measures similarity by the cosine of the angle between vectors. We use
//! the standard log-scaled variant: `tf = 1 + ln(count)`,
//! `idf = ln(N / df)`, weights L2-normalized per document.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interns token strings to dense `u32` ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    ids: HashMap<String, u32>,
    tokens: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `token`, interning it if new.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.tokens.len() as u32;
        self.ids.insert(token.to_string(), id);
        self.tokens.push(token.to_string());
        id
    }

    /// Returns the id for `token` if already interned.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The token string for an id.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.tokens.get(id as usize).map(String::as_str)
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if no tokens have been interned.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// A sparse vector: sorted `(dimension, weight)` pairs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// Builds a vector from unsorted `(dim, weight)` pairs, summing
    /// duplicate dimensions.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(d, _)| d);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (d, w) in pairs {
            match entries.last_mut() {
                Some((ld, lw)) if *ld == d => *lw += w,
                _ => entries.push((d, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        SparseVector { entries }
    }

    /// Counts token occurrences into a term-frequency vector.
    pub fn term_counts(ids: impl IntoIterator<Item = u32>) -> Self {
        Self::from_pairs(ids.into_iter().map(|id| (id, 1.0)).collect())
    }

    /// The sorted `(dim, weight)` entries.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of non-zero dimensions.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True if the vector is all zeros.
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// The L2 norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Scales the vector to unit L2 norm (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for (_, w) in &mut self.entries {
                *w /= n;
            }
        }
    }

    /// Dot product with another sparse vector (merge join over sorted dims).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut sum = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (da, wa) = self.entries[i];
            let (db, wb) = other.entries[j];
            match da.cmp(&db) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Cosine similarity in `[0, 1]` for non-negative weights.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }
}

/// A fitted TF/IDF model: vocabulary plus per-token document frequencies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TfIdfModel {
    vocab: Vocabulary,
    doc_freq: Vec<u32>,
    num_docs: u32,
}

impl TfIdfModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document's tokens to the corpus statistics and returns the
    /// interned token ids (with duplicates, in input order).
    pub fn add_document<'a>(&mut self, tokens: impl IntoIterator<Item = &'a str>) -> Vec<u32> {
        let ids: Vec<u32> = tokens.into_iter().map(|t| self.vocab.intern(t)).collect();
        let mut seen: Vec<u32> = ids.clone();
        seen.sort_unstable();
        seen.dedup();
        if self.doc_freq.len() < self.vocab.len() {
            self.doc_freq.resize(self.vocab.len(), 0);
        }
        for id in seen {
            self.doc_freq[id as usize] += 1;
        }
        self.num_docs += 1;
        ids
    }

    /// Number of documents added.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// The vocabulary (for inspection/debugging).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// IDF of a token id: `ln((1 + N) / (1 + df))`, smoothed so unseen
    /// tokens still receive the maximum weight instead of a division by zero.
    pub fn idf(&self, id: u32) -> f64 {
        let df = self.doc_freq.get(id as usize).copied().unwrap_or(0);
        ((1.0 + f64::from(self.num_docs)) / (1.0 + f64::from(df))).ln()
    }

    /// Builds the L2-normalized TF/IDF vector for a token-id multiset.
    pub fn vector_for_ids(&self, ids: &[u32]) -> SparseVector {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &id in ids {
            *counts.entry(id).or_insert(0) += 1;
        }
        let mut v = SparseVector::from_pairs(
            counts
                .into_iter()
                .map(|(id, c)| (id, (1.0 + f64::from(c).ln()) * self.idf(id)))
                .collect(),
        );
        v.normalize();
        v
    }

    /// Builds the vector for raw tokens; tokens outside the vocabulary are
    /// dropped (they carry no comparable weight).
    pub fn vector_for_tokens<'a>(&self, tokens: impl IntoIterator<Item = &'a str>) -> SparseVector {
        let ids: Vec<u32> = tokens
            .into_iter()
            .filter_map(|t| self.vocab.get(t))
            .collect();
        self.vector_for_ids(&ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_interns_stably() {
        let mut v = Vocabulary::new();
        let a = v.intern("price");
        let b = v.intern("phone");
        assert_ne!(a, b);
        assert_eq!(v.intern("price"), a);
        assert_eq!(v.get("phone"), Some(b));
        assert_eq!(v.token(a), Some("price"));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn sparse_vector_merges_duplicates() {
        let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 4.0)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 5.0)]);
    }

    #[test]
    fn dot_product_merge_join() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = SparseVector::from_pairs(vec![(2, 4.0), (5, 1.0), (9, 7.0)]);
        assert_eq!(a.dot(&b), 2.0 * 4.0 + 3.0);
    }

    #[test]
    fn cosine_identity_and_orthogonality() {
        let a = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        let b = SparseVector::from_pairs(vec![(2, 1.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&SparseVector::default()), 0.0);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut v = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        let mut zero = SparseVector::default();
        zero.normalize(); // must not panic
        assert!(zero.is_zero());
    }

    #[test]
    fn idf_weights_rare_tokens_higher() {
        let mut m = TfIdfModel::new();
        m.add_document(["house", "great"].iter().copied());
        m.add_document(["house", "fantastic"].iter().copied());
        m.add_document(["house", "great"].iter().copied());
        let house = m.vocabulary().get("house").unwrap();
        let fantastic = m.vocabulary().get("fantastic").unwrap();
        assert!(m.idf(fantastic) > m.idf(house));
    }

    #[test]
    fn vectors_of_similar_docs_are_closer() {
        let mut m = TfIdfModel::new();
        let docs = [
            vec!["great", "location", "nice", "view"],
            vec!["fantastic", "house", "great", "yard"],
            vec!["206", "523", "4719"],
        ];
        for d in &docs {
            m.add_document(d.iter().copied());
        }
        let desc = m.vector_for_tokens(["great", "nice", "house"].iter().copied());
        let desc2 = m.vector_for_tokens(["great", "view"].iter().copied());
        let phone = m.vector_for_tokens(["206", "4719"].iter().copied());
        assert!(desc.cosine(&desc2) > desc.cosine(&phone));
    }

    #[test]
    fn unknown_tokens_are_dropped() {
        let mut m = TfIdfModel::new();
        m.add_document(["a", "b"].iter().copied());
        let v = m.vector_for_tokens(["zzz", "qqq"].iter().copied());
        assert!(v.is_zero());
    }

    #[test]
    fn term_counts() {
        let v = SparseVector::term_counts([1, 1, 2, 1]);
        assert_eq!(v.entries(), &[(1, 3.0), (2, 1.0)]);
    }
}
