//! # lsd-text
//!
//! The information-retrieval toolkit behind LSD's WHIRL-based base learners
//! (the Name matcher and Content matcher) and the Naive Bayes tokenizer:
//!
//! - [`tokenize`] / [`tokenize_name`] — word/symbol tokenization for data
//!   content and for schema tag names (splitting `listed-price`,
//!   `agent_phone`, `ListedPrice` into their words).
//! - [`PorterStemmer`] — the full Porter (1980) stemming algorithm.
//! - [`Vocabulary`], [`SparseVector`], [`TfIdfModel`] — a TF/IDF vector
//!   space with cosine similarity.
//! - [`Whirl`] — the nearest-neighbour classifier of Cohen & Hirsh used by
//!   the paper's Name and Content matchers: it stores training examples,
//!   finds the TF/IDF-nearest stored examples for a query, and combines
//!   neighbour similarities into per-label confidence scores.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod stem;
mod tfidf;
mod tokenize;
mod whirl;

pub use stem::PorterStemmer;
pub use tfidf::{SparseVector, TfIdfModel, Vocabulary};
pub use tokenize::{char_ngrams, tokenize, tokenize_name, tokenize_with, TokenizeOptions};
pub use whirl::{NeighborCombination, Whirl, WhirlConfig};
