//! The Porter stemming algorithm (M.F. Porter, 1980).
//!
//! LSD's Naive Bayes learner stems tokens before counting them (paper
//! Section 3.3: "parsing and stemming the words and symbols in the
//! instance"). This is a faithful port of the reference implementation:
//! steps 1a/1b/1c reduce plurals and -ed/-ing, steps 2–4 strip derivational
//! suffixes gated on the measure *m* (the number of vowel–consonant spans),
//! and step 5 tidies a trailing -e / double consonant.
//!
//! Words shorter than three letters or containing non-ASCII-alphabetic
//! characters are returned unchanged (stemming them is meaningless and the
//! tokenizer already isolates numbers and symbols).

/// A reusable Porter stemmer. Stateless between calls; the struct exists so
/// call sites read `stemmer.stem(word)`.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct PorterStemmer;

impl PorterStemmer {
    /// Creates a stemmer.
    pub fn new() -> Self {
        PorterStemmer
    }

    /// Stems one lowercase word.
    ///
    /// ```
    /// use lsd_text::PorterStemmer;
    /// let s = PorterStemmer::new();
    /// assert_eq!(s.stem("caresses"), "caress");
    /// assert_eq!(s.stem("relational"), "relat");
    /// assert_eq!(s.stem("hopping"), "hop");
    /// ```
    pub fn stem(&self, word: &str) -> String {
        if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
            return word.to_string();
        }
        let mut state = Stem {
            b: word.as_bytes().to_vec(),
            k: word.len() - 1,
        };
        state.step1ab();
        state.step1c();
        state.step2();
        state.step3();
        state.step4();
        state.step5();
        String::from_utf8(state.b[..=state.k].to_vec()).expect("ascii in, ascii out")
    }
}

struct Stem {
    b: Vec<u8>,
    /// Index of the last valid byte of the current stem.
    k: usize,
}

impl Stem {
    /// True if b[i] is a consonant.
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// The measure m of the stem b[0..=j]: the number of VC spans.
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        // Skip initial consonants.
        loop {
            if i > j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            // Skip vowels.
            loop {
                if i > j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            // Skip consonants.
            loop {
                if i > j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// True if b[0..=j] contains a vowel.
    fn vowel_in_stem(&self, j: usize) -> bool {
        (0..=j).any(|i| !self.cons(i))
    }

    /// True if b[i-1..=i] is a double consonant.
    fn double_cons(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.cons(i)
    }

    /// True if b[i-2..=i] is consonant-vowel-consonant and the final
    /// consonant is not w, x or y (the *o* condition).
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// True if the stem ends with `s`; sets `j` via return value.
    fn ends(&self, s: &str) -> Option<usize> {
        let s = s.as_bytes();
        if s.len() > self.k + 1 {
            return None;
        }
        let start = self.k + 1 - s.len();
        if &self.b[start..=self.k] == s {
            Some(start.checked_sub(1).unwrap_or(usize::MAX))
        } else {
            None
        }
    }

    /// Replaces the suffix after `j` with `s` and updates `k`.
    fn set_to(&mut self, j: usize, s: &str) {
        let base = if j == usize::MAX { 0 } else { j + 1 };
        self.b.truncate(base);
        self.b.extend_from_slice(s.as_bytes());
        self.k = if self.b.is_empty() {
            0
        } else {
            self.b.len() - 1
        };
    }

    /// `ends` + measure>0 gate + replace: the workhorse of steps 2–4.
    fn replace_if_m(&mut self, suffix: &str, replacement: &str, min_m: usize) -> bool {
        if let Some(j) = self.ends(suffix) {
            if j != usize::MAX && self.measure(j) > min_m.saturating_sub(1) {
                self.set_to(j, replacement);
                return true;
            }
            // Suffix matched but condition failed: stop scanning this step.
            return true;
        }
        false
    }

    fn step1ab(&mut self) {
        // Step 1a: plurals.
        if self.b[self.k] == b's' {
            if let Some(j) = self.ends("sses") {
                self.set_to(j, "ss");
            } else if let Some(j) = self.ends("ies") {
                self.set_to(j, "i");
            } else if self.k >= 1 && self.b[self.k - 1] != b's' {
                self.k -= 1;
                self.b.truncate(self.k + 1);
            }
        }
        // Step 1b: -eed, -ed, -ing.
        if let Some(j) = self.ends("eed") {
            if j != usize::MAX && self.measure(j) > 0 {
                self.k -= 1;
                self.b.truncate(self.k + 1);
            }
        } else {
            let matched = if let Some(j) = self.ends("ed") {
                if j != usize::MAX && self.vowel_in_stem(j) {
                    self.set_to(j, "");
                    true
                } else {
                    false
                }
            } else if let Some(j) = self.ends("ing") {
                if j != usize::MAX && self.vowel_in_stem(j) {
                    self.set_to(j, "");
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if matched {
                if self.ends("at").is_some()
                    || self.ends("bl").is_some()
                    || self.ends("iz").is_some()
                {
                    let k = self.k;
                    self.set_to(k, "e");
                } else if self.double_cons(self.k) {
                    if !matches!(self.b[self.k], b'l' | b's' | b'z') {
                        self.k -= 1;
                        self.b.truncate(self.k + 1);
                    }
                } else if self.measure(self.k) == 1 && self.cvc(self.k) {
                    let k = self.k;
                    self.set_to(k, "e");
                }
            }
        }
    }

    fn step1c(&mut self) {
        if self.b[self.k] == b'y' && self.k >= 1 && self.vowel_in_stem(self.k - 1) {
            self.b[self.k] = b'i';
        }
    }

    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        let rules: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, replacement) in rules {
            if self.replace_if_m(suffix, replacement, 1) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        let rules: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, replacement) in rules {
            if self.replace_if_m(suffix, replacement, 1) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        let suffixes: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
            "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for suffix in suffixes {
            if let Some(j) = self.ends(suffix) {
                if j == usize::MAX {
                    return;
                }
                // -ion only drops after s or t.
                if *suffix == "ion" && !matches!(self.b[j], b's' | b't') {
                    return;
                }
                if self.measure(j) > 1 {
                    self.set_to(j, "");
                }
                return;
            }
        }
    }

    fn step5(&mut self) {
        // Step 5a: drop a trailing e when m > 1, or when m == 1 and the stem
        // does not end cvc.
        if self.b[self.k] == b'e' && self.k >= 1 {
            let j = self.k - 1;
            let m = self.measure(self.k);
            if m > 1 || (m == 1 && !self.cvc(j)) {
                self.k = j;
                self.b.truncate(self.k + 1);
            }
        }
        // Step 5b: -ll -> -l when m > 1.
        if self.k >= 1
            && self.b[self.k] == b'l'
            && self.double_cons(self.k)
            && self.measure(self.k) > 1
        {
            self.k -= 1;
            self.b.truncate(self.k + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stem(w: &str) -> String {
        PorterStemmer::new().stem(w)
    }

    #[test]
    fn step1a_plurals() {
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("ties"), "ti");
        assert_eq!(stem("caress"), "caress");
        assert_eq!(stem("cats"), "cat");
    }

    #[test]
    fn step1b_ed_ing() {
        assert_eq!(stem("feed"), "feed");
        assert_eq!(stem("agreed"), "agre");
        assert_eq!(stem("plastered"), "plaster");
        assert_eq!(stem("bled"), "bled");
        assert_eq!(stem("motoring"), "motor");
        assert_eq!(stem("sing"), "sing");
    }

    #[test]
    fn step1b_cleanup() {
        assert_eq!(stem("conflated"), "conflat");
        assert_eq!(stem("troubled"), "troubl");
        assert_eq!(stem("sized"), "size");
        assert_eq!(stem("hopping"), "hop");
        assert_eq!(stem("tanned"), "tan");
        assert_eq!(stem("falling"), "fall");
        assert_eq!(stem("hissing"), "hiss");
        assert_eq!(stem("fizzed"), "fizz");
        assert_eq!(stem("failing"), "fail");
        assert_eq!(stem("filing"), "file");
    }

    #[test]
    fn step1c_y_to_i() {
        assert_eq!(stem("happy"), "happi");
        assert_eq!(stem("sky"), "sky");
    }

    #[test]
    fn step2_derivational() {
        assert_eq!(stem("relational"), "relat");
        assert_eq!(stem("conditional"), "condit");
        assert_eq!(stem("rational"), "ration");
        assert_eq!(stem("digitizer"), "digit");
        assert_eq!(stem("operator"), "oper");
        assert_eq!(stem("feudalism"), "feudal");
        assert_eq!(stem("decisiveness"), "decis");
        assert_eq!(stem("hopefulness"), "hope");
        assert_eq!(stem("formaliti"), "formal");
    }

    #[test]
    fn step3() {
        assert_eq!(stem("triplicate"), "triplic");
        assert_eq!(stem("formative"), "form");
        assert_eq!(stem("formalize"), "formal");
        assert_eq!(stem("electrical"), "electr");
        assert_eq!(stem("hopeful"), "hope");
        assert_eq!(stem("goodness"), "good");
    }

    #[test]
    fn step4() {
        assert_eq!(stem("revival"), "reviv");
        assert_eq!(stem("allowance"), "allow");
        assert_eq!(stem("inference"), "infer");
        assert_eq!(stem("airliner"), "airlin");
        assert_eq!(stem("adjustable"), "adjust");
        assert_eq!(stem("defensible"), "defens");
        assert_eq!(stem("replacement"), "replac");
        assert_eq!(stem("adoption"), "adopt");
        assert_eq!(stem("communism"), "commun");
        assert_eq!(stem("activate"), "activ");
        assert_eq!(stem("effective"), "effect");
    }

    #[test]
    fn step5() {
        assert_eq!(stem("probate"), "probat");
        assert_eq!(stem("rate"), "rate");
        assert_eq!(stem("cease"), "ceas");
        assert_eq!(stem("controlling"), "control");
        assert_eq!(stem("rolling"), "roll");
    }

    #[test]
    fn domain_vocabulary() {
        // Words the real-estate learners see: stems must collide across forms.
        assert_eq!(stem("listings"), stem("listing"));
        assert_eq!(stem("houses"), stem("house"));
        assert_eq!(stem("located"), stem("location"));
        assert_eq!(stem("spacious"), "spaciou");
    }

    #[test]
    fn short_and_non_ascii_words_pass_through() {
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("café"), "café");
        assert_eq!(stem("WA"), "WA"); // uppercase untouched
        assert_eq!(stem("70000"), "70000");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        let s = PorterStemmer::new();
        // Note: Porter is not idempotent in general ("universities" →
        // "univers" → "univ"); these common forms are.
        for w in [
            "running",
            "description",
            "beautiful",
            "agencies",
            "locations",
        ] {
            let once = s.stem(w);
            assert_eq!(s.stem(&once), once, "stem({w}) not idempotent");
        }
    }
}
