//! The WHIRL nearest-neighbour classifier (Cohen & Hirsh).
//!
//! The paper's Name matcher and Content matcher both use WHIRL (Section
//! 3.3): all training examples `(text, label)` are stored; to classify a
//! query, the classifier finds the stored examples within a similarity
//! threshold of the query under TF/IDF cosine distance and combines their
//! similarities into per-label confidence scores.
//!
//! The combination rule is configurable for ablation studies:
//! [`NeighborCombination::NoisyOr`] (WHIRL's own rule —
//! `score(c) = 1 − Π (1 − sim)` over neighbours with label `c`),
//! `Max`, or `Mean`.

use crate::tfidf::{SparseVector, TfIdfModel};
use serde::{Deserialize, Serialize};

/// How neighbour similarities are merged into one score per label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NeighborCombination {
    /// `1 − Π (1 − sim)` — WHIRL's rule; multiple agreeing neighbours
    /// reinforce each other.
    NoisyOr,
    /// The single best neighbour similarity per label.
    Max,
    /// The mean similarity over that label's neighbours.
    Mean,
}

/// Configuration for a [`Whirl`] classifier.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WhirlConfig {
    /// Only neighbours with cosine similarity strictly above this threshold
    /// vote (the paper's "within a δ distance").
    pub min_similarity: f64,
    /// At most this many nearest neighbours vote.
    pub max_neighbors: usize,
    /// The score combination rule.
    pub combination: NeighborCombination,
    /// Tempering toward uniform: the returned distribution is
    /// `(1−t)·scores + t·uniform`. Cosine similarities are not calibrated
    /// probabilities — an exact-duplicate neighbour would otherwise yield
    /// certainty 1.0, letting one confidently-wrong nearest-neighbour vote
    /// overpower every other learner in the stack.
    pub temper: f64,
}

impl Default for WhirlConfig {
    fn default() -> Self {
        WhirlConfig {
            min_similarity: 0.0,
            max_neighbors: 30,
            combination: NeighborCombination::NoisyOr,
            temper: 0.1,
        }
    }
}

/// A stored training example: its TF/IDF vector and label index.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Example {
    vector: SparseVector,
    label: usize,
}

/// The WHIRL classifier over an arbitrary label set (labels are dense
/// `usize` indices; the caller owns the mapping to label names).
///
/// ```
/// use lsd_text::{tokenize, Whirl, WhirlConfig};
///
/// let mut whirl = Whirl::new(2, WhirlConfig::default());
/// for (text, label) in [("Miami, FL", 0), ("Boston, MA", 0),
///                       ("(305) 729 0831", 1), ("(617) 253 1429", 1)] {
///     let tokens = tokenize(text);
///     whirl.add_example(tokens.iter().map(String::as_str), label);
/// }
/// whirl.finalize();
/// let tokens = tokenize("Orlando, FL");
/// let scores = whirl.classify(tokens.iter().map(String::as_str));
/// assert!(scores[0] > scores[1]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Whirl {
    config: WhirlConfig,
    model: TfIdfModel,
    /// The permanent raw document store: every example's token list, in
    /// insertion order. Serialized, so a snapshot can *warm-start*: adding
    /// examples after deserialization re-vectorizes the whole store under
    /// the updated corpus statistics, making incremental training
    /// byte-equal to training from scratch on the concatenated sequence.
    /// Empty in snapshots from builds that stored only frozen vectors —
    /// those still classify but cannot warm-start
    /// (see [`Self::retains_documents`]).
    #[serde(default)]
    docs: Vec<(Vec<String>, usize)>,
    /// Frozen TF/IDF vectors, rebuilt from `docs` by [`Self::finalize`].
    examples: Vec<Example>,
    /// Inverted index: `postings[dim]` lists `(example, weight)` pairs, so
    /// a query only touches examples it shares at least one token with.
    #[serde(skip)]
    postings: std::collections::HashMap<u32, Vec<(u32, f64)>>,
    num_labels: usize,
}

impl Whirl {
    /// Creates an empty classifier for `num_labels` labels.
    pub fn new(num_labels: usize, config: WhirlConfig) -> Self {
        Whirl {
            config,
            model: TfIdfModel::new(),
            docs: Vec::new(),
            examples: Vec::new(),
            postings: std::collections::HashMap::new(),
            num_labels,
        }
    }

    /// Adds one training example. Call [`Self::finalize`] after the last
    /// example and before classifying. Examples may be added again after a
    /// finalize; the next finalize folds them in under the updated corpus
    /// statistics.
    pub fn add_example<'a>(&mut self, tokens: impl IntoIterator<Item = &'a str>, label: usize) {
        debug_assert!(label < self.num_labels, "label out of range");
        let toks: Vec<String> = tokens.into_iter().map(str::to_string).collect();
        self.model.add_document(toks.iter().map(String::as_str));
        self.docs.push((toks, label));
    }

    /// Freezes corpus statistics, computes the stored vectors, and builds
    /// the inverted index. Idempotent. Also call after deserializing a
    /// trained classifier: the index is not serialized and is rebuilt here.
    ///
    /// When new documents were added since the last finalize, *every*
    /// stored vector is recomputed — IDF weights shift with each new
    /// document, so refreezing the whole store is what keeps incremental
    /// training identical to a from-scratch train on the same sequence.
    pub fn finalize(&mut self) {
        let stale = !self.docs.is_empty()
            && (self.examples.len() != self.docs.len() || self.postings.is_empty());
        if stale {
            self.examples.clear();
            self.postings.clear();
            for (tokens, label) in &self.docs {
                let vector = self
                    .model
                    .vector_for_tokens(tokens.iter().map(String::as_str));
                let id = self.examples.len() as u32;
                for &(dim, weight) in vector.entries() {
                    self.postings.entry(dim).or_default().push((id, weight));
                }
                self.examples.push(Example {
                    vector,
                    label: *label,
                });
            }
        } else if self.postings.is_empty() && !self.examples.is_empty() {
            // Vectors-only snapshot (no document store): rebuild the index
            // from the frozen vectors.
            for (id, ex) in self.examples.iter().enumerate() {
                for &(dim, weight) in ex.vector.entries() {
                    self.postings
                        .entry(dim)
                        .or_default()
                        .push((id as u32, weight));
                }
            }
        }
        if lsd_obs::enabled() {
            lsd_obs::gauge_max("tfidf.vocab_size", "", self.model.vocabulary().len() as u64);
            lsd_obs::gauge_max("tfidf.index_dims", "", self.postings.len() as u64);
            lsd_obs::gauge_max("whirl.examples", "", self.examples.len() as u64);
        }
    }

    /// Whether the raw document store is available, i.e. whether this
    /// classifier can accept further examples after being trained (or
    /// deserialized) without corrupting its statistics. False only for
    /// non-empty snapshots from builds that serialized frozen vectors
    /// without the document store.
    pub fn retains_documents(&self) -> bool {
        self.examples.is_empty() || !self.docs.is_empty()
    }

    /// Number of stored examples (including ones not yet finalized).
    pub fn num_examples(&self) -> usize {
        self.docs.len().max(self.examples.len())
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Classifies a token multiset: returns a confidence-score distribution
    /// over labels that sums to 1 (uniform if no neighbour qualifies, e.g.
    /// for an empty store or fully out-of-vocabulary query).
    pub fn classify<'a>(&self, tokens: impl IntoIterator<Item = &'a str>) -> Vec<f64> {
        debug_assert!(
            self.docs.is_empty() || self.examples.len() == self.docs.len(),
            "classify called before finalize"
        );
        let query = self.model.vector_for_tokens(tokens);
        let mut scores = self.label_scores(&query);
        let total: f64 = scores.iter().sum();
        let n = self.num_labels.max(1) as f64;
        if total > 0.0 {
            let t = self.config.temper.clamp(0.0, 1.0);
            for s in &mut scores {
                *s = (1.0 - t) * (*s / total) + t / n;
            }
        } else if self.num_labels > 0 {
            scores = vec![1.0 / n; self.num_labels];
        }
        scores
    }

    /// Raw (unnormalized) per-label neighbour scores for a query vector.
    /// Both query and stored vectors are unit-normalized, so the cosine is
    /// a plain dot product, accumulated through the inverted index.
    fn label_scores(&self, query: &SparseVector) -> Vec<f64> {
        // Accumulate into a dense per-example array rather than a HashMap:
        // hash iteration order varies between map instances, which would make
        // neighbour tie-breaking (and hence scores) differ between otherwise
        // identical queries. Example-id order is stable, and the stable sort
        // below then breaks similarity ties by id.
        let mut dots: Vec<f64> = vec![0.0; self.examples.len()];
        for &(dim, qw) in query.entries() {
            if let Some(posting) = self.postings.get(&dim) {
                for &(id, w) in posting {
                    dots[id as usize] += qw * w;
                }
            }
        }
        let mut sims: Vec<(f64, usize)> = dots
            .into_iter()
            .enumerate()
            .map(|(id, sim)| (sim.clamp(-1.0, 1.0), self.examples[id].label))
            .filter(|&(sim, _)| sim > self.config.min_similarity)
            .collect();
        if lsd_obs::enabled() {
            // One flush per query: every stored example was compared (via the
            // inverted index), and `sims` survived the similarity threshold.
            lsd_obs::counter_add("whirl.queries", "", 1);
            lsd_obs::counter_add(
                "whirl.neighbour_comparisons",
                "",
                self.examples.len() as u64,
            );
            lsd_obs::counter_add("whirl.neighbours_above_threshold", "", sims.len() as u64);
            lsd_obs::gauge_max("whirl.vocab_size", "", self.model.vocabulary().len() as u64);
        }
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        sims.truncate(self.config.max_neighbors);

        let mut scores = vec![0.0; self.num_labels];
        match self.config.combination {
            NeighborCombination::NoisyOr => {
                let mut keep = vec![1.0; self.num_labels];
                for (sim, label) in sims {
                    // Cap a touch below 1 so several exact matches for
                    // different labels cannot all saturate to certainty.
                    keep[label] *= 1.0 - sim.min(0.999);
                }
                for (s, k) in scores.iter_mut().zip(keep) {
                    *s = 1.0 - k;
                }
            }
            NeighborCombination::Max => {
                for (sim, label) in sims {
                    if sim > scores[label] {
                        scores[label] = sim;
                    }
                }
            }
            NeighborCombination::Mean => {
                let mut counts = vec![0u32; self.num_labels];
                for (sim, label) in sims {
                    scores[label] += sim;
                    counts[label] += 1;
                }
                for (s, c) in scores.iter_mut().zip(counts) {
                    if c > 0 {
                        *s /= f64::from(c);
                    }
                }
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    fn trained(combination: NeighborCombination) -> Whirl {
        // Labels: 0 = ADDRESS, 1 = DESCRIPTION, 2 = AGENT-PHONE.
        let mut w = Whirl::new(
            3,
            WhirlConfig {
                combination,
                ..Default::default()
            },
        );
        let data: &[(&str, usize)] = &[
            ("Miami, FL", 0),
            ("Boston, MA", 0),
            ("Seattle, WA", 0),
            ("Portland, OR", 0),
            ("Nice area close to downtown", 1),
            ("Great location fantastic house", 1),
            ("Close to river great yard", 1),
            ("Fantastic house near beach", 1),
            ("(305) 729 0831", 2),
            ("(617) 253 1429", 2),
            ("(206) 753 2605", 2),
            ("(515) 273 4312", 2),
        ];
        for (text, label) in data {
            let toks = tokenize(text);
            w.add_example(toks.iter().map(String::as_str), *label);
        }
        w.finalize();
        w
    }

    fn classify(w: &Whirl, text: &str) -> Vec<f64> {
        let toks = tokenize(text);
        w.classify(toks.iter().map(String::as_str))
    }

    fn argmax(scores: &[f64]) -> usize {
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    #[test]
    fn classifies_each_category() {
        for comb in [
            NeighborCombination::NoisyOr,
            NeighborCombination::Max,
            NeighborCombination::Mean,
        ] {
            let w = trained(comb);
            assert_eq!(argmax(&classify(&w, "Orlando, FL")), 0, "{comb:?}");
            assert_eq!(
                argmax(&classify(&w, "great house close to park")),
                1,
                "{comb:?}"
            );
            assert_eq!(argmax(&classify(&w, "(415) 273 1234")), 2, "{comb:?}");
        }
    }

    #[test]
    fn scores_form_distribution() {
        let w = trained(NeighborCombination::NoisyOr);
        let s = classify(&w, "Kent, WA");
        assert_eq!(s.len(), 3);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn out_of_vocabulary_query_is_uniform() {
        let w = trained(NeighborCombination::NoisyOr);
        let s = classify(&w, "zzz qqq");
        assert!(s.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-9));
    }

    #[test]
    fn empty_classifier_is_uniform() {
        let mut w = Whirl::new(4, WhirlConfig::default());
        w.finalize();
        let s = w.classify(["anything"].iter().copied());
        assert!(s.iter().all(|&x| (x - 0.25).abs() < 1e-9));
    }

    #[test]
    fn exact_duplicate_dominates() {
        let w = trained(NeighborCombination::NoisyOr);
        let s = classify(&w, "(305) 729 0831");
        assert_eq!(argmax(&s), 2);
        assert!(s[2] > 0.6, "exact match should be confident, got {s:?}");
    }

    #[test]
    fn min_similarity_threshold_filters_neighbors() {
        let mut w = Whirl::new(
            2,
            WhirlConfig {
                min_similarity: 0.99,
                ..Default::default()
            },
        );
        w.add_example(["alpha"].iter().copied(), 0);
        w.add_example(["beta"].iter().copied(), 1);
        w.finalize();
        // A weakly-similar query has no neighbour above 0.99: uniform result.
        let s = w.classify(["alpha", "beta", "gamma"].iter().copied());
        assert!((s[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noisy_or_rewards_multiple_agreeing_neighbors() {
        let mut w = Whirl::new(2, WhirlConfig::default());
        for _ in 0..3 {
            w.add_example(["blue", "sky"].iter().copied(), 0);
        }
        w.add_example(["blue", "cheese"].iter().copied(), 1);
        w.finalize();
        let s = w.classify(["blue", "sky"].iter().copied());
        assert!(s[0] > s[1]);
    }

    #[test]
    fn finalize_is_required_before_vectors_exist() {
        let mut w = Whirl::new(2, WhirlConfig::default());
        w.add_example(["x"].iter().copied(), 0);
        assert_eq!(w.num_examples(), 1);
        w.finalize();
        assert_eq!(w.num_examples(), 1);
        w.finalize(); // idempotent
        assert_eq!(w.num_examples(), 1);
    }
}
