//! Static vocabulary pools for the value generators.

/// U.S. cities with their state abbreviations.
pub const CITIES: &[(&str, &str)] = &[
    ("Seattle", "WA"),
    ("Portland", "OR"),
    ("Miami", "FL"),
    ("Boston", "MA"),
    ("Austin", "TX"),
    ("Denver", "CO"),
    ("Chicago", "IL"),
    ("Atlanta", "GA"),
    ("Phoenix", "AZ"),
    ("Dallas", "TX"),
    ("Houston", "TX"),
    ("Orlando", "FL"),
    ("Tampa", "FL"),
    ("Spokane", "WA"),
    ("Tacoma", "WA"),
    ("Eugene", "OR"),
    ("Salem", "OR"),
    ("Bellevue", "WA"),
    ("Kent", "WA"),
    ("Everett", "WA"),
    ("San Jose", "CA"),
    ("Oakland", "CA"),
    ("Fresno", "CA"),
    ("Sacramento", "CA"),
    ("Tucson", "AZ"),
    ("Albuquerque", "NM"),
    ("Omaha", "NE"),
    ("Tulsa", "OK"),
    ("Memphis", "TN"),
    ("Nashville", "TN"),
    ("Charlotte", "NC"),
    ("Raleigh", "NC"),
    ("Columbus", "OH"),
    ("Cleveland", "OH"),
    ("Detroit", "MI"),
    ("Madison", "WI"),
    ("Minneapolis", "MN"),
    ("St. Paul", "MN"),
    ("Kansas City", "MO"),
    ("St. Louis", "MO"),
];

/// County names (subset shared with `lsd-core`'s recognizer database so the
/// recognizer actually fires on generated data).
pub const COUNTIES: &[&str] = &[
    "King",
    "Pierce",
    "Snohomish",
    "Spokane",
    "Clark",
    "Thurston",
    "Kitsap",
    "Yakima",
    "Whatcom",
    "Benton",
    "Skagit",
    "Cowlitz",
    "Multnomah",
    "Clackamas",
    "Lane",
    "Jackson",
    "Deschutes",
    "Cook",
    "DuPage",
    "Will",
    "Orange",
    "Polk",
    "Brevard",
    "Monroe",
    "Madison",
    "Douglas",
    "Lincoln",
];

/// Street names (without the number).
pub const STREETS: &[&str] = &[
    "Maple St",
    "Oak Ave",
    "Pine St",
    "Cedar Ln",
    "Elm St",
    "Birch Rd",
    "Lake View Dr",
    "Sunset Blvd",
    "Hillcrest Ave",
    "Ridge Rd",
    "Park Ave",
    "Main St",
    "2nd Ave",
    "5th St",
    "Broadway",
    "University Way",
    "Greenwood Ave",
    "Rainier Ave",
    "Aurora Ave",
    "Meridian St",
    "Chestnut Ct",
    "Willow Way",
    "Juniper Dr",
    "Magnolia Blvd",
    "Alder St",
];

/// First names for agents, faculty, instructors.
pub const FIRST_NAMES: &[&str] = &[
    "Kate", "Mike", "Jane", "Matt", "Gail", "Sarah", "David", "Laura", "James", "Emily", "Robert",
    "Anna", "Peter", "Susan", "Thomas", "Nancy", "Brian", "Carol", "Kevin", "Diane", "Steven",
    "Linda", "Paul", "Maria", "Alan", "Rachel", "George", "Helen", "Frank", "Julia", "Eric",
    "Wendy",
];

/// Last names for agents, faculty, instructors.
pub const LAST_NAMES: &[&str] = &[
    "Richardson",
    "Smith",
    "Kendall",
    "Murphy",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Wilson",
    "Anderson",
    "Taylor",
    "Thomas",
    "Moore",
    "Martin",
    "Lee",
    "Thompson",
    "White",
    "Harris",
    "Clark",
    "Lewis",
    "Walker",
    "Hall",
    "Young",
    "King",
    "Wright",
    "Lopez",
    "Hill",
    "Scott",
    "Green",
    "Adams",
    "Baker",
    "Nelson",
    "Carter",
];

/// Realtor firm names.
pub const FIRMS: &[&str] = &[
    "MAX Realtors",
    "ACME Homes",
    "Windermere",
    "Coldwell Banker",
    "Century 21",
    "RE/MAX Northwest",
    "John L. Scott",
    "Keller Williams",
    "Redfin Realty",
    "Evergreen Properties",
    "Sound Realty",
    "Pacific Crest Homes",
    "Lakeside Brokers",
    "Summit Real Estate",
    "Harbor View Realty",
];

/// Positive adjectives for house descriptions — the word-frequency signal
/// the paper highlights ("fantastic", "great").
pub const DESC_ADJECTIVES: &[&str] = &[
    "fantastic",
    "great",
    "beautiful",
    "spacious",
    "charming",
    "stunning",
    "cozy",
    "bright",
    "gorgeous",
    "lovely",
    "immaculate",
    "updated",
    "remodeled",
    "sunny",
    "quiet",
    "modern",
    "classic",
    "elegant",
];

/// Nouns/phrases for house descriptions.
pub const DESC_FEATURES: &[&str] = &[
    "yard",
    "view",
    "kitchen",
    "garden",
    "deck",
    "fireplace",
    "basement",
    "garage",
    "neighborhood",
    "location",
    "schools",
    "floor plan",
    "hardwood floors",
    "master suite",
    "backyard",
    "patio",
    "bay windows",
    "vaulted ceilings",
    "walk-in closet",
    "granite counters",
];

/// Trailing phrases for house descriptions.
pub const DESC_CLOSERS: &[&str] = &[
    "close to downtown",
    "near the park",
    "minutes from the beach",
    "close to the river",
    "near great schools",
    "close to shopping",
    "on a quiet street",
    "with easy freeway access",
    "near the university",
    "walking distance to transit",
    "a must see",
    "priced to sell",
    "move-in ready",
    "will not last",
];

/// Architectural styles.
pub const HOUSE_STYLES: &[&str] = &[
    "Victorian",
    "Craftsman",
    "Colonial",
    "Ranch",
    "Tudor",
    "Contemporary",
    "Cape Cod",
    "Bungalow",
    "Split-Level",
    "Townhouse",
    "Mediterranean",
];

/// Heating systems.
pub const HEATING: &[&str] = &[
    "forced air",
    "radiant",
    "heat pump",
    "baseboard",
    "gas furnace",
    "electric",
];

/// Cooling systems.
pub const COOLING: &[&str] = &[
    "central air",
    "window units",
    "none",
    "heat pump",
    "evaporative",
];

/// Roof materials.
pub const ROOFS: &[&str] = &[
    "composition",
    "tile",
    "metal",
    "cedar shake",
    "asphalt shingle",
];

/// Flooring materials.
pub const FLOORING: &[&str] = &[
    "hardwood", "carpet", "tile", "laminate", "vinyl", "bamboo", "concrete",
];

/// School district names.
pub const SCHOOL_DISTRICTS: &[&str] = &[
    "Seattle Public Schools",
    "Lake Washington SD",
    "Bellevue SD",
    "Northshore SD",
    "Portland Public Schools",
    "Beaverton SD",
    "Miami-Dade Schools",
    "Boston Public Schools",
    "Austin ISD",
    "Denver PS",
];

/// Course subject codes.
pub const COURSE_SUBJECTS: &[&str] = &[
    "CSE", "MATH", "PHYS", "CHEM", "BIO", "ENGL", "HIST", "ECON", "PSYCH", "PHIL", "MUSIC", "ART",
    "STAT", "LING", "ASTR", "GEOG", "POLS", "SOC",
];

/// Course title fragments: (topic, level qualifier).
pub const COURSE_TOPICS: &[&str] = &[
    "Data Structures",
    "Calculus",
    "Linear Algebra",
    "Organic Chemistry",
    "World History",
    "Microeconomics",
    "Cognitive Psychology",
    "Operating Systems",
    "Databases",
    "Machine Learning",
    "Genetics",
    "Quantum Mechanics",
    "American Literature",
    "Music Theory",
    "Statistics",
    "Discrete Mathematics",
    "Compilers",
    "Networks",
    "Algorithms",
    "Artificial Intelligence",
    "Thermodynamics",
    "Ethics",
    "Astronomy",
    "Human Geography",
    "Comparative Politics",
    "Social Theory",
];

/// Course title qualifiers.
pub const COURSE_QUALIFIERS: &[&str] = &[
    "Introduction to",
    "Advanced",
    "Topics in",
    "Foundations of",
    "Seminar in",
    "",
];

/// Campus building names.
pub const BUILDINGS: &[&str] = &[
    "Sieg Hall",
    "Guggenheim Hall",
    "Kane Hall",
    "Smith Hall",
    "Loew Hall",
    "Bagley Hall",
    "Johnson Hall",
    "Gowen Hall",
    "Savery Hall",
    "Mary Gates Hall",
    "Thomson Hall",
    "Anderson Hall",
    "Mueller Hall",
    "Wilcox Hall",
];

/// Meeting-day patterns.
pub const DAY_PATTERNS: &[&str] = &["MWF", "TTh", "MW", "Daily", "F", "TThF", "M", "W"];

/// Academic quarters/semesters.
pub const QUARTERS: &[&str] = &[
    "Autumn 2000",
    "Winter 2001",
    "Spring 2001",
    "Fall 2000",
    "Summer 2001",
];

/// Universities for degrees.
pub const UNIVERSITIES: &[&str] = &[
    "University of Washington",
    "Stanford University",
    "MIT",
    "UC Berkeley",
    "Carnegie Mellon University",
    "University of Wisconsin",
    "Cornell University",
    "Princeton University",
    "University of Texas",
    "Georgia Tech",
    "University of Illinois",
    "Caltech",
    "University of Michigan",
    "Brown University",
];

/// Faculty ranks.
pub const FACULTY_RANKS: &[&str] = &[
    "Professor",
    "Associate Professor",
    "Assistant Professor",
    "Senior Lecturer",
    "Lecturer",
    "Research Professor",
    "Professor Emeritus",
];

/// Research areas for faculty profiles.
pub const RESEARCH_AREAS: &[&str] = &[
    "databases",
    "machine learning",
    "computer architecture",
    "networking",
    "operating systems",
    "programming languages",
    "computational biology",
    "human-computer interaction",
    "computer graphics",
    "theory of computation",
    "artificial intelligence",
    "computer vision",
    "distributed systems",
    "natural language processing",
    "robotics",
    "security and privacy",
    "data mining",
    "software engineering",
    "information retrieval",
];

/// Degrees.
pub const DEGREES: &[&str] = &["Ph.D.", "M.S.", "B.S.", "M.Eng.", "Sc.D."];

/// Dirty values occasionally injected (Section 6: data contains "unknown",
/// "unk" and the like; only trivial cleaning is applied).
pub const DIRTY_VALUES: &[&str] = &["unknown", "n/a", "unk", "-", "TBA"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_reasonably_sized() {
        assert!(CITIES.len() >= 30);
        assert!(FIRST_NAMES.len() >= 25);
        assert!(LAST_NAMES.len() >= 25);
        assert!(DESC_ADJECTIVES.len() >= 12);
        assert!(COURSE_TOPICS.len() >= 20);
        assert!(RESEARCH_AREAS.len() >= 15);
    }

    #[test]
    fn counties_overlap_recognizer_database() {
        // The county recognizer lowercases before lookup; every generated
        // county must be recognizable.
        for c in COUNTIES {
            assert!(
                lsd_core_counties_contains(&c.to_lowercase()),
                "{c} not in recognizer database"
            );
        }
    }

    /// Mirror of the recognizer membership check, duplicated here to avoid
    /// a dependency cycle (datagen must not depend on core).
    fn lsd_core_counties_contains(name: &str) -> bool {
        // Keep in sync with lsd-core/src/counties.rs.
        const SAMPLE: &[&str] = &[
            "king",
            "pierce",
            "snohomish",
            "spokane",
            "clark",
            "thurston",
            "kitsap",
            "yakima",
            "whatcom",
            "benton",
            "skagit",
            "cowlitz",
            "multnomah",
            "clackamas",
            "lane",
            "jackson",
            "deschutes",
            "cook",
            "dupage",
            "will",
            "orange",
            "polk",
            "brevard",
            "monroe",
            "madison",
            "douglas",
            "lincoln",
        ];
        SAMPLE.contains(&name)
    }
}
