//! The domain-specification DSL.
//!
//! A domain is described once, declaratively: a table of *concepts* (one
//! per semantic field, each with its mediated tag, its value generator and
//! its per-source tag names), a mediated schema tree, and five source
//! schema trees over those concepts. The [`crate::engine`] turns a spec
//! into DTDs, listings and ground-truth mappings.

use crate::values::ValueKind;
use lsd_constraints::DomainConstraint;
use lsd_xml::{ContentModel, Dtd, ElementDecl, Occurrence};

/// Index into [`DomainSpec::concepts`].
pub type ConceptId = usize;

/// One semantic field (or group) of a domain.
#[derive(Debug, Clone)]
pub struct ConceptDef {
    /// The mediated-schema tag this concept maps to; `None` for
    /// unmatchable (OTHER) concepts that exist only in sources.
    pub mediated: Option<&'static str>,
    /// The value generator for leaf concepts; `None` for groups.
    pub kind: Option<ValueKind>,
    /// Tag name in each of the five sources. An empty string means "same
    /// as source 0's name".
    pub names: [&'static str; 5],
    /// Per-listing probability that the field is absent (missing data).
    pub optional: f64,
}

impl ConceptDef {
    /// The tag name of this concept in source `s`.
    pub fn name_in(&self, s: usize) -> &'static str {
        let n = self.names[s];
        if n.is_empty() {
            self.names[0]
        } else {
            n
        }
    }
}

/// A node in a schema tree (mediated or per-source).
#[derive(Debug, Clone)]
pub enum TreeNode {
    /// A leaf field.
    Leaf(ConceptId),
    /// A group element containing nested nodes.
    Group(ConceptId, Vec<TreeNode>),
}

impl TreeNode {
    /// The concept at this node.
    pub fn concept(&self) -> ConceptId {
        match self {
            TreeNode::Leaf(c) | TreeNode::Group(c, _) => *c,
        }
    }

    /// All concepts in the subtree, preorder.
    pub fn concepts(&self) -> Vec<ConceptId> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<ConceptId>) {
        out.push(self.concept());
        if let TreeNode::Group(_, children) = self {
            for c in children {
                c.collect(out);
            }
        }
    }
}

/// One source's schema: a display name plus its tree.
#[derive(Debug, Clone)]
pub struct SourceStructure {
    /// Display name, e.g. `homeseekers.com`.
    pub name: &'static str,
    /// The schema tree; the root must be a [`TreeNode::Group`].
    pub root: TreeNode,
}

/// A complete domain specification.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Display name (Table 3 row).
    pub name: &'static str,
    /// The concept table.
    pub concepts: Vec<ConceptDef>,
    /// The mediated schema tree (over mediated tag names).
    pub mediated_root: TreeNode,
    /// The five sources.
    pub sources: Vec<SourceStructure>,
    /// The domain constraints, phrased over mediated tags (Table 1).
    pub constraints: Vec<DomainConstraint>,
    /// Symmetric synonym pairs for the name matcher.
    pub synonyms: Vec<(&'static str, &'static str)>,
}

impl DomainSpec {
    /// Builds the mediated DTD from the mediated tree.
    pub fn mediated_dtd(&self) -> Dtd {
        self.build_dtd(&self.mediated_root, |c| {
            self.concepts[c]
                .mediated
                .expect("mediated tree references an OTHER concept")
        })
    }

    /// Builds one source's DTD from its tree.
    pub fn source_dtd(&self, source: usize) -> Dtd {
        self.build_dtd(&self.sources[source].root, |c| {
            self.concepts[c].name_in(source)
        })
    }

    /// Shared DTD construction: one declaration per tree node, groups as
    /// ordered sequences with `?` for optional members.
    fn build_dtd(&self, root: &TreeNode, name_of: impl Fn(ConceptId) -> &'static str) -> Dtd {
        let mut decls = Vec::new();
        self.declare(root, &name_of, &mut decls);
        Dtd::new(decls).expect("domain spec produced duplicate tag names")
    }

    fn declare(
        &self,
        node: &TreeNode,
        name_of: &impl Fn(ConceptId) -> &'static str,
        decls: &mut Vec<ElementDecl>,
    ) {
        match node {
            TreeNode::Leaf(c) => decls.push(ElementDecl::new(name_of(*c), ContentModel::Pcdata)),
            TreeNode::Group(c, children) => {
                let parts: Vec<ContentModel> = children
                    .iter()
                    .map(|child| {
                        let occ = if self.concepts[child.concept()].optional > 0.0 {
                            Occurrence::Optional
                        } else {
                            Occurrence::One
                        };
                        ContentModel::Name(name_of(child.concept()).to_string(), occ)
                    })
                    .collect();
                decls.push(ElementDecl::new(
                    name_of(*c),
                    ContentModel::Seq(parts, Occurrence::One),
                ));
                for child in children {
                    self.declare(child, name_of, decls);
                }
            }
        }
    }

    /// Sanity checks a spec: five sources, groups have children, leaves
    /// have generators, groups don't, names are unique per schema.
    pub fn validate(&self) -> Result<(), String> {
        if self.sources.len() != 5 {
            return Err(format!(
                "{}: expected 5 sources, got {}",
                self.name,
                self.sources.len()
            ));
        }
        let check_tree = |root: &TreeNode, label: &str| -> Result<(), String> {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                let c = node.concept();
                if c >= self.concepts.len() {
                    return Err(format!("{label}: concept id {c} out of range"));
                }
                match node {
                    TreeNode::Leaf(_) => {
                        if self.concepts[c].kind.is_none() {
                            return Err(format!(
                                "{label}: leaf concept {c} has no value generator"
                            ));
                        }
                    }
                    TreeNode::Group(_, children) => {
                        if children.is_empty() {
                            return Err(format!("{label}: group concept {c} has no children"));
                        }
                        if self.concepts[c].kind.is_some() {
                            return Err(format!("{label}: group concept {c} has a generator"));
                        }
                        stack.extend(children.iter());
                    }
                }
            }
            Ok(())
        };
        check_tree(&self.mediated_root, "mediated")?;
        for c in self.mediated_root.concepts() {
            if self.concepts[c].mediated.is_none() {
                return Err(format!("mediated tree uses OTHER concept {c}"));
            }
        }
        for (s, src) in self.sources.iter().enumerate() {
            check_tree(&src.root, src.name)?;
            let concepts = src.root.concepts();
            let mut names: Vec<&str> = concepts
                .iter()
                .map(|&c| self.concepts[c].name_in(s))
                .collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            if names.len() != before {
                return Err(format!("{}: duplicate tag names", src.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> DomainSpec {
        let concepts = vec![
            ConceptDef {
                mediated: Some("HOUSE"),
                kind: None,
                names: ["house", "listing", "", "", ""],
                optional: 0.0,
            },
            ConceptDef {
                mediated: Some("PRICE"),
                kind: Some(ValueKind::Price),
                names: ["price", "listed-price", "", "", ""],
                optional: 0.0,
            },
            ConceptDef {
                mediated: Some("ADDRESS"),
                kind: Some(ValueKind::CityState),
                names: ["location", "house-addr", "", "", ""],
                optional: 0.3,
            },
            ConceptDef {
                mediated: None,
                kind: Some(ValueKind::Url),
                names: ["link", "url", "", "", ""],
                optional: 0.0,
            },
        ];
        let src = |name, root| SourceStructure { name, root };
        DomainSpec {
            name: "Tiny",
            concepts,
            mediated_root: TreeNode::Group(0, vec![TreeNode::Leaf(1), TreeNode::Leaf(2)]),
            sources: vec![
                src(
                    "s0",
                    TreeNode::Group(
                        0,
                        vec![TreeNode::Leaf(1), TreeNode::Leaf(2), TreeNode::Leaf(3)],
                    ),
                ),
                src(
                    "s1",
                    TreeNode::Group(0, vec![TreeNode::Leaf(2), TreeNode::Leaf(1)]),
                ),
                src("s2", TreeNode::Group(0, vec![TreeNode::Leaf(1)])),
                src(
                    "s3",
                    TreeNode::Group(0, vec![TreeNode::Leaf(1), TreeNode::Leaf(2)]),
                ),
                src(
                    "s4",
                    TreeNode::Group(0, vec![TreeNode::Leaf(1), TreeNode::Leaf(3)]),
                ),
            ],
            constraints: vec![],
            synonyms: vec![("location", "address")],
        }
    }

    #[test]
    fn mediated_dtd_structure() {
        let spec = tiny_spec();
        spec.validate().unwrap();
        let dtd = spec.mediated_dtd();
        assert_eq!(dtd.len(), 3);
        assert_eq!(dtd.root_name().unwrap(), "HOUSE");
        // ADDRESS is optional (optional > 0).
        let house = dtd.decl("HOUSE").unwrap();
        assert_eq!(house.content.to_dtd_syntax(), "(PRICE, ADDRESS?)");
    }

    #[test]
    fn source_dtd_uses_per_source_names() {
        let spec = tiny_spec();
        let s1 = spec.source_dtd(1);
        assert_eq!(s1.root_name().unwrap(), "listing");
        assert!(s1.decl("house-addr").is_some());
        assert!(s1.decl("listed-price").is_some());
        // Source 2 reuses source-0 names via the "" convention.
        let s2 = spec.source_dtd(2);
        assert_eq!(s2.root_name().unwrap(), "house");
        assert!(s2.decl("price").is_some());
    }

    #[test]
    fn validate_catches_bad_specs() {
        let mut spec = tiny_spec();
        spec.sources.pop();
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.mediated_root = TreeNode::Group(0, vec![TreeNode::Leaf(3)]); // OTHER in mediated
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.sources[0].root = TreeNode::Group(0, vec![TreeNode::Leaf(0)]); // group as leaf
        assert!(spec.validate().is_err());
    }

    #[test]
    fn tree_concepts_preorder() {
        let spec = tiny_spec();
        assert_eq!(spec.sources[0].root.concepts(), vec![0, 1, 2, 3]);
    }
}
