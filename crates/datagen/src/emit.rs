//! Foreign-format emitters: serialize a [`GeneratedSource`] as XML, JSON,
//! CSV or SQL, matching what the corresponding `lsd-core` reader accepts.
//!
//! The generator produces element trees; real sources arrive as files.
//! These emitters close that gap so the multi-format ingestion path can be
//! exercised end to end: emit a generated source in each serialization,
//! read it back through the matching [`SourceReader`], and compare the
//! instance columns. XML and JSON preserve the listing trees exactly; CSV
//! and SQL are lossy only in the documented ways (CSV flattens nesting,
//! SQL re-orders leaf children before nested tables), so per-tag *leaf*
//! columns — what the learners actually consume — survive all four.
//!
//! | Emitter | Pairs with | Fidelity |
//! |---|---|---|
//! | [`emit_xml`] | `XmlReader::new` | exact: DTD + listings round-trip |
//! | [`emit_json`] | `JsonReader` | exact listing trees (schema is re-synthesized) |
//! | [`emit_csv`] | `CsvReader` | leaf columns; nesting flattened |
//! | [`emit_sql`] | `SqlReader` | leaf columns; leaves sort before subtables |
//!
//! [`SourceReader`]: ../lsd_core/trait.SourceReader.html

use crate::GeneratedSource;
use lsd_xml::{write_element, Element, Node};
use serde::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

/// Serializes as native XML: the DTD in `<!ELEMENT ...>` syntax plus one
/// compact document per listing. Feed both to `XmlReader::new` for an
/// exact round-trip.
pub fn emit_xml(source: &GeneratedSource) -> (String, Vec<String>) {
    let dtd = source.dtd.to_dtd_syntax();
    let listings = source.listings.iter().map(write_element).collect();
    (dtd, listings)
}

/// Serializes as a *DTD-less* XML container document: one `<corpus>` root
/// wrapping every listing, with no DOCTYPE and no schema. This is what a
/// scraped source looks like — feed it to `XmlReader::from_document` (or
/// `POST /v1/match` with `Content-Type: application/xml`) to exercise the
/// `lsd-infer` schema-inference path end to end.
pub fn emit_bare_xml(source: &GeneratedSource) -> String {
    let mut out = String::from("<corpus>");
    for listing in &source.listings {
        out.push_str(&write_element(listing));
    }
    out.push_str("</corpus>");
    out
}

/// Serializes as a JSON array with one object per listing. Nesting is
/// preserved (groups become objects, leaves become string values) and keys
/// keep document order, so `JsonReader` with the listing root as its
/// record tag reconstructs the exact listing trees.
pub fn emit_json(source: &GeneratedSource) -> String {
    let listings: Vec<Value> = source.listings.iter().map(element_to_value).collect();
    serde_json::to_string(&Value::Seq(listings)).unwrap_or_else(|_| "[]".to_string())
}

fn element_to_value(element: &Element) -> Value {
    // An empty group must stay an (empty) object: a `""` leaf would read
    // back with a text node the original never had.
    if element.is_leaf() && !element.children.is_empty() {
        return Value::Str(raw_text(element));
    }
    let mut entries: Vec<(String, Value)> = Vec::new();
    for child in element.child_elements() {
        let value = element_to_value(child);
        match entries.iter_mut().find(|(k, _)| *k == child.name) {
            // A repeated tag becomes an array (the reader maps arrays back
            // to repeated elements). Datagen emits each tag at most once
            // per parent, so this is purely defensive.
            Some((_, Value::Seq(items))) => items.push(value),
            Some((_, existing)) => {
                let first = std::mem::replace(existing, Value::Null);
                *existing = Value::Seq(vec![first, value]);
            }
            None => entries.push((child.name.clone(), value)),
        }
    }
    Value::Map(entries)
}

/// The concatenated raw text runs of an element, without the whitespace
/// normalization of [`Element::direct_text`] — emitters must not alter the
/// generated values.
fn raw_text(element: &Element) -> String {
    element
        .children
        .iter()
        .filter_map(Node::as_text)
        .collect::<Vec<_>>()
        .concat()
}

/// Tags that never contain child elements anywhere in the listings — the
/// value-bearing columns that flat formats can represent.
fn leaf_tags(listings: &[Element]) -> BTreeSet<String> {
    let mut groups: BTreeSet<String> = BTreeSet::new();
    let mut all: BTreeSet<String> = BTreeSet::new();
    for listing in listings {
        listing.visit(&mut |e| {
            all.insert(e.name.clone());
            if !e.is_leaf() {
                groups.insert(e.name.clone());
            }
        });
    }
    all.difference(&groups).cloned().collect()
}

/// Per-tag leaf columns: for every leaf tag, its text occurrences in
/// listing order. This is the invariant the lossy emitters preserve — the
/// round-trip harness compares these across serializations.
pub fn leaf_columns(listings: &[Element]) -> BTreeMap<String, Vec<String>> {
    let leaves = leaf_tags(listings);
    let mut columns: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for listing in listings {
        listing.visit(&mut |e| {
            if leaves.contains(&e.name) {
                columns.entry(e.name.clone()).or_default().push(raw_text(e));
            }
        });
    }
    columns
}

/// Serializes as CSV with a header row: one column per leaf tag in
/// first-occurrence document order, one row per listing. Nesting is
/// flattened; absent optional leaves become empty cells.
///
/// # Errors
/// If a listing contains a leaf tag twice (one cell cannot hold two
/// values) or a generated value is empty (an empty cell reads back as
/// *absent*, which would corrupt the round-trip).
pub fn emit_csv(source: &GeneratedSource) -> Result<String, String> {
    let leaves = leaf_tags(&source.listings);
    // Header order: first occurrence across listings in document order.
    let mut header: Vec<String> = Vec::new();
    for listing in &source.listings {
        listing.visit(&mut |e| {
            if leaves.contains(&e.name) && !header.contains(&e.name) {
                header.push(e.name.clone());
            }
        });
    }
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| csv_field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for listing in &source.listings {
        let mut cells: BTreeMap<&str, String> = BTreeMap::new();
        let mut problem: Option<String> = None;
        listing.visit(&mut |e| {
            if leaves.contains(&e.name) {
                let text = raw_text(e);
                if text.is_empty() {
                    problem.get_or_insert(format!("leaf \"{}\" has empty text", e.name));
                } else if cells.insert(e.name.as_str(), text).is_some() {
                    problem.get_or_insert(format!("leaf \"{}\" repeats in one listing", e.name));
                }
            }
        });
        if let Some(problem) = problem {
            return Err(format!("cannot emit CSV: {problem}"));
        }
        let row: Vec<String> = header
            .iter()
            .map(|h| csv_field(cells.get(h.as_str()).map_or("", String::as_str)))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    Ok(out)
}

/// Quotes a CSV field when it contains a delimiter, quote or line break.
fn csv_field(text: &str) -> String {
    if text.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", text.replace('"', "\"\""))
    } else {
        text.to_string()
    }
}

/// One table per non-leaf tag during SQL emission.
struct SqlTable {
    /// Parent table name; `None` for the listing root.
    parent: Option<String>,
    /// Leaf-child column tags in first-occurrence order.
    columns: Vec<String>,
    /// Whether any other table references this one (needs a primary key).
    referenced: bool,
    /// Synthetic primary-key column name (chosen to avoid data columns).
    pk: String,
    /// Synthetic foreign-key column name.
    fk: String,
    /// `(id, parent id, cells)` per occurrence, in listing order.
    rows: Vec<(usize, Option<usize>, BTreeMap<String, String>)>,
}

/// Serializes as SQL DDL + DML: one `CREATE TABLE` per non-leaf tag (leaf
/// children become `TEXT` columns, nested groups become child tables with
/// a `REFERENCES` edge) and `INSERT`s carrying the listings. Synthetic
/// key columns are chosen to avoid the data columns; `SqlReader` drops
/// them again as structural.
///
/// # Errors
/// If a tag nests under two different parents (tables would collide), a
/// group repeats within its parent, or a leaf tag doubles as a group tag
/// elsewhere — shapes relational DDL cannot express as one tree.
pub fn emit_sql(source: &GeneratedSource) -> Result<String, String> {
    let leaves = leaf_tags(&source.listings);
    // Discover tables and rows in one traversal per listing.
    let mut order: Vec<String> = Vec::new();
    let mut tables: BTreeMap<String, SqlTable> = BTreeMap::new();
    let mut next_id: BTreeMap<String, usize> = BTreeMap::new();
    for listing in &source.listings {
        collect_sql_rows(
            listing,
            None,
            None,
            &leaves,
            &mut order,
            &mut tables,
            &mut next_id,
        )?;
    }

    // Pick synthetic key names that no data column uses.
    let names: Vec<String> = order.clone();
    for name in &names {
        let parent = tables[name].parent.clone();
        let taken: BTreeSet<String> = tables[name].columns.iter().cloned().collect();
        let pk = free_name("id", &taken);
        let fk = parent
            .as_ref()
            .map(|p| free_name(&format!("{p}_id"), &taken))
            .unwrap_or_default();
        if let Some(t) = tables.get_mut(name) {
            t.pk = pk;
            t.fk = fk;
        }
    }
    for name in &names {
        if let Some(parent) = tables[name].parent.clone() {
            if let Some(t) = tables.get_mut(&parent) {
                t.referenced = true;
            }
        }
    }

    let mut out = String::new();
    for name in &order {
        let t = &tables[name];
        let mut defs: Vec<String> = Vec::new();
        if t.referenced {
            defs.push(format!("{} INTEGER PRIMARY KEY", sql_ident(&t.pk)));
        }
        if let Some(parent) = &t.parent {
            let p = &tables[parent];
            defs.push(format!(
                "{} INTEGER REFERENCES {}({})",
                sql_ident(&t.fk),
                sql_ident(parent),
                sql_ident(&p.pk)
            ));
        }
        for col in &t.columns {
            defs.push(format!("{} TEXT", sql_ident(col)));
        }
        let _ = writeln!(out, "CREATE TABLE {} (", sql_ident(name));
        let _ = writeln!(out, "  {}", defs.join(",\n  "));
        out.push_str(");\n");
    }
    for name in &order {
        let t = &tables[name];
        if t.rows.is_empty() {
            continue;
        }
        let mut cols: Vec<String> = Vec::new();
        if t.referenced {
            cols.push(t.pk.clone());
        }
        if t.parent.is_some() {
            cols.push(t.fk.clone());
        }
        cols.extend(t.columns.iter().cloned());
        let col_list: Vec<String> = cols.iter().map(|c| sql_ident(c)).collect();
        let _ = writeln!(
            out,
            "INSERT INTO {} ({}) VALUES",
            sql_ident(name),
            col_list.join(", ")
        );
        let tuples: Vec<String> = t
            .rows
            .iter()
            .map(|(id, parent_id, cells)| {
                let mut values: Vec<String> = Vec::new();
                if t.referenced {
                    values.push(id.to_string());
                }
                if t.parent.is_some() {
                    values.push(parent_id.map_or_else(|| "NULL".to_string(), |p| p.to_string()));
                }
                for col in &t.columns {
                    values.push(cells.get(col).map_or_else(
                        || "NULL".to_string(),
                        |v| format!("'{}'", v.replace('\'', "''")),
                    ));
                }
                format!("  ({})", values.join(", "))
            })
            .collect();
        out.push_str(&tuples.join(",\n"));
        out.push_str(";\n");
    }
    Ok(out)
}

/// Walks one group occurrence: registers its table, claims a row id, and
/// recurses into nested groups.
fn collect_sql_rows(
    element: &Element,
    parent: Option<&str>,
    parent_id: Option<usize>,
    leaves: &BTreeSet<String>,
    order: &mut Vec<String>,
    tables: &mut BTreeMap<String, SqlTable>,
    next_id: &mut BTreeMap<String, usize>,
) -> Result<(), String> {
    if leaves.contains(&element.name) {
        return Err(format!(
            "cannot emit SQL: tag \"{}\" is both a leaf and a group",
            element.name
        ));
    }
    let table = tables.entry(element.name.clone()).or_insert_with(|| {
        order.push(element.name.clone());
        SqlTable {
            parent: parent.map(str::to_string),
            columns: Vec::new(),
            referenced: false,
            pk: String::new(),
            fk: String::new(),
            rows: Vec::new(),
        }
    });
    if table.parent.as_deref() != parent {
        return Err(format!(
            "cannot emit SQL: tag \"{}\" nests under both {:?} and {:?}",
            element.name, table.parent, parent
        ));
    }
    let id = {
        let counter = next_id.entry(element.name.clone()).or_insert(0);
        *counter += 1;
        *counter
    };
    let mut cells: BTreeMap<String, String> = BTreeMap::new();
    let mut groups: Vec<&Element> = Vec::new();
    for child in element.child_elements() {
        if leaves.contains(&child.name) {
            if cells.insert(child.name.clone(), raw_text(child)).is_some() {
                return Err(format!(
                    "cannot emit SQL: leaf \"{}\" repeats under \"{}\"",
                    child.name, element.name
                ));
            }
            let table = tables.get_mut(&element.name).expect("just inserted");
            if !table.columns.contains(&child.name) {
                table.columns.push(child.name.clone());
            }
        } else {
            groups.push(child);
        }
    }
    let table = tables.get_mut(&element.name).expect("just inserted");
    table.rows.push((id, parent_id, cells));
    for child in groups {
        collect_sql_rows(
            child,
            Some(&element.name),
            Some(id),
            leaves,
            order,
            tables,
            next_id,
        )?;
    }
    Ok(())
}

/// `base`, or `base` with underscores appended until it avoids `taken`.
fn free_name(base: &str, taken: &BTreeSet<String>) -> String {
    let mut name = base.to_string();
    while taken.contains(&name) {
        name.push('_');
    }
    name
}

/// Double-quotes an identifier so exotic tag names survive the SQL lexer.
fn sql_ident(name: &str) -> String {
    format!("\"{}\"", name.replace('"', ""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_domain, DomainId};
    use lsd_core::{CsvReader, JsonReader, SourceReader, SqlReader, XmlReader};

    /// A small generated source per domain, plus its listing root tag.
    fn sources() -> Vec<(GeneratedSource, String)> {
        DomainId::ALL
            .iter()
            .map(|&id| {
                let source = generate_domain(id, 6, 11).sources.swap_remove(0);
                let root = source.listings[0].name.clone();
                (source, root)
            })
            .collect()
    }

    #[test]
    fn xml_round_trips_dtd_and_listings_exactly() {
        for (source, _) in sources() {
            let (dtd, listings) = emit_xml(&source);
            let contents = XmlReader::new(dtd, listings).read().expect("xml reads");
            // A one-part `Seq` reparses as a bare `Name`; the rendered
            // syntax is the canonical form, so compare that.
            assert_eq!(
                contents.dtd.to_dtd_syntax(),
                source.dtd.to_dtd_syntax(),
                "{}",
                source.name
            );
            assert_eq!(contents.listings, source.listings, "{}", source.name);
        }
    }

    #[test]
    fn json_round_trips_listing_trees_exactly() {
        for (source, root) in sources() {
            let json = emit_json(&source);
            let contents = JsonReader::new(json)
                .with_record_tag(&root)
                .read()
                .expect("json reads");
            assert_eq!(contents.listings, source.listings, "{}", source.name);
        }
    }

    #[test]
    fn csv_preserves_leaf_columns() {
        for (source, root) in sources() {
            let csv = emit_csv(&source).expect("csv emits");
            let contents = CsvReader::new(csv)
                .with_record_tag(&root)
                .read()
                .expect("csv reads");
            assert_eq!(
                leaf_columns(&contents.listings),
                leaf_columns(&source.listings),
                "{}",
                source.name
            );
            assert_eq!(contents.listings.len(), source.listings.len());
        }
    }

    #[test]
    fn sql_preserves_leaf_columns_and_root_tag() {
        for (source, root) in sources() {
            let sql = emit_sql(&source).expect("sql emits");
            let contents = SqlReader::new(sql).read().expect("sql reads");
            assert_eq!(contents.listings.len(), source.listings.len());
            assert_eq!(contents.listings[0].name, root, "{}", source.name);
            assert_eq!(
                leaf_columns(&contents.listings),
                leaf_columns(&source.listings),
                "{}",
                source.name
            );
        }
    }

    #[test]
    fn repeated_json_keys_become_arrays() {
        let mut listing = Element::new("r");
        listing.push_child(Element::text_leaf("x", "a"));
        listing.push_child(Element::text_leaf("x", "b"));
        let value = element_to_value(&listing);
        let Value::Map(entries) = value else {
            panic!("expected a map");
        };
        assert_eq!(
            entries,
            vec![(
                "x".to_string(),
                Value::Seq(vec![
                    Value::Str("a".to_string()),
                    Value::Str("b".to_string())
                ])
            )]
        );
    }

    #[test]
    fn csv_rejects_repeated_leaves() {
        let mut source = generate_domain(DomainId::RealEstate1, 2, 3)
            .sources
            .swap_remove(0);
        let repeat = Element::text_leaf("twice", "a");
        source.listings[0].push_child(repeat.clone());
        source.listings[0].push_child(repeat);
        let e = emit_csv(&source).expect_err("rejects");
        assert!(e.contains("repeats"), "{e}");
    }
}
