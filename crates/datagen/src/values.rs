//! Value generators for leaf fields.
//!
//! Each [`ValueKind`] produces realistic values for one semantic concept.
//! Generators take a `style` (the source index, 0–4) so that formatting
//! conventions vary *between* sources but stay consistent *within* one —
//! exactly the situation LSD faces: the same concept, formatted differently
//! by every site.

use crate::vocab;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Per-listing coherence context. Real listings are internally consistent —
/// the city, state and ZIP agree, and the listing id is unique — and the
/// domain constraints (`FunctionalDependency ZIP → STATE`, `IsKey
/// LISTING-ID`) rely on exactly that. Independent sampling would refute
/// them spuriously (random ZIPs collide across different states).
#[derive(Debug, Clone, Copy)]
pub struct ListingContext {
    /// Index into [`vocab::CITIES`] for this listing's location.
    pub city: usize,
    /// The listing's ordinal within its source (drives unique ids).
    pub ordinal: usize,
}

impl ListingContext {
    /// Samples a context for listing number `ordinal`.
    pub fn sample(ordinal: usize, rng: &mut ChaCha8Rng) -> Self {
        ListingContext {
            city: rng.gen_range(0..vocab::CITIES.len()),
            ordinal,
        }
    }

    fn city_name(&self) -> &'static str {
        vocab::CITIES[self.city].0
    }

    fn state(&self) -> &'static str {
        vocab::CITIES[self.city].1
    }

    /// A ZIP whose 3-digit prefix is unique to the city, so equal ZIPs
    /// always belong to the same city (and therefore state).
    fn zip(&self, rng: &mut ChaCha8Rng) -> String {
        format!("{:03}{:02}", 101 + self.city, rng.gen_range(0..100))
    }

    /// A listing id unique within the source.
    fn listing_id(&self, style: usize) -> String {
        format!("{}", 100_000 + style * 100_000 + self.ordinal)
    }
}

/// The semantic kinds of leaf values the four domains use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    // ---- real estate ----
    /// "Seattle, WA" (style varies the city/state separator).
    CityState,
    /// City name only.
    City,
    /// State abbreviation.
    State,
    /// "4512 Maple St".
    StreetAddress,
    /// Five-digit ZIP code.
    Zip,
    /// County name (recognizer target).
    County,
    /// Sale price, e.g. "$250,000".
    Price,
    /// Monthly rent, e.g. "$1,450/mo".
    MonthlyRent,
    /// Phone number (style varies the grouping).
    Phone,
    /// "Kate Richardson".
    PersonName,
    /// First name only.
    FirstName,
    /// Last name only.
    LastName,
    /// Realtor firm.
    FirmName,
    /// Long free-text house description (the word-frequency signal).
    Description,
    /// Short remark.
    ShortRemark,
    /// Bedroom count, 1–6.
    Beds,
    /// Bathroom count, may be fractional.
    Baths,
    /// Square footage.
    SqFt,
    /// Lot size in acres.
    LotAcres,
    /// Year built, 1900–2000.
    YearBuilt,
    /// Garage spaces, 0–3.
    GarageSpaces,
    /// Unique listing/house id (key column).
    ListingId,
    /// MLS number, e.g. "MLS#2241087".
    MlsNumber,
    /// Architectural style.
    HouseStyle,
    /// Heating system.
    Heating,
    /// Cooling system.
    Cooling,
    /// Roof material.
    Roof,
    /// Flooring material.
    Flooring,
    /// "yes"/"no" flag (waterfront, fireplace, …).
    YesNo,
    /// Annual taxes, e.g. "$3,420".
    Taxes,
    /// HOA fee, e.g. "$210/mo".
    HoaFee,
    /// School district name.
    SchoolDistrict,
    /// URL.
    Url,
    /// Email address.
    Email,
    /// Open-house date, e.g. "06/14/2001".
    DateValue,
    /// Listing status: "active", "pending", "sold", …
    ListingStatus,
    /// Small count (stories, days on market scaled down), 1–30.
    SmallCount,
    // ---- time schedule ----
    /// "CSE142" (the Section 7 format-learner example).
    CourseCode,
    /// "Introduction to Data Structures".
    CourseTitle,
    /// Section letter/number, "A"/"2".
    Section,
    /// Credits, 1–5.
    Credits,
    /// Meeting days, "MWF".
    Days,
    /// "10:30-11:20".
    TimeRange,
    /// Campus building.
    Building,
    /// Room number.
    Room,
    /// Instructor name.
    Instructor,
    /// Current enrollment count.
    Enrollment,
    /// Enrollment limit.
    EnrollLimit,
    /// Academic term.
    Quarter,
    /// SLN / registration code, 4–5 digits.
    RegistrationCode,
    // ---- faculty ----
    /// Faculty rank.
    FacultyRank,
    /// Degree, e.g. "Ph.D.".
    Degree,
    /// Degree-granting university.
    University,
    /// Degree year.
    DegreeYear,
    /// Comma-separated research interests.
    ResearchInterests,
    /// Office location, "Sieg Hall 226".
    OfficeLocation,
    /// Short biography text.
    Bio,
}

/// Fraction of values replaced by a dirty placeholder, matching the paper's
/// observation that sources contain "unknown"/"unk" noise.
const DIRTY_RATE: f64 = 0.02;

/// Generates one value of the given kind under a source's formatting style
/// and the listing's coherence context.
pub fn generate_value(
    kind: ValueKind,
    style: usize,
    ctx: &ListingContext,
    rng: &mut ChaCha8Rng,
) -> String {
    if matches!(
        kind,
        ValueKind::Description | ValueKind::ShortRemark | ValueKind::Bio
    ) {
        // Free-text fields don't go dirty; the others occasionally do.
    } else if rng.gen_bool(DIRTY_RATE) {
        return pick(vocab::DIRTY_VALUES, rng).to_string();
    }
    match kind {
        ValueKind::CityState => {
            let (city, state) = (ctx.city_name(), ctx.state());
            match style % 3 {
                0 => format!("{city}, {state}"),
                1 => format!("{city} {state}"),
                _ => city.to_string(),
            }
        }
        ValueKind::City => ctx.city_name().to_string(),
        ValueKind::State => ctx.state().to_string(),
        ValueKind::StreetAddress => {
            format!("{} {}", rng.gen_range(100..9900), pick(vocab::STREETS, rng))
        }
        ValueKind::Zip => ctx.zip(rng),
        ValueKind::County => {
            let county = pick(vocab::COUNTIES, rng);
            if style.is_multiple_of(2) {
                county.to_string()
            } else {
                format!("{county} County")
            }
        }
        ValueKind::Price => {
            let price = rng.gen_range(60..1200) * 1000;
            match style % 3 {
                0 => format!("${}", with_commas(price)),
                1 => format!("$ {}", with_commas(price)),
                _ => with_commas(price),
            }
        }
        ValueKind::MonthlyRent => format!("${}/mo", with_commas(rng.gen_range(600..4500))),
        ValueKind::Phone => {
            let a = rng.gen_range(200..990);
            let b = rng.gen_range(200..990);
            let c = rng.gen_range(1000..9999);
            match style % 3 {
                0 => format!("({a}) {b} {c}"),
                1 => format!("{a}-{b}-{c}"),
                _ => format!("{a}.{b}.{c}"),
            }
        }
        ValueKind::PersonName => {
            format!(
                "{} {}",
                pick(vocab::FIRST_NAMES, rng),
                pick(vocab::LAST_NAMES, rng)
            )
        }
        ValueKind::FirstName => pick(vocab::FIRST_NAMES, rng).to_string(),
        ValueKind::LastName => pick(vocab::LAST_NAMES, rng).to_string(),
        ValueKind::FirmName => pick(vocab::FIRMS, rng).to_string(),
        ValueKind::Description => {
            let a1 = pick(vocab::DESC_ADJECTIVES, rng);
            let f1 = pick(vocab::DESC_FEATURES, rng);
            let a2 = pick(vocab::DESC_ADJECTIVES, rng);
            let f2 = pick(vocab::DESC_FEATURES, rng);
            let closer = pick(vocab::DESC_CLOSERS, rng);
            let mut text = format!("{} {f1} with {a2} {f2}, {closer}", capitalize(a1));
            // Real listing descriptions bleed other fields' vocabulary —
            // the paper's own Figure 7 example is "…contact Gail Murphy at
            // MAX Realtors". This cross-field contamination is what makes
            // flat bags of words confuse DESCRIPTION with CONTACT-INFO.
            if rng.gen_bool(0.4) {
                let first = pick(vocab::FIRST_NAMES, rng);
                let last = pick(vocab::LAST_NAMES, rng);
                let firm = pick(vocab::FIRMS, rng);
                text.push_str(&format!(". Contact {first} {last} at {firm}"));
            }
            if rng.gen_bool(0.3) {
                let (city, _) = *pick(vocab::CITIES, rng);
                text.push_str(&format!(". One of the best streets in {city}"));
            }
            if rng.gen_bool(0.2) {
                text.push_str(&format!(
                    ". {} {}, built {}",
                    rng.gen_range(1..=5),
                    if rng.gen_bool(0.5) {
                        "bedrooms"
                    } else {
                        "baths"
                    },
                    rng.gen_range(1900..=2000)
                ));
            }
            text
        }
        ValueKind::ShortRemark => {
            let adjective = *pick(vocab::DESC_ADJECTIVES, rng);
            format!(
                "{} {}",
                capitalize(adjective),
                pick(vocab::DESC_FEATURES, rng)
            )
        }
        ValueKind::Beds => rng.gen_range(1..=6).to_string(),
        ValueKind::Baths => {
            if rng.gen_bool(0.3) {
                format!("{}.5", rng.gen_range(1..=3))
            } else {
                rng.gen_range(1..=4).to_string()
            }
        }
        ValueKind::SqFt => with_commas(rng.gen_range(600..6000)),
        ValueKind::LotAcres => format!("{:.2}", rng.gen_range(0.08..3.0)),
        ValueKind::YearBuilt => rng.gen_range(1900..=2000).to_string(),
        ValueKind::GarageSpaces => rng.gen_range(0..=3).to_string(),
        ValueKind::ListingId => ctx.listing_id(style),
        ValueKind::MlsNumber => format!("MLS#{}", rng.gen_range(1_000_000..9_999_999)),
        ValueKind::HouseStyle => pick(vocab::HOUSE_STYLES, rng).to_string(),
        ValueKind::Heating => pick(vocab::HEATING, rng).to_string(),
        ValueKind::Cooling => pick(vocab::COOLING, rng).to_string(),
        ValueKind::Roof => pick(vocab::ROOFS, rng).to_string(),
        ValueKind::Flooring => pick(vocab::FLOORING, rng).to_string(),
        ValueKind::YesNo => if rng.gen_bool(0.3) { "yes" } else { "no" }.to_string(),
        ValueKind::Taxes => format!("${}", with_commas(rng.gen_range(800..12000))),
        ValueKind::HoaFee => format!("${}/mo", rng.gen_range(50..600)),
        ValueKind::SchoolDistrict => pick(vocab::SCHOOL_DISTRICTS, rng).to_string(),
        ValueKind::Url => format!(
            "http://www.{}homes{}.com/listing{}",
            pick(vocab::CITIES, rng)
                .0
                .to_lowercase()
                .replace([' ', '.'], ""),
            rng.gen_range(1..90),
            rng.gen_range(100..9999)
        ),
        ValueKind::Email => format!(
            "{}.{}@{}realty.com",
            pick(vocab::FIRST_NAMES, rng).to_lowercase(),
            pick(vocab::LAST_NAMES, rng)
                .to_lowercase()
                .replace('\'', ""),
            pick(vocab::CITIES, rng)
                .0
                .to_lowercase()
                .replace([' ', '.'], "")
        ),
        ValueKind::DateValue => format!(
            "{:02}/{:02}/200{}",
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
            rng.gen_range(0..=1)
        ),
        ValueKind::ListingStatus => {
            const STATUSES: &[&str] = &["active", "pending", "sold", "contingent", "new listing"];
            STATUSES[rng.gen_range(0..STATUSES.len())].to_string()
        }
        ValueKind::SmallCount => rng.gen_range(1..=30).to_string(),
        ValueKind::CourseCode => {
            let subject = pick(vocab::COURSE_SUBJECTS, rng);
            let number = rng.gen_range(100..600);
            match style % 2 {
                0 => format!("{subject}{number}"),
                _ => format!("{subject} {number}"),
            }
        }
        ValueKind::CourseTitle => {
            let qual = pick(vocab::COURSE_QUALIFIERS, rng);
            let topic = pick(vocab::COURSE_TOPICS, rng);
            let title = if qual.is_empty() {
                topic.to_string()
            } else {
                format!("{qual} {topic}")
            };
            // Some schedules prefix the catalog code to the title,
            // bleeding CODE-shaped tokens into TITLE.
            if rng.gen_bool(0.25) {
                format!(
                    "{} {} {title}",
                    pick(vocab::COURSE_SUBJECTS, rng),
                    rng.gen_range(100..600)
                )
            } else {
                title
            }
        }
        ValueKind::Section => {
            if style.is_multiple_of(2) {
                char::from(b'A' + rng.gen_range(0..6) as u8).to_string()
            } else {
                rng.gen_range(1..=6).to_string()
            }
        }
        ValueKind::Credits => rng.gen_range(1..=5).to_string(),
        ValueKind::Days => pick(vocab::DAY_PATTERNS, rng).to_string(),
        ValueKind::TimeRange => {
            let hour = rng.gen_range(8..17);
            let min = [0, 30][rng.gen_range(0..2)];
            let end_min = (min + 50) % 60;
            let end_hour = hour + if min + 50 >= 60 { 1 } else { 0 };
            match style % 2 {
                0 => format!("{hour}:{min:02}-{end_hour}:{end_min:02}"),
                _ => format!("{hour}:{min:02} - {end_hour}:{end_min:02}"),
            }
        }
        ValueKind::Building => pick(vocab::BUILDINGS, rng).to_string(),
        ValueKind::Room => rng.gen_range(100..450).to_string(),
        ValueKind::Instructor => {
            let last = pick(vocab::LAST_NAMES, rng);
            match style % 3 {
                0 => format!("{} {last}", pick(vocab::FIRST_NAMES, rng)),
                1 => format!("{last}, {}.", &pick(vocab::FIRST_NAMES, rng)[..1]),
                _ => last.to_string(),
            }
        }
        ValueKind::Enrollment => rng.gen_range(5..200).to_string(),
        ValueKind::EnrollLimit => rng.gen_range(20..300).to_string(),
        ValueKind::Quarter => pick(vocab::QUARTERS, rng).to_string(),
        ValueKind::RegistrationCode => rng.gen_range(10000..99999).to_string(),
        ValueKind::FacultyRank => pick(vocab::FACULTY_RANKS, rng).to_string(),
        ValueKind::Degree => pick(vocab::DEGREES, rng).to_string(),
        ValueKind::University => pick(vocab::UNIVERSITIES, rng).to_string(),
        ValueKind::DegreeYear => rng.gen_range(1965..=1999).to_string(),
        ValueKind::ResearchInterests => {
            let mut areas: Vec<&str> = Vec::new();
            for _ in 0..rng.gen_range(1..=3) {
                let a = pick(vocab::RESEARCH_AREAS, rng);
                if !areas.contains(a) {
                    areas.push(a);
                }
            }
            areas.join(", ")
        }
        ValueKind::OfficeLocation => {
            format!(
                "{} {}",
                pick(vocab::BUILDINGS, rng),
                rng.gen_range(100..450)
            )
        }
        ValueKind::Bio => {
            let area = pick(vocab::RESEARCH_AREAS, rng);
            let area2 = pick(vocab::RESEARCH_AREAS, rng);
            let uni = pick(vocab::UNIVERSITIES, rng);
            let mut text = format!(
                "Works on {area} and {area2}. Received the Ph.D. from {uni} \
                 and teaches courses on {}",
                pick(vocab::COURSE_TOPICS, rng).to_lowercase()
            );
            // Bios name collaborators and years, bleeding NAME- and
            // DEGREE-YEAR-flavoured tokens into free text.
            if rng.gen_bool(0.4) {
                text.push_str(&format!(
                    ". Joint projects with {} {}",
                    pick(vocab::FIRST_NAMES, rng),
                    pick(vocab::LAST_NAMES, rng)
                ));
            }
            if rng.gen_bool(0.3) {
                text.push_str(&format!(
                    ". On the faculty since {}",
                    rng.gen_range(1970..=2000)
                ));
            }
            text
        }
    }
}

fn pick<'a, T>(pool: &'a [T], rng: &mut ChaCha8Rng) -> &'a T {
    &pool[rng.gen_range(0..pool.len())]
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Formats an integer with thousands separators: 250000 → "250,000".
fn with_commas(n: u32) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Generates many clean samples of a kind (retrying past dirty values).
    fn samples(kind: ValueKind, style: usize, n: usize) -> Vec<String> {
        let mut r = rng(kind as u64 + style as u64 * 1000);
        let mut out = Vec::new();
        while out.len() < n {
            let ctx = ListingContext::sample(out.len(), &mut r);
            let v = generate_value(kind, style, &ctx, &mut r);
            if !vocab::DIRTY_VALUES.contains(&v.as_str()) {
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn commas() {
        assert_eq!(with_commas(1), "1");
        assert_eq!(with_commas(999), "999");
        assert_eq!(with_commas(1000), "1,000");
        assert_eq!(with_commas(250000), "250,000");
        assert_eq!(with_commas(1100000), "1,100,000");
    }

    #[test]
    fn price_formats_vary_by_style() {
        assert!(samples(ValueKind::Price, 0, 5)
            .iter()
            .all(|v| v.starts_with('$')));
        assert!(samples(ValueKind::Price, 2, 5)
            .iter()
            .all(|v| !v.contains('$')));
    }

    #[test]
    fn phone_styles_are_consistent_within_source() {
        assert!(samples(ValueKind::Phone, 0, 10)
            .iter()
            .all(|v| v.starts_with('(')));
        assert!(samples(ValueKind::Phone, 1, 10)
            .iter()
            .all(|v| v.contains('-')));
        assert!(samples(ValueKind::Phone, 2, 10)
            .iter()
            .all(|v| v.contains('.')));
    }

    #[test]
    fn course_codes_match_section7_shape() {
        for v in samples(ValueKind::CourseCode, 0, 10) {
            assert!(
                v.chars().take_while(char::is_ascii_uppercase).count() >= 2,
                "{v}"
            );
            assert!(v.chars().any(|c| c.is_ascii_digit()), "{v}");
        }
    }

    #[test]
    fn descriptions_use_indicative_vocabulary() {
        let all = samples(ValueKind::Description, 0, 30)
            .join(" ")
            .to_lowercase();
        let hits = vocab::DESC_ADJECTIVES
            .iter()
            .filter(|a| all.contains(**a))
            .count();
        assert!(
            hits >= 5,
            "descriptions should reuse the adjective pool ({hits})"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        let ctx = ListingContext {
            city: 3,
            ordinal: 5,
        };
        for kind in [ValueKind::Price, ValueKind::Phone, ValueKind::Description] {
            assert_eq!(
                generate_value(kind, 0, &ctx, &mut r1),
                generate_value(kind, 0, &ctx, &mut r2)
            );
        }
    }

    #[test]
    fn dirty_values_appear_at_low_rate() {
        let mut r = rng(11);
        let n = 2000;
        let dirty = (0..n)
            .filter(|i| {
                let ctx = ListingContext::sample(*i, &mut r);
                let v = generate_value(ValueKind::Zip, 0, &ctx, &mut r);
                vocab::DIRTY_VALUES.contains(&v.as_str())
            })
            .count();
        assert!(dirty > 0, "some dirt expected");
        assert!(
            (dirty as f64) < n as f64 * 0.06,
            "dirt rate too high: {dirty}/{n}"
        );
    }

    #[test]
    fn yes_no_flags() {
        for v in samples(ValueKind::YesNo, 0, 20) {
            assert!(v == "yes" || v == "no");
        }
    }

    #[test]
    fn listing_ids_are_unique_per_source() {
        let ids = samples(ValueKind::ListingId, 0, 200);
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), ids.len(), "listing ids must be a key");
    }

    #[test]
    fn zip_determines_state() {
        // The FD the Real Estate II constraints assert: equal ZIPs imply
        // equal states.
        let mut r = rng(13);
        let mut zip_state: std::collections::HashMap<String, &str> =
            std::collections::HashMap::new();
        for i in 0..500 {
            let ctx = ListingContext::sample(i, &mut r);
            let zip = generate_value(ValueKind::Zip, 0, &ctx, &mut r);
            if vocab::DIRTY_VALUES.contains(&zip.as_str()) {
                continue;
            }
            let state = vocab::CITIES[ctx.city].1;
            if let Some(prev) = zip_state.insert(zip.clone(), state) {
                assert_eq!(prev, state, "zip {zip} maps to two states");
            }
        }
    }

    #[test]
    fn city_state_and_zip_cohere_within_listing() {
        let mut r = rng(17);
        for i in 0..50 {
            let ctx = ListingContext::sample(i, &mut r);
            let city = generate_value(ValueKind::City, 0, &ctx, &mut r);
            let state = generate_value(ValueKind::State, 0, &ctx, &mut r);
            if vocab::DIRTY_VALUES.contains(&city.as_str())
                || vocab::DIRTY_VALUES.contains(&state.as_str())
            {
                continue;
            }
            let expected = vocab::CITIES[ctx.city];
            assert_eq!(city, expected.0);
            assert_eq!(state, expected.1);
        }
    }
}
