//! Real Estate II (Table 3, row 4): houses for sale, large mediated schema.
//!
//! Mediated schema: 66 tags, 13 non-leaf, depth 4 — the domain where the
//! XML learner shows its largest gains ("sources in the last domain have
//! many non-leaf tags (13), giving the XML learner more room"). Sources
//! have 33–48 tags, 11–13 non-leaf, depth 4, 100% matchable. All five keep
//! most of the group skeleton but carry different leaf subsets, so the
//! deep agent/office/contact structure is exactly what must be told apart.

use crate::domains::{group, leaf, with_blanket_frequency, with_blanket_nesting};
use crate::spec::{ConceptDef, DomainSpec, SourceStructure, TreeNode};
use crate::values::ValueKind as V;
use lsd_constraints::{DomainConstraint, Predicate};

use TreeNode::{Group, Leaf};

/// Concept indices, named for readability of the tree builders.
mod c {
    pub const LISTING: usize = 0;
    pub const HOUSE: usize = 1;
    pub const BASIC: usize = 2;
    // basic leaves 3..=10
    pub const INTERIOR: usize = 11;
    // interior leaves 12..=20
    pub const EXTERIOR: usize = 21;
    // exterior leaves 22..=30
    pub const ADDRESS: usize = 31;
    // address leaves 32..=38
    pub const FINANCIAL: usize = 39;
    pub const PRICING: usize = 40;
    // pricing leaves 41..=45
    pub const LISTING_INFO: usize = 46;
    // listing-info leaves 47..=51
    pub const CONTACT: usize = 52;
    pub const AGENT: usize = 53;
    // agent leaves 54..=56
    pub const OFFICE: usize = 57;
    // office leaves 58..=60
    pub const REMARKS: usize = 61;
    // remarks leaves 62..=65
}

fn concepts() -> Vec<ConceptDef> {
    vec![
        /* 0 */
        group(
            "LISTING",
            [
                "listing",
                "property",
                "home-for-sale",
                "re-listing",
                "house-record",
            ],
        ),
        /* 1 */
        group(
            "HOUSE",
            [
                "house",
                "residence",
                "building-info",
                "structure",
                "dwelling",
            ],
        ),
        /* 2 */
        group(
            "BASIC",
            ["basic", "basics", "main-facts", "key-facts", "general"],
        ),
        /* 3 */
        leaf(
            "BEDS",
            V::Beds,
            ["beds", "bedrooms", "num-beds", "br", "bed-count"],
            0.0,
        ),
        /* 4 */
        leaf(
            "BATHS",
            V::Baths,
            ["baths", "bathrooms", "num-baths", "ba", "bath-count"],
            0.0,
        ),
        /* 5 */
        leaf(
            "HALF-BATHS",
            V::GarageSpaces,
            [
                "half-baths",
                "powder-rooms",
                "half-bath-count",
                "hba",
                "partial-baths",
            ],
            0.2,
        ),
        /* 6 */
        leaf(
            "SQFT",
            V::SqFt,
            ["sqft", "square-feet", "living-area", "size", "floor-area"],
            0.05,
        ),
        /* 7 */
        leaf(
            "YEAR-BUILT",
            V::YearBuilt,
            [
                "year-built",
                "built",
                "yr-built",
                "construction-year",
                "vintage",
            ],
            0.1,
        ),
        /* 8 */
        leaf(
            "STYLE",
            V::HouseStyle,
            [
                "style",
                "house-style",
                "architecture",
                "bldg-style",
                "home-type",
            ],
            0.1,
        ),
        /* 9 */
        leaf(
            "STORIES",
            V::GarageSpaces,
            ["stories", "levels", "floors", "num-stories", "story-count"],
            0.1,
        ),
        /* 10 */
        leaf(
            "GARAGE",
            V::GarageSpaces,
            [
                "garage",
                "garage-spaces",
                "parking",
                "car-spaces",
                "garage-size",
            ],
            0.1,
        ),
        /* 11 */
        group(
            "INTERIOR",
            [
                "interior",
                "inside",
                "interior-features",
                "indoors",
                "interior-info",
            ],
        ),
        /* 12 */
        leaf(
            "FLOORING",
            V::Flooring,
            [
                "flooring",
                "floors-type",
                "floor-covering",
                "floor-material",
                "floor-finish",
            ],
            0.1,
        ),
        /* 13 */
        leaf(
            "FIREPLACE",
            V::YesNo,
            [
                "fireplace",
                "has-fireplace",
                "fireplaces",
                "frplc",
                "fire-place",
            ],
            0.1,
        ),
        /* 14 */
        leaf(
            "BASEMENT",
            V::YesNo,
            ["basement", "has-basement", "bsmt", "lower-level", "cellar"],
            0.1,
        ),
        /* 15 */
        leaf(
            "APPLIANCES",
            V::ShortRemark,
            [
                "appliances",
                "included-appliances",
                "appl",
                "equipment",
                "kitchen-appliances",
            ],
            0.2,
        ),
        /* 16 */
        leaf(
            "HEATING",
            V::Heating,
            [
                "heating",
                "heat",
                "heating-system",
                "heat-type",
                "heat-source",
            ],
            0.1,
        ),
        /* 17 */
        leaf(
            "COOLING",
            V::Cooling,
            [
                "cooling",
                "air-conditioning",
                "cooling-system",
                "ac",
                "air-cond",
            ],
            0.15,
        ),
        /* 18 */
        leaf(
            "ROOMS",
            V::Beds,
            [
                "rooms",
                "total-rooms",
                "room-count",
                "num-rooms",
                "rm-count",
            ],
            0.1,
        ),
        /* 19 */
        leaf(
            "LAUNDRY",
            V::YesNo,
            [
                "laundry",
                "laundry-room",
                "utility-room",
                "washer-dryer",
                "laundry-hookups",
            ],
            0.2,
        ),
        /* 20 */
        leaf(
            "CONDITION",
            V::ShortRemark,
            [
                "condition",
                "property-condition",
                "state-of-repair",
                "cond",
                "upkeep",
            ],
            0.2,
        ),
        /* 21 */
        group(
            "EXTERIOR",
            [
                "exterior",
                "outside",
                "exterior-features",
                "outdoors",
                "exterior-info",
            ],
        ),
        /* 22 */
        leaf(
            "ROOF",
            V::Roof,
            ["roof", "roof-type", "roofing", "roof-material", "roof-kind"],
            0.1,
        ),
        /* 23 */
        leaf(
            "SIDING",
            V::Flooring,
            [
                "siding",
                "exterior-finish",
                "cladding",
                "facade",
                "outer-finish",
            ],
            0.15,
        ),
        /* 24 */
        leaf(
            "LOT-ACRES",
            V::LotAcres,
            ["lot-acres", "lot-size", "acreage", "lot", "land-area"],
            0.1,
        ),
        /* 25 */
        leaf(
            "POOL",
            V::YesNo,
            ["pool", "has-pool", "swimming-pool", "pool-yn", "pool-flag"],
            0.1,
        ),
        /* 26 */
        leaf(
            "WATERFRONT",
            V::YesNo,
            [
                "waterfront",
                "water-front",
                "on-water",
                "waterfront-yn",
                "water-access",
            ],
            0.1,
        ),
        /* 27 */
        leaf(
            "VIEW",
            V::YesNo,
            ["view", "has-view", "scenic-view", "view-yn", "vista"],
            0.1,
        ),
        /* 28 */
        leaf(
            "FENCE",
            V::YesNo,
            ["fence", "fenced", "fenced-yard", "fence-yn", "fencing"],
            0.2,
        ),
        /* 29 */
        leaf(
            "DECK",
            V::YesNo,
            ["deck", "has-deck", "deck-yn", "decking", "deck-flag"],
            0.2,
        ),
        /* 30 */
        leaf(
            "PATIO",
            V::YesNo,
            ["patio", "has-patio", "patio-yn", "terrace", "patio-flag"],
            0.2,
        ),
        /* 31 */
        group(
            "ADDRESS",
            ["address", "location", "where", "property-address", "situs"],
        ),
        /* 32 */
        leaf(
            "STREET",
            V::StreetAddress,
            [
                "street",
                "street-address",
                "addr-line",
                "address1",
                "street-addr",
            ],
            0.0,
        ),
        /* 33 */
        leaf(
            "CITY",
            V::City,
            ["city", "municipality", "town", "city-name", "locale"],
            0.0,
        ),
        /* 34 */
        leaf(
            "STATE",
            V::State,
            ["state", "st", "state-code", "province", "state-abbr"],
            0.0,
        ),
        /* 35 */
        leaf(
            "ZIP",
            V::Zip,
            ["zip", "zipcode", "postal-code", "zip5", "zip-code"],
            0.05,
        ),
        /* 36 */
        leaf(
            "COUNTY",
            V::County,
            ["county", "county-name", "parish", "cnty", "county-area"],
            0.1,
        ),
        /* 37 */
        leaf(
            "SCHOOL-DISTRICT",
            V::SchoolDistrict,
            [
                "school-district",
                "schools",
                "district",
                "school-dist",
                "sd",
            ],
            0.15,
        ),
        /* 38 */
        leaf(
            "NEIGHBORHOOD",
            V::City,
            [
                "neighborhood",
                "area",
                "subdivision",
                "community",
                "district-name",
            ],
            0.15,
        ),
        /* 39 */
        group(
            "FINANCIAL",
            [
                "financial",
                "money-matters",
                "financials",
                "cost-info",
                "economics",
            ],
        ),
        /* 40 */
        group(
            "PRICING",
            [
                "pricing",
                "price-info",
                "cost-details",
                "price-data",
                "asking",
            ],
        ),
        /* 41 */
        leaf(
            "PRICE",
            V::Price,
            [
                "price",
                "list-price",
                "asking-price",
                "current-price",
                "offered-at",
            ],
            0.0,
        ),
        /* 42 */
        leaf(
            "TAXES",
            V::Taxes,
            [
                "taxes",
                "annual-taxes",
                "property-tax",
                "tax-amount",
                "yearly-taxes",
            ],
            0.1,
        ),
        /* 43 */
        leaf(
            "HOA-FEE",
            V::HoaFee,
            [
                "hoa-fee",
                "hoa",
                "association-fee",
                "hoa-dues",
                "monthly-dues",
            ],
            0.3,
        ),
        /* 44 */
        leaf(
            "PRICE-PER-SQFT",
            V::Taxes,
            [
                "price-per-sqft",
                "per-sqft",
                "unit-price",
                "psf",
                "sqft-price",
            ],
            0.2,
        ),
        /* 45 */
        leaf(
            "ASSESSMENT",
            V::Taxes,
            [
                "assessment",
                "assessed-value",
                "tax-assessment",
                "assessed",
                "valuation",
            ],
            0.2,
        ),
        /* 46 */
        group(
            "LISTING-INFO",
            [
                "listing-info",
                "listing-details",
                "listing-facts",
                "listing-data",
                "sale-info",
            ],
        ),
        /* 47 */
        leaf(
            "LISTING-ID",
            V::ListingId,
            ["listing-id", "id", "property-id", "ref-no", "record-id"],
            0.0,
        ),
        /* 48 */
        leaf(
            "MLS",
            V::MlsNumber,
            ["mls", "mls-number", "mls-num", "mls-id", "mls-code"],
            0.05,
        ),
        /* 49 */
        leaf(
            "STATUS",
            V::ListingStatus,
            [
                "status",
                "listing-status",
                "sale-status",
                "market-status",
                "state-of-sale",
            ],
            0.05,
        ),
        /* 50 */
        leaf(
            "DATE-LISTED",
            V::DateValue,
            [
                "date-listed",
                "listed-on",
                "list-date",
                "posted",
                "entry-date",
            ],
            0.1,
        ),
        /* 51 */
        leaf(
            "DAYS-ON-MARKET",
            V::SmallCount,
            [
                "days-on-market",
                "dom",
                "market-days",
                "days-listed",
                "time-on-market",
            ],
            0.15,
        ),
        /* 52 */
        group(
            "CONTACT",
            [
                "contact",
                "contact-info",
                "who-to-call",
                "contacts",
                "inquiry",
            ],
        ),
        /* 53 */
        group(
            "AGENT",
            [
                "agent",
                "agent-info",
                "listing-agent",
                "realtor",
                "sales-agent",
            ],
        ),
        /* 54 */
        leaf(
            "AGENT-NAME",
            V::PersonName,
            [
                "agent-name",
                "name",
                "realtor-name",
                "agent-full-name",
                "rep-name",
            ],
            0.0,
        ),
        /* 55 */
        leaf(
            "AGENT-PHONE",
            V::Phone,
            [
                "agent-phone",
                "phone",
                "realtor-phone",
                "cell",
                "direct-line",
            ],
            0.0,
        ),
        /* 56 */
        leaf(
            "AGENT-EMAIL",
            V::Email,
            [
                "agent-email",
                "email",
                "realtor-email",
                "e-mail",
                "contact-email",
            ],
            0.1,
        ),
        /* 57 */
        group(
            "OFFICE",
            [
                "office",
                "office-info",
                "brokerage",
                "firm",
                "listing-office",
            ],
        ),
        /* 58 */
        leaf(
            "OFFICE-NAME",
            V::FirmName,
            [
                "office-name",
                "brokerage-name",
                "firm-name",
                "company",
                "broker",
            ],
            0.0,
        ),
        /* 59 */
        leaf(
            "OFFICE-PHONE",
            V::Phone,
            [
                "office-phone",
                "main-phone",
                "firm-phone",
                "office-tel",
                "front-desk",
            ],
            0.1,
        ),
        /* 60 */
        leaf(
            "OFFICE-ADDRESS",
            V::StreetAddress,
            [
                "office-address",
                "office-addr",
                "firm-address",
                "office-street",
                "branch-address",
            ],
            0.15,
        ),
        /* 61 */
        group(
            "REMARKS",
            ["remarks", "comments", "notes", "descriptions", "narrative"],
        ),
        /* 62 */
        leaf(
            "DESCRIPTION",
            V::Description,
            [
                "description",
                "public-remarks",
                "marketing-remarks",
                "desc",
                "property-description",
            ],
            0.0,
        ),
        /* 63 */
        leaf(
            "DIRECTIONS",
            V::ShortRemark,
            [
                "directions",
                "driving-directions",
                "how-to-get-there",
                "dirs",
                "access-notes",
            ],
            0.2,
        ),
        /* 64 */
        leaf(
            "SHOWING-NOTES",
            V::ShortRemark,
            [
                "showing-notes",
                "showing-instructions",
                "appointment-notes",
                "showing",
                "viewing-notes",
            ],
            0.2,
        ),
        /* 65 */
        leaf(
            "OPEN-HOUSE",
            V::DateValue,
            [
                "open-house",
                "open-house-date",
                "oh-date",
                "open-on",
                "next-open-house",
            ],
            0.3,
        ),
    ]
}

/// Leaf subsets per group for one source.
struct Plan {
    name: &'static str,
    basic: &'static [usize],
    interior: &'static [usize],
    exterior: &'static [usize],
    address: &'static [usize],
    pricing: &'static [usize],
    listing_info: &'static [usize],
    agent: &'static [usize],
    office: &'static [usize],
    remarks: &'static [usize],
    /// Flatten the HOUSE super-group: basic/interior/exterior attach to
    /// the root (drops HOUSE, −1 non-leaf).
    flatten_house: bool,
    /// Flatten the FINANCIAL super-group (drops FINANCIAL, −1 non-leaf).
    flatten_financial: bool,
    /// Flatten the CONTACT super-group (drops CONTACT, −1 non-leaf).
    flatten_contact: bool,
}

fn build_source(plan: &Plan) -> SourceStructure {
    let leaves = |ids: &[usize]| ids.iter().map(|&i| Leaf(i)).collect::<Vec<_>>();
    let house_parts = vec![
        Group(c::BASIC, leaves(plan.basic)),
        Group(c::INTERIOR, leaves(plan.interior)),
        Group(c::EXTERIOR, leaves(plan.exterior)),
    ];
    let financial_parts = vec![
        Group(c::PRICING, leaves(plan.pricing)),
        Group(c::LISTING_INFO, leaves(plan.listing_info)),
    ];
    let contact_parts = vec![
        Group(c::AGENT, leaves(plan.agent)),
        Group(c::OFFICE, leaves(plan.office)),
    ];
    let mut children = Vec::new();
    if plan.flatten_house {
        children.extend(house_parts);
    } else {
        children.push(Group(c::HOUSE, house_parts));
    }
    children.push(Group(c::ADDRESS, leaves(plan.address)));
    if plan.flatten_financial {
        children.extend(financial_parts);
    } else {
        children.push(Group(c::FINANCIAL, financial_parts));
    }
    if plan.flatten_contact {
        children.extend(contact_parts);
    } else {
        children.push(Group(c::CONTACT, contact_parts));
    }
    children.push(Group(c::REMARKS, leaves(plan.remarks)));
    SourceStructure {
        name: plan.name,
        root: Group(c::LISTING, children),
    }
}

/// Builds the Real Estate II specification.
pub fn spec() -> DomainSpec {
    let mediated_root = build_source(&Plan {
        name: "mediated",
        basic: &[3, 4, 5, 6, 7, 8, 9, 10],
        interior: &[12, 13, 14, 15, 16, 17, 18, 19, 20],
        exterior: &[22, 23, 24, 25, 26, 27, 28, 29, 30],
        address: &[32, 33, 34, 35, 36, 37, 38],
        pricing: &[41, 42, 43, 44, 45],
        listing_info: &[47, 48, 49, 50, 51],
        agent: &[54, 55, 56],
        office: &[58, 59, 60],
        remarks: &[62, 63, 64, 65],
        flatten_house: false,
        flatten_financial: false,
        flatten_contact: false,
    })
    .root;

    let sources = vec![
        // Rich mirror: 13 non-leaf + 35 leaves = 48 tags.
        build_source(&Plan {
            name: "homefinder.com",
            basic: &[3, 4, 5, 6, 7, 8],
            interior: &[12, 13, 16, 17],
            exterior: &[22, 24, 26],
            address: &[32, 33, 34, 35, 36, 37],
            pricing: &[41, 42, 43],
            listing_info: &[47, 48, 49, 50],
            agent: &[54, 55, 56],
            office: &[58, 59, 60],
            remarks: &[62, 63, 65],
            flatten_house: false,
            flatten_financial: false,
            flatten_contact: false,
        }),
        // Flattened house: 12 non-leaf + 28 leaves = 40 tags.
        build_source(&Plan {
            name: "usa-homes.com",
            basic: &[3, 4, 6, 7, 8],
            interior: &[12, 13, 16, 17],
            exterior: &[22, 24, 25],
            address: &[32, 33, 34, 35, 36],
            pricing: &[41, 42, 43],
            listing_info: &[47, 49],
            agent: &[54, 55],
            office: &[58, 59],
            remarks: &[62, 63],
            flatten_house: true,
            flatten_financial: false,
            flatten_contact: false,
        }),
        // Leanest: 11 non-leaf + 22 leaves = 33 tags.
        build_source(&Plan {
            name: "propertyline.com",
            basic: &[3, 4, 6, 7],
            interior: &[12, 16],
            exterior: &[22, 24],
            address: &[32, 33, 34, 35],
            pricing: &[41, 42],
            listing_info: &[47, 49],
            agent: &[54, 55],
            office: &[58, 59],
            remarks: &[62, 64],
            flatten_house: true,
            flatten_financial: true,
            flatten_contact: false,
        }),
        // Full skeleton, mid-size: 13 non-leaf + 25 leaves = 38 tags.
        build_source(&Plan {
            name: "realtyweb.com",
            basic: &[3, 4, 6, 8],
            interior: &[13, 16, 17],
            exterior: &[24, 26, 27],
            address: &[32, 33, 34, 35],
            pricing: &[41, 43],
            listing_info: &[47, 48, 50],
            agent: &[54, 55],
            office: &[58, 60],
            remarks: &[62, 64],
            flatten_house: false,
            flatten_financial: false,
            flatten_contact: false,
        }),
        // Flattened contact: 12 non-leaf + 30 leaves = 42 tags.
        build_source(&Plan {
            name: "houseweb.com",
            basic: &[3, 4, 5, 6, 7],
            interior: &[12, 13, 15, 16],
            exterior: &[22, 23, 24],
            address: &[32, 33, 34, 35, 37],
            pricing: &[41, 42, 44],
            listing_info: &[47, 48, 51],
            agent: &[54, 55, 56],
            office: &[58, 59],
            remarks: &[62, 65],
            flatten_house: false,
            flatten_financial: false,
            flatten_contact: true,
        }),
    ];

    let h = DomainConstraint::hard;
    let constraints = vec![
        h(Predicate::ExactlyOne {
            label: "LISTING".into(),
        }),
        h(Predicate::ExactlyOne {
            label: "PRICE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "BEDS".into(),
        }),
        h(Predicate::AtMostOne {
            label: "BATHS".into(),
        }),
        h(Predicate::AtMostOne {
            label: "SQFT".into(),
        }),
        h(Predicate::AtMostOne {
            label: "STREET".into(),
        }),
        h(Predicate::AtMostOne {
            label: "CITY".into(),
        }),
        h(Predicate::AtMostOne {
            label: "ZIP".into(),
        }),
        h(Predicate::AtMostOne {
            label: "AGENT-NAME".into(),
        }),
        h(Predicate::AtMostOne {
            label: "AGENT-PHONE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "OFFICE-NAME".into(),
        }),
        h(Predicate::AtMostOne {
            label: "DESCRIPTION".into(),
        }),
        h(Predicate::AtMostOne {
            label: "LISTING-ID".into(),
        }),
        h(Predicate::AtMostOne {
            label: "AGENT".into(),
        }),
        h(Predicate::AtMostOne {
            label: "OFFICE".into(),
        }),
        h(Predicate::IsKey {
            label: "LISTING-ID".into(),
        }),
        h(Predicate::NestedIn {
            outer: "AGENT".into(),
            inner: "AGENT-NAME".into(),
        }),
        h(Predicate::NestedIn {
            outer: "AGENT".into(),
            inner: "AGENT-PHONE".into(),
        }),
        h(Predicate::NestedIn {
            outer: "OFFICE".into(),
            inner: "OFFICE-NAME".into(),
        }),
        h(Predicate::NestedIn {
            outer: "ADDRESS".into(),
            inner: "STREET".into(),
        }),
        h(Predicate::NestedIn {
            outer: "ADDRESS".into(),
            inner: "ZIP".into(),
        }),
        h(Predicate::NestedIn {
            outer: "PRICING".into(),
            inner: "PRICE".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "AGENT".into(),
            inner: "PRICE".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "OFFICE".into(),
            inner: "AGENT-NAME".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "ADDRESS".into(),
            inner: "AGENT-PHONE".into(),
        }),
        h(Predicate::Contiguous {
            a: "BEDS".into(),
            b: "BATHS".into(),
        }),
        h(Predicate::Contiguous {
            a: "CITY".into(),
            b: "STATE".into(),
        }),
        h(Predicate::IsNumeric {
            label: "BEDS".into(),
        }),
        h(Predicate::IsNumeric {
            label: "BATHS".into(),
        }),
        h(Predicate::IsNumeric {
            label: "SQFT".into(),
        }),
        h(Predicate::IsNumeric {
            label: "PRICE".into(),
        }),
        h(Predicate::IsNumeric {
            label: "ZIP".into(),
        }),
        h(Predicate::IsNumeric {
            label: "YEAR-BUILT".into(),
        }),
        h(Predicate::IsNumeric {
            label: "LISTING-ID".into(),
        }),
        h(Predicate::IsNumeric {
            label: "DAYS-ON-MARKET".into(),
        }),
        h(Predicate::IsTextual {
            label: "DESCRIPTION".into(),
        }),
        h(Predicate::IsTextual {
            label: "CITY".into(),
        }),
        h(Predicate::IsTextual {
            label: "AGENT-NAME".into(),
        }),
        h(Predicate::IsTextual {
            label: "OFFICE-NAME".into(),
        }),
        h(Predicate::IsTextual {
            label: "STATUS".into(),
        }),
        // Soft, not hard: wrapper segmentation noise can smear a fragment
        // of a neighbouring field into a STATE cell, spuriously "refuting"
        // the dependency for one listing. The FD is real domain knowledge,
        // but data-verified constraints must tolerate extraction noise.
        DomainConstraint::soft(Predicate::FunctionalDependency {
            determinants: vec!["ZIP".into()],
            dependent: "STATE".into(),
        }),
        DomainConstraint::soft(Predicate::AtMostK {
            label: "DESCRIPTION".into(),
            k: 2,
        }),
        DomainConstraint::numeric(
            Predicate::Proximity {
                a: "AGENT-NAME".into(),
                b: "AGENT-PHONE".into(),
            },
            0.2,
        ),
        DomainConstraint::numeric(
            Predicate::Proximity {
                a: "CITY".into(),
                b: "STATE".into(),
            },
            0.1,
        ),
    ];

    let synonyms = vec![
        ("property", "listing"),
        ("home", "house"),
        ("residence", "house"),
        ("bedrooms", "beds"),
        ("br", "beds"),
        ("bathrooms", "baths"),
        ("ba", "baths"),
        ("location", "address"),
        ("town", "city"),
        ("realtor", "agent"),
        ("brokerage", "office"),
        ("firm", "office"),
        ("company", "office"),
        ("comments", "remarks"),
        ("notes", "remarks"),
        ("desc", "description"),
        ("acreage", "lot"),
        ("dom", "days-on-market"),
        ("cell", "phone"),
        ("tel", "phone"),
        ("levels", "stories"),
        ("floors", "stories"),
        ("parking", "garage"),
        ("schools", "school-district"),
        ("subdivision", "neighborhood"),
        ("area", "neighborhood"),
        ("valuation", "assessment"),
        ("vintage", "year-built"),
        ("ac", "cooling"),
        ("conditioning", "cooling"),
        ("heat", "heating"),
        ("frplc", "fireplace"),
        ("bsmt", "basement"),
        ("water", "waterfront"),
        ("municipality", "city"),
        ("situs", "address"),
        ("id", "listing-id"),
        ("ref", "id"),
        ("appl", "appliances"),
        ("dues", "fee"),
        ("facts", "basic"),
        ("inside", "interior"),
        ("indoors", "interior"),
        ("outside", "exterior"),
        ("outdoors", "exterior"),
        ("narrative", "remarks"),
        ("structure", "house"),
        ("dwelling", "house"),
    ];

    with_blanket_nesting(with_blanket_frequency(DomainSpec {
        name: "Real Estate II",
        concepts: concepts(),
        mediated_root,
        sources,
        constraints,
        synonyms,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::SchemaTree;

    #[test]
    fn table3_mediated_statistics() {
        let s = spec();
        s.validate().unwrap();
        let tree = SchemaTree::from_dtd(&s.mediated_dtd()).unwrap();
        assert_eq!(tree.len(), 66, "Table 3: 66 mediated tags");
        assert_eq!(
            tree.non_leaf_tags().count(),
            13,
            "Table 3: 13 non-leaf tags"
        );
        assert_eq!(tree.max_depth(), 4, "Table 3: depth 4");
    }

    #[test]
    fn table3_source_statistics() {
        let s = spec();
        for i in 0..5 {
            let tree = SchemaTree::from_dtd(&s.source_dtd(i)).unwrap();
            assert!(
                (33..=48).contains(&tree.len()),
                "{}: {} tags",
                s.sources[i].name,
                tree.len()
            );
            assert!(
                (11..=13).contains(&tree.non_leaf_tags().count()),
                "{}: {} non-leaf",
                s.sources[i].name,
                tree.non_leaf_tags().count()
            );
            assert_eq!(tree.max_depth(), 4, "{}", s.sources[i].name);
        }
    }
}
