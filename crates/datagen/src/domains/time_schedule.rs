//! Time Schedule (Table 3, row 2): university course offerings.
//!
//! Mediated schema: 23 tags, 6 non-leaf (COURSE-OFFERING, COURSE, SECTION,
//! MEETING, LOCATION, INSTRUCTOR), depth 4. Five sources with 15–19 tags,
//! 3–5 non-leaf tags, depths 2–4 and 95–100% matchable. The domain carries
//! the Section 7 ambiguity the paper discusses: course-level versus
//! section-level fields (credits next to section data), and course codes
//! whose *format*, not vocabulary, is the signal.

use crate::domains::{group, leaf, other, with_blanket_frequency, with_blanket_nesting};
use crate::spec::{DomainSpec, SourceStructure, TreeNode};
use crate::values::ValueKind as V;
use lsd_constraints::{DomainConstraint, Predicate};

use TreeNode::{Group, Leaf};

/// Builds the Time Schedule specification.
pub fn spec() -> DomainSpec {
    let concepts = vec![
        /* 0 */
        group(
            "COURSE-OFFERING",
            [
                "course-offering",
                "offering",
                "class",
                "course-entry",
                "course",
            ],
        ),
        /* 1 */
        group(
            "COURSE",
            [
                "course-info",
                "course",
                "course-data",
                "subject-info",
                "course-details",
            ],
        ),
        /* 2 */
        leaf(
            "CODE",
            V::CourseCode,
            [
                "code",
                "course-code",
                "course-num",
                "catalog-no",
                "course-id",
            ],
            0.0,
        ),
        /* 3 */
        leaf(
            "TITLE",
            V::CourseTitle,
            [
                "title",
                "course-title",
                "name",
                "course-name",
                "class-title",
            ],
            0.0,
        ),
        /* 4 */
        leaf(
            "CREDITS",
            V::Credits,
            ["credits", "credit-hours", "units", "cr", "num-credits"],
            0.0,
        ),
        /* 5 */
        leaf(
            "QUARTER",
            V::Quarter,
            ["quarter", "term", "semester", "session", "qtr"],
            0.05,
        ),
        /* 6 */
        group(
            "SECTION",
            [
                "section",
                "section-info",
                "sect",
                "sec-data",
                "section-details",
            ],
        ),
        /* 7 */
        leaf(
            "SECTION-ID",
            V::Section,
            ["section-id", "sec", "section-letter", "sec-no", "sec-id"],
            0.0,
        ),
        /* 8 */
        leaf(
            "SLN",
            V::RegistrationCode,
            ["sln", "reg-code", "call-number", "crn", "schedule-line"],
            0.0,
        ),
        /* 9 */
        leaf(
            "ENROLLMENT",
            V::Enrollment,
            [
                "enrollment",
                "enrolled",
                "cur-enrolled",
                "taken",
                "num-students",
            ],
            0.1,
        ),
        /* 10 */
        leaf(
            "LIMIT",
            V::EnrollLimit,
            [
                "limit",
                "enroll-limit",
                "max-enrollment",
                "capacity",
                "class-size",
            ],
            0.1,
        ),
        /* 11 */
        group(
            "MEETING",
            ["meeting", "meeting-time", "when", "schedule", "times"],
        ),
        /* 12 */
        leaf(
            "DAYS",
            V::Days,
            [
                "days",
                "meeting-days",
                "day-pattern",
                "on-days",
                "week-days",
            ],
            0.0,
        ),
        /* 13 */
        leaf(
            "TIME",
            V::TimeRange,
            ["time", "hours", "time-slot", "period", "class-time"],
            0.0,
        ),
        /* 14 */
        group(
            "LOCATION",
            ["location", "place", "where-at", "room-info", "venue"],
        ),
        /* 15 */
        leaf(
            "BUILDING",
            V::Building,
            ["building", "bldg", "hall", "building-name", "bldg-name"],
            0.0,
        ),
        /* 16 */
        leaf(
            "ROOM",
            V::Room,
            ["room", "room-no", "room-number", "rm", "room-num"],
            0.0,
        ),
        /* 17 */
        group(
            "INSTRUCTOR",
            ["instructor", "teacher", "taught-by", "prof-info", "staff"],
        ),
        /* 18 */
        leaf(
            "INSTRUCTOR-NAME",
            V::Instructor,
            [
                "instructor-name",
                "prof",
                "lecturer",
                "faculty-name",
                "instr",
            ],
            0.0,
        ),
        /* 19 */
        leaf(
            "INSTRUCTOR-PHONE",
            V::Phone,
            [
                "instructor-phone",
                "office-phone",
                "tel",
                "phone-no",
                "contact",
            ],
            0.15,
        ),
        /* 20 */
        leaf(
            "INSTRUCTOR-EMAIL",
            V::Email,
            ["instructor-email", "email", "e-mail", "mail", "email-addr"],
            0.1,
        ),
        /* 21 */
        leaf(
            "NOTES",
            V::ShortRemark,
            ["notes", "comment", "remark", "info", "special-notes"],
            0.2,
        ),
        /* 22 */
        leaf(
            "FEE",
            V::HoaFee,
            ["fee", "course-fee", "lab-fee", "extra-fee", "fees"],
            0.3,
        ),
        // OTHER concepts.
        /* 23 */
        other(
            V::Url,
            ["syllabus-url", "webpage", "link", "course-url", "www"],
            0.2,
        ),
        /* 24 */
        other(
            V::DateValue,
            ["start-date", "begins", "first-day", "from-date", "start"],
            0.1,
        ),
    ];

    let mediated_root = Group(
        0,
        vec![
            Group(1, vec![Leaf(2), Leaf(3), Leaf(4), Leaf(5)]),
            Group(
                6,
                vec![
                    Leaf(7),
                    Leaf(8),
                    Leaf(9),
                    Leaf(10),
                    Group(11, vec![Leaf(12), Leaf(13)]),
                    Group(14, vec![Leaf(15), Leaf(16)]),
                ],
            ),
            Group(17, vec![Leaf(18), Leaf(19), Leaf(20)]),
            Leaf(21),
            Leaf(22),
        ],
    );

    let sources = vec![
        // Near mirror: 18 tags, 5 non-leaf, depth 4, 100% matchable.
        SourceStructure {
            name: "washington.edu",
            root: Group(
                0,
                vec![
                    Group(1, vec![Leaf(2), Leaf(3), Leaf(4), Leaf(5)]),
                    Group(
                        6,
                        vec![
                            Leaf(7),
                            Leaf(8),
                            Leaf(9),
                            Leaf(10),
                            Group(11, vec![Leaf(12), Leaf(13)]),
                            Leaf(15),
                            Leaf(16),
                        ],
                    ),
                    Group(17, vec![Leaf(18)]),
                ],
            ),
        },
        // Flatter: 16 tags, 4 non-leaf, depth 3, 100% matchable.
        SourceStructure {
            name: "wisc.edu",
            root: Group(
                0,
                vec![
                    Group(1, vec![Leaf(2), Leaf(3), Leaf(4)]),
                    Group(
                        6,
                        vec![Leaf(7), Leaf(8), Leaf(12), Leaf(13), Leaf(15), Leaf(16)],
                    ),
                    Group(17, vec![Leaf(18), Leaf(20)]),
                    Leaf(21),
                ],
            ),
        },
        // Mostly flat with meeting group, 16 tags, depth 3, 100%.
        SourceStructure {
            name: "gatech.edu",
            root: Group(
                0,
                vec![
                    Leaf(2),
                    Leaf(3),
                    Leaf(4),
                    Leaf(5),
                    Leaf(7),
                    Leaf(8),
                    Group(11, vec![Leaf(12), Leaf(13)]),
                    Group(14, vec![Leaf(15), Leaf(16)]),
                    Group(17, vec![Leaf(18), Leaf(19)]),
                ],
            ),
        },
        // Deep mirror with different vocabulary: 18 tags, 5 non-leaf,
        // depth 4, 100% matchable.
        SourceStructure {
            name: "umich.edu",
            root: Group(
                0,
                vec![
                    Group(1, vec![Leaf(2), Leaf(3), Leaf(4)]),
                    Group(
                        6,
                        vec![
                            Leaf(7),
                            Leaf(8),
                            Leaf(10),
                            Leaf(12),
                            Leaf(13),
                            Group(14, vec![Leaf(15), Leaf(16)]),
                        ],
                    ),
                    Group(17, vec![Leaf(18), Leaf(20)]),
                    Leaf(21),
                ],
            ),
        },
        // Section-centric layout: 19 tags, 5 non-leaf, depth 3, 100%.
        SourceStructure {
            name: "utexas.edu",
            root: Group(
                0,
                vec![
                    Leaf(2),
                    Leaf(3),
                    Leaf(4),
                    Group(6, vec![Leaf(7), Leaf(8), Leaf(9), Leaf(10)]),
                    Group(11, vec![Leaf(12), Leaf(13)]),
                    Group(14, vec![Leaf(15), Leaf(16)]),
                    Group(17, vec![Leaf(18), Leaf(19), Leaf(20)]),
                ],
            ),
        },
    ];

    let h = DomainConstraint::hard;
    let constraints = vec![
        h(Predicate::ExactlyOne {
            label: "COURSE-OFFERING".into(),
        }),
        h(Predicate::ExactlyOne {
            label: "CODE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "TITLE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "CREDITS".into(),
        }),
        h(Predicate::AtMostOne {
            label: "DAYS".into(),
        }),
        h(Predicate::AtMostOne {
            label: "TIME".into(),
        }),
        h(Predicate::AtMostOne {
            label: "BUILDING".into(),
        }),
        h(Predicate::AtMostOne {
            label: "ROOM".into(),
        }),
        h(Predicate::AtMostOne {
            label: "SLN".into(),
        }),
        h(Predicate::AtMostOne {
            label: "INSTRUCTOR-NAME".into(),
        }),
        h(Predicate::NestedIn {
            outer: "COURSE".into(),
            inner: "CODE".into(),
        }),
        h(Predicate::NestedIn {
            outer: "COURSE".into(),
            inner: "TITLE".into(),
        }),
        h(Predicate::NestedIn {
            outer: "SECTION".into(),
            inner: "SLN".into(),
        }),
        h(Predicate::NestedIn {
            outer: "SECTION".into(),
            inner: "SECTION-ID".into(),
        }),
        h(Predicate::NestedIn {
            outer: "MEETING".into(),
            inner: "DAYS".into(),
        }),
        h(Predicate::NestedIn {
            outer: "MEETING".into(),
            inner: "TIME".into(),
        }),
        h(Predicate::NestedIn {
            outer: "LOCATION".into(),
            inner: "ROOM".into(),
        }),
        h(Predicate::NestedIn {
            outer: "INSTRUCTOR".into(),
            inner: "INSTRUCTOR-NAME".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "MEETING".into(),
            inner: "CODE".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "INSTRUCTOR".into(),
            inner: "TITLE".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "MEETING".into(),
            inner: "SLN".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "LOCATION".into(),
            inner: "DAYS".into(),
        }),
        h(Predicate::Contiguous {
            a: "DAYS".into(),
            b: "TIME".into(),
        }),
        h(Predicate::Contiguous {
            a: "BUILDING".into(),
            b: "ROOM".into(),
        }),
        h(Predicate::IsNumeric {
            label: "CREDITS".into(),
        }),
        h(Predicate::IsNumeric {
            label: "SLN".into(),
        }),
        h(Predicate::IsNumeric {
            label: "ENROLLMENT".into(),
        }),
        h(Predicate::IsNumeric {
            label: "LIMIT".into(),
        }),
        h(Predicate::IsNumeric {
            label: "ROOM".into(),
        }),
        h(Predicate::IsTextual {
            label: "TITLE".into(),
        }),
        h(Predicate::IsTextual {
            label: "INSTRUCTOR-NAME".into(),
        }),
        h(Predicate::IsTextual {
            label: "BUILDING".into(),
        }),
        // The paper's exclusivity example is course- vs section-credit; in
        // our mediated schema that pair is CREDITS vs FEE mis-assignments.
        h(Predicate::MutuallyExclusive {
            a: "CREDITS".into(),
            b: "FEE".into(),
        }),
        DomainConstraint::soft(Predicate::AtMostK {
            label: "NOTES".into(),
            k: 2,
        }),
        DomainConstraint::numeric(
            Predicate::Proximity {
                a: "DAYS".into(),
                b: "TIME".into(),
            },
            0.2,
        ),
    ];

    let synonyms = vec![
        ("class", "course"),
        ("units", "credits"),
        ("cr", "credits"),
        ("term", "quarter"),
        ("semester", "quarter"),
        ("sec", "section"),
        ("crn", "sln"),
        ("prof", "instructor"),
        ("teacher", "instructor"),
        ("lecturer", "instructor"),
        ("faculty", "instructor"),
        ("bldg", "building"),
        ("hall", "building"),
        ("rm", "room"),
        ("tel", "phone"),
        ("mail", "email"),
        ("name", "title"),
        ("catalog", "code"),
        ("sect", "section"),
        ("sln", "registration"),
        ("call", "sln"),
        ("reg", "sln"),
        ("instr", "instructor"),
        ("staff", "instructor"),
        ("venue", "location"),
        ("place", "location"),
        ("period", "time"),
        ("hours", "time"),
        ("slot", "time"),
        ("capacity", "limit"),
        ("enrolled", "enrollment"),
        ("taken", "enrollment"),
        ("students", "enrollment"),
        ("qtr", "quarter"),
        ("session", "quarter"),
        ("subject", "course"),
        ("offering", "course"),
    ];

    with_blanket_nesting(with_blanket_frequency(DomainSpec {
        name: "Time Schedule",
        concepts,
        mediated_root,
        sources,
        constraints,
        synonyms,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::SchemaTree;

    #[test]
    fn table3_mediated_statistics() {
        let s = spec();
        s.validate().unwrap();
        let tree = SchemaTree::from_dtd(&s.mediated_dtd()).unwrap();
        assert_eq!(tree.len(), 23, "Table 3: 23 mediated tags");
        assert_eq!(tree.non_leaf_tags().count(), 6, "Table 3: 6 non-leaf tags");
        assert_eq!(tree.max_depth(), 4, "Table 3: depth 4");
    }

    #[test]
    fn table3_source_statistics() {
        let s = spec();
        for i in 0..5 {
            let tree = SchemaTree::from_dtd(&s.source_dtd(i)).unwrap();
            assert!(
                (15..=19).contains(&tree.len()),
                "{}: {} tags",
                s.sources[i].name,
                tree.len()
            );
            assert!(
                (3..=5).contains(&tree.non_leaf_tags().count()),
                "{}",
                s.sources[i].name
            );
            assert!(tree.max_depth() <= 4);
        }
    }
}
