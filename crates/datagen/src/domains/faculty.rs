//! Faculty Listings (Table 3, row 3): CS faculty profiles.
//!
//! Mediated schema: 14 tags, 4 non-leaf (FACULTY, EDUCATION, CONTACT,
//! RESEARCH), depth 3. Five sources with 13–14 tags, all with 4 non-leaf
//! tags, depth 3, 100% matchable — the most homogeneous domain in the
//! paper, but also the smallest data (32–73 profiles per department), so
//! learners must work from few examples.

use crate::domains::{group, leaf, with_blanket_frequency, with_blanket_nesting};
use crate::spec::{DomainSpec, SourceStructure, TreeNode};
use crate::values::ValueKind as V;
use lsd_constraints::{DomainConstraint, Predicate};

use TreeNode::{Group, Leaf};

/// Builds the Faculty Listings specification.
pub fn spec() -> DomainSpec {
    let concepts = vec![
        /* 0 */
        group(
            "FACULTY",
            [
                "faculty-member",
                "professor",
                "person",
                "faculty",
                "staff-member",
            ],
        ),
        /* 1 */
        leaf(
            "NAME",
            V::PersonName,
            ["name", "full-name", "prof-name", "faculty-name", "who"],
            0.0,
        ),
        /* 2 */
        leaf(
            "RANK",
            V::FacultyRank,
            ["rank", "title", "position", "appointment", "job-title"],
            0.0,
        ),
        /* 3 */
        group(
            "EDUCATION",
            [
                "education",
                "degree-info",
                "phd-info",
                "credentials",
                "background",
            ],
        ),
        /* 4 */
        leaf(
            "DEGREE",
            V::Degree,
            ["degree", "highest-degree", "deg", "degree-type", "diploma"],
            0.0,
        ),
        /* 5 */
        leaf(
            "UNIVERSITY",
            V::University,
            [
                "university",
                "alma-mater",
                "school",
                "institution",
                "from-univ",
            ],
            0.0,
        ),
        /* 6 */
        leaf(
            "DEGREE-YEAR",
            V::DegreeYear,
            ["degree-year", "year", "grad-year", "yr", "class-of"],
            0.1,
        ),
        /* 7 */
        group(
            "CONTACT",
            [
                "contact",
                "contact-info",
                "reach",
                "office-info",
                "coordinates",
            ],
        ),
        /* 8 */
        leaf(
            "OFFICE",
            V::OfficeLocation,
            [
                "office",
                "office-location",
                "room",
                "office-room",
                "location",
            ],
            0.05,
        ),
        /* 9 */
        leaf(
            "PHONE",
            V::Phone,
            ["phone", "telephone", "office-phone", "phone-number", "tel"],
            0.05,
        ),
        /* 10 */
        leaf(
            "EMAIL",
            V::Email,
            [
                "email",
                "e-mail",
                "email-address",
                "mail",
                "electronic-mail",
            ],
            0.0,
        ),
        /* 11 */
        group(
            "RESEARCH",
            [
                "research",
                "research-info",
                "work",
                "scholarship",
                "academic-work",
            ],
        ),
        /* 12 */
        leaf(
            "INTERESTS",
            V::ResearchInterests,
            [
                "interests",
                "research-areas",
                "areas",
                "topics",
                "specialties",
            ],
            0.0,
        ),
        /* 13 */
        leaf(
            "BIO",
            V::Bio,
            ["bio", "biography", "profile", "about", "summary"],
            0.1,
        ),
    ];

    let full = |name: &'static str| SourceStructure {
        name,
        root: Group(
            0,
            vec![
                Leaf(1),
                Leaf(2),
                Group(3, vec![Leaf(4), Leaf(5), Leaf(6)]),
                Group(7, vec![Leaf(8), Leaf(9), Leaf(10)]),
                Group(11, vec![Leaf(12), Leaf(13)]),
            ],
        ),
    };
    // A 13-tag variant: no DEGREE-YEAR.
    let no_year = |name: &'static str| SourceStructure {
        name,
        root: Group(
            0,
            vec![
                Leaf(1),
                Leaf(2),
                Group(3, vec![Leaf(4), Leaf(5)]),
                Group(7, vec![Leaf(8), Leaf(9), Leaf(10)]),
                Group(11, vec![Leaf(12), Leaf(13)]),
            ],
        ),
    };
    // A 13-tag variant: no BIO.
    let no_bio = |name: &'static str| SourceStructure {
        name,
        root: Group(
            0,
            vec![
                Leaf(1),
                Leaf(2),
                Group(3, vec![Leaf(4), Leaf(5), Leaf(6)]),
                Group(7, vec![Leaf(8), Leaf(9), Leaf(10)]),
                Group(11, vec![Leaf(12)]),
            ],
        ),
    };

    let sources = vec![
        full("cs.washington.edu"),
        no_year("cs.stanford.edu"),
        full("cs.cmu.edu"),
        no_bio("cs.wisc.edu"),
        full("cs.utexas.edu"),
    ];

    let h = DomainConstraint::hard;
    let constraints = vec![
        h(Predicate::ExactlyOne {
            label: "FACULTY".into(),
        }),
        h(Predicate::ExactlyOne {
            label: "NAME".into(),
        }),
        h(Predicate::AtMostOne {
            label: "RANK".into(),
        }),
        h(Predicate::AtMostOne {
            label: "EMAIL".into(),
        }),
        h(Predicate::AtMostOne {
            label: "PHONE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "DEGREE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "UNIVERSITY".into(),
        }),
        h(Predicate::NestedIn {
            outer: "EDUCATION".into(),
            inner: "DEGREE".into(),
        }),
        h(Predicate::NestedIn {
            outer: "CONTACT".into(),
            inner: "PHONE".into(),
        }),
        h(Predicate::NestedIn {
            outer: "CONTACT".into(),
            inner: "EMAIL".into(),
        }),
        h(Predicate::NestedIn {
            outer: "RESEARCH".into(),
            inner: "INTERESTS".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "EDUCATION".into(),
            inner: "PHONE".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "CONTACT".into(),
            inner: "DEGREE".into(),
        }),
        h(Predicate::Contiguous {
            a: "DEGREE".into(),
            b: "UNIVERSITY".into(),
        }),
        h(Predicate::IsNumeric {
            label: "DEGREE-YEAR".into(),
        }),
        h(Predicate::IsTextual {
            label: "NAME".into(),
        }),
        h(Predicate::IsTextual {
            label: "INTERESTS".into(),
        }),
        h(Predicate::IsTextual {
            label: "BIO".into(),
        }),
        h(Predicate::IsTextual {
            label: "UNIVERSITY".into(),
        }),
        DomainConstraint::numeric(
            Predicate::Proximity {
                a: "DEGREE".into(),
                b: "DEGREE-YEAR".into(),
            },
            0.2,
        ),
    ];

    let synonyms = vec![
        ("professor", "faculty"),
        ("title", "rank"),
        ("position", "rank"),
        ("school", "university"),
        ("institution", "university"),
        ("areas", "interests"),
        ("topics", "interests"),
        ("specialties", "interests"),
        ("biography", "bio"),
        ("profile", "bio"),
        ("telephone", "phone"),
        ("tel", "phone"),
        ("mail", "email"),
        ("room", "office"),
        ("deg", "degree"),
    ];

    with_blanket_nesting(with_blanket_frequency(DomainSpec {
        name: "Faculty Listings",
        concepts,
        mediated_root: Group(
            0,
            vec![
                Leaf(1),
                Leaf(2),
                Group(3, vec![Leaf(4), Leaf(5), Leaf(6)]),
                Group(7, vec![Leaf(8), Leaf(9), Leaf(10)]),
                Group(11, vec![Leaf(12), Leaf(13)]),
            ],
        ),
        sources,
        constraints,
        synonyms,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::SchemaTree;

    #[test]
    fn table3_mediated_statistics() {
        let s = spec();
        s.validate().unwrap();
        let tree = SchemaTree::from_dtd(&s.mediated_dtd()).unwrap();
        assert_eq!(tree.len(), 14, "Table 3: 14 mediated tags");
        assert_eq!(tree.non_leaf_tags().count(), 4, "Table 3: 4 non-leaf tags");
        assert_eq!(tree.max_depth(), 3, "Table 3: depth 3");
    }

    #[test]
    fn table3_source_statistics() {
        let s = spec();
        for i in 0..5 {
            let tree = SchemaTree::from_dtd(&s.source_dtd(i)).unwrap();
            assert!(
                (13..=14).contains(&tree.len()),
                "{}: {} tags",
                s.sources[i].name,
                tree.len()
            );
            assert_eq!(tree.non_leaf_tags().count(), 4, "{}", s.sources[i].name);
            assert_eq!(tree.max_depth(), 3);
        }
    }
}
