//! The four domain specifications (paper Table 3).
//!
//! Shared helpers: [`leaf`]/[`group`]/[`other`] build concept-table rows
//! concisely; each domain module exposes a `spec()` function.

pub mod faculty;
pub mod real_estate1;
pub mod real_estate2;
pub mod time_schedule;

use crate::spec::{ConceptDef, DomainSpec};
use crate::values::ValueKind;
use lsd_constraints::{ConstraintKind, DomainConstraint, Predicate};

/// Appends a hard `NestedIn` constraint for every (ancestor group,
/// descendant) pair of the mediated tree that also holds in every source
/// exhibiting both labels. The paper specified "for each pair of
/// mediated-schema tags … all applicable nesting constraints"; the
/// per-source check keeps only the *applicable* ones (a source may flatten
/// a group — the constraint is then vacuous there — or genuinely rearrange
/// it, in which case the pair is not domain knowledge). These constraints
/// are what make one user correction of a group tag cascade to its
/// children during feedback (Section 6.3).
pub(crate) fn with_blanket_nesting(mut spec: DomainSpec) -> DomainSpec {
    use crate::spec::TreeNode;
    use std::collections::HashSet;

    /// All (ancestor label, descendant label) pairs of a tree, plus the set
    /// of labels the tree mentions. OTHER concepts are skipped.
    fn relations(
        spec: &DomainSpec,
        node: &TreeNode,
        ancestors: &mut Vec<String>,
        pairs: &mut HashSet<(String, String)>,
        present: &mut HashSet<String>,
    ) {
        let label = spec.concepts[node.concept()].mediated.map(str::to_string);
        if let Some(name) = &label {
            present.insert(name.clone());
            for a in ancestors.iter() {
                pairs.insert((a.clone(), name.clone()));
            }
        }
        if let TreeNode::Group(_, children) = node {
            if let Some(name) = label {
                ancestors.push(name);
                for c in children {
                    relations(spec, c, ancestors, pairs, present);
                }
                ancestors.pop();
            } else {
                for c in children {
                    relations(spec, c, ancestors, pairs, present);
                }
            }
        }
    }

    let existing: HashSet<(String, String)> = spec
        .constraints
        .iter()
        .filter_map(|c| match &c.predicate {
            Predicate::NestedIn { outer, inner } => Some((outer.clone(), inner.clone())),
            _ => None,
        })
        .collect();

    let mut mediated_pairs = HashSet::new();
    let mut mediated_present = HashSet::new();
    let root = spec.mediated_root.clone();
    relations(
        &spec,
        &root,
        &mut Vec::new(),
        &mut mediated_pairs,
        &mut mediated_present,
    );

    // A pair is exact domain knowledge only if every source that exhibits
    // both labels also nests them (sources may flatten groups — the
    // constraint is then vacuous there — but may NOT rearrange them).
    let sources = spec.sources.clone();
    type SourceView = (HashSet<(String, String)>, HashSet<String>);
    let source_views: Vec<SourceView> = sources
        .iter()
        .map(|src| {
            let mut pairs = HashSet::new();
            let mut present = HashSet::new();
            relations(&spec, &src.root, &mut Vec::new(), &mut pairs, &mut present);
            (pairs, present)
        })
        .collect();

    let mut ordered: Vec<(String, String)> = mediated_pairs.into_iter().collect();
    ordered.sort();
    for (outer, inner) in ordered {
        let holds_everywhere = source_views.iter().all(|(pairs, present)| {
            !(present.contains(&outer) && present.contains(&inner))
                || pairs.contains(&(outer.clone(), inner.clone()))
        });
        if holds_everywhere && !existing.contains(&(outer.clone(), inner.clone())) {
            spec.constraints.push(DomainConstraint {
                predicate: Predicate::NestedIn { outer, inner },
                kind: ConstraintKind::Hard,
            });
        }
    }
    spec
}

/// Appends a hard `AtMostOne` frequency constraint for every mediated tag
/// not already covered by a frequency constraint. The paper specified "for
/// each mediated-schema tag … all non-trivial column and frequency
/// constraints", and in these domains every mediated tag matches at most
/// one source tag, so the blanket constraint is exact domain knowledge.
pub(crate) fn with_blanket_frequency(mut spec: DomainSpec) -> DomainSpec {
    let covered: std::collections::HashSet<&str> = spec
        .constraints
        .iter()
        .filter_map(|c| match &c.predicate {
            Predicate::AtMostOne { label } | Predicate::ExactlyOne { label } => {
                Some(label.as_str())
            }
            _ => None,
        })
        .collect();
    let missing: Vec<String> = spec
        .concepts
        .iter()
        .filter_map(|c| c.mediated)
        .filter(|m| !covered.contains(m))
        .map(str::to_string)
        .collect();
    for label in missing {
        spec.constraints.push(DomainConstraint {
            predicate: Predicate::AtMostOne { label },
            kind: ConstraintKind::Hard,
        });
    }
    spec
}

/// A matchable leaf concept.
pub(crate) fn leaf(
    mediated: &'static str,
    kind: ValueKind,
    names: [&'static str; 5],
    optional: f64,
) -> ConceptDef {
    ConceptDef {
        mediated: Some(mediated),
        kind: Some(kind),
        names,
        optional,
    }
}

/// A matchable group (non-leaf) concept.
pub(crate) fn group(mediated: &'static str, names: [&'static str; 5]) -> ConceptDef {
    ConceptDef {
        mediated: Some(mediated),
        kind: None,
        names,
        optional: 0.0,
    }
}

/// An unmatchable (OTHER) leaf concept.
pub(crate) fn other(kind: ValueKind, names: [&'static str; 5], optional: f64) -> ConceptDef {
    ConceptDef {
        mediated: None,
        kind: Some(kind),
        names,
        optional,
    }
}
