//! Real Estate I (Table 3, row 1): houses for sale, small mediated schema.
//!
//! Mediated schema: 20 tags, 4 non-leaf (HOUSE, ADDRESS, CONTACT-INFO,
//! FEATURES), depth 3. Five sources with 18–21 tags, 0–4 non-leaf tags and
//! matchable percentages in the paper's 84–100% band: two full nested
//! mirrors, one flat source, one mostly-flat source with vacuous tag names,
//! and one two-group source — the structural spread the paper describes.

use crate::domains::{group, leaf, other, with_blanket_frequency, with_blanket_nesting};
use crate::spec::{DomainSpec, SourceStructure, TreeNode};
use crate::values::ValueKind as V;
use lsd_constraints::{DomainConstraint, Predicate};

use TreeNode::{Group, Leaf};

/// Builds the Real Estate I specification.
pub fn spec() -> DomainSpec {
    // Concept table. Index comments are load-bearing: trees use them.
    let concepts = vec![
        /* 0 */
        group(
            "HOUSE",
            ["house-listing", "listing", "home", "item", "house"],
        ),
        /* 1 */
        group(
            "ADDRESS",
            ["address", "addr", "where", "loc-info", "location"],
        ),
        /* 2 */
        leaf(
            "STREET",
            V::StreetAddress,
            ["street", "street-address", "str", "address1", "street"],
            0.05,
        ),
        /* 3 */
        leaf(
            "CITY",
            V::City,
            ["city", "city", "town", "city", "city"],
            0.0,
        ),
        /* 4 */
        leaf(
            "STATE",
            V::State,
            ["state", "state", "st", "state", "state"],
            0.0,
        ),
        /* 5 */
        leaf(
            "ZIP",
            V::Zip,
            ["zip", "zipcode", "postal-code", "zip", "zip-code"],
            0.1,
        ),
        /* 6 */
        leaf(
            "PRICE",
            V::Price,
            ["price", "listed-price", "asking-price", "cost", "price"],
            0.0,
        ),
        /* 7 */
        leaf(
            "DESCRIPTION",
            V::Description,
            [
                "description",
                "comments",
                "extra-info",
                "details",
                "remarks",
            ],
            0.0,
        ),
        /* 8 */
        leaf(
            "BEDS",
            V::Beds,
            ["beds", "num-bedrooms", "bedrooms", "br", "beds"],
            0.0,
        ),
        /* 9 */
        leaf(
            "BATHS",
            V::Baths,
            ["baths", "num-bathrooms", "bathrooms", "ba", "baths"],
            0.0,
        ),
        /* 10 */
        leaf(
            "SQFT",
            V::SqFt,
            ["sqft", "square-feet", "area-size", "size", "sq-ft"],
            0.1,
        ),
        /* 11 */
        leaf(
            "YEAR-BUILT",
            V::YearBuilt,
            ["year-built", "built", "yr-built", "year", "built-in"],
            0.15,
        ),
        /* 12 */
        group(
            "CONTACT-INFO",
            [
                "contact",
                "contact-info",
                "realtor",
                "agent-info",
                "contact-details",
            ],
        ),
        /* 13 */
        leaf(
            "AGENT-NAME",
            V::PersonName,
            [
                "agent-name",
                "agent",
                "realtor-name",
                "name",
                "listing-agent",
            ],
            0.0,
        ),
        /* 14 */
        leaf(
            "AGENT-PHONE",
            V::Phone,
            [
                "agent-phone",
                "phone",
                "realtor-phone",
                "telephone",
                "contact-phone",
            ],
            0.0,
        ),
        /* 15 */
        leaf(
            "FIRM",
            V::FirmName,
            ["firm", "office", "brokerage", "company", "firm-name"],
            0.1,
        ),
        /* 16 */
        group(
            "FEATURES",
            ["features", "feature-list", "amenities", "props", "extras"],
        ),
        /* 17 */
        leaf(
            "STYLE",
            V::HouseStyle,
            ["style", "house-style", "type", "bldg-style", "home-style"],
            0.1,
        ),
        /* 18 */
        leaf(
            "HEATING",
            V::Heating,
            ["heating", "heat", "heating-type", "heat-sys", "heat-source"],
            0.1,
        ),
        /* 19 */
        leaf(
            "COOLING",
            V::Cooling,
            ["cooling", "cool", "cooling-type", "ac", "air-cond"],
            0.15,
        ),
        // Unmatchable (OTHER) concepts: present in some sources only.
        /* 20 */
        other(
            V::Url,
            ["virtual-tour", "link", "tour-url", "web", "tour-link"],
            0.2,
        ),
        /* 21 */
        other(
            V::MlsNumber,
            ["mls", "mls-num", "mls-number", "mls-id", "mls-code"],
            0.0,
        ),
        /* 22 */
        other(
            V::DateValue,
            [
                "date-listed",
                "listed-on",
                "post-date",
                "date",
                "listing-date",
            ],
            0.1,
        ),
        /* 23 */
        other(
            V::HoaFee,
            ["hoa", "hoa-fee", "assoc-fee", "hoa-dues", "hoa-monthly"],
            0.3,
        ),
    ];

    let mediated_root = Group(
        0,
        vec![
            Group(1, vec![Leaf(2), Leaf(3), Leaf(4), Leaf(5)]),
            Leaf(6),
            Leaf(7),
            Leaf(8),
            Leaf(9),
            Leaf(10),
            Leaf(11),
            Group(12, vec![Leaf(13), Leaf(14), Leaf(15)]),
            Group(16, vec![Leaf(17), Leaf(18), Leaf(19)]),
        ],
    );

    let sources = vec![
        // Full nested mirror, 20 tags, 100% matchable.
        SourceStructure {
            name: "homeseekers.com",
            root: Group(
                0,
                vec![
                    Group(1, vec![Leaf(2), Leaf(3), Leaf(4), Leaf(5)]),
                    Leaf(6),
                    Leaf(7),
                    Leaf(8),
                    Leaf(9),
                    Leaf(10),
                    Leaf(11),
                    Group(12, vec![Leaf(13), Leaf(14), Leaf(15)]),
                    Group(16, vec![Leaf(17), Leaf(18), Leaf(19)]),
                ],
            ),
        },
        // Completely flat source with three OTHER tags: 20 tags, 17
        // matchable (85%).
        SourceStructure {
            name: "texashomes.com",
            root: Group(
                0,
                vec![
                    Leaf(6),
                    Leaf(2),
                    Leaf(3),
                    Leaf(4),
                    Leaf(5),
                    Leaf(7),
                    Leaf(8),
                    Leaf(9),
                    Leaf(10),
                    Leaf(11),
                    Leaf(13),
                    Leaf(14),
                    Leaf(15),
                    Leaf(17),
                    Leaf(18),
                    Leaf(19),
                    Leaf(20),
                    Leaf(21),
                    Leaf(22),
                ],
            ),
        },
        // Two groups, renamed vocabulary, one OTHER tag: 20 tags, 95%.
        SourceStructure {
            name: "greathomes.com",
            root: Group(
                0,
                vec![
                    Group(1, vec![Leaf(2), Leaf(3), Leaf(4), Leaf(5)]),
                    Leaf(6),
                    Leaf(7),
                    Leaf(8),
                    Leaf(9),
                    Leaf(10),
                    Leaf(11),
                    Group(12, vec![Leaf(13), Leaf(14), Leaf(15)]),
                    Leaf(17),
                    Leaf(18),
                    Leaf(20),
                ],
            ),
        },
        // Mostly flat, vacuous names ("item", "name", "year", "size"),
        // three OTHER tags: 21 tags, 18 matchable (~86%).
        SourceStructure {
            name: "houses-r-us.com",
            root: Group(
                0,
                vec![
                    Leaf(2),
                    Leaf(3),
                    Leaf(4),
                    Leaf(5),
                    Leaf(6),
                    Leaf(7),
                    Leaf(8),
                    Leaf(9),
                    Leaf(10),
                    Leaf(11),
                    Group(12, vec![Leaf(13), Leaf(14), Leaf(15)]),
                    Leaf(17),
                    Leaf(18),
                    Leaf(21),
                    Leaf(22),
                    Leaf(23),
                ],
            ),
        },
        // Nested mirror with abbreviated names: 20 tags, 100%.
        SourceStructure {
            name: "nwhomes.com",
            root: Group(
                0,
                vec![
                    Group(1, vec![Leaf(2), Leaf(3), Leaf(4), Leaf(5)]),
                    Leaf(6),
                    Leaf(7),
                    Leaf(8),
                    Leaf(9),
                    Leaf(10),
                    Leaf(11),
                    Group(12, vec![Leaf(13), Leaf(14), Leaf(15)]),
                    Group(16, vec![Leaf(17), Leaf(18), Leaf(19)]),
                ],
            ),
        },
    ];

    let h = DomainConstraint::hard;
    let constraints = vec![
        h(Predicate::ExactlyOne {
            label: "HOUSE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "PRICE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "ADDRESS".into(),
        }),
        h(Predicate::AtMostOne {
            label: "DESCRIPTION".into(),
        }),
        h(Predicate::AtMostOne {
            label: "BEDS".into(),
        }),
        h(Predicate::AtMostOne {
            label: "BATHS".into(),
        }),
        h(Predicate::AtMostOne {
            label: "ZIP".into(),
        }),
        h(Predicate::AtMostOne {
            label: "CITY".into(),
        }),
        h(Predicate::AtMostOne {
            label: "STATE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "AGENT-NAME".into(),
        }),
        h(Predicate::AtMostOne {
            label: "AGENT-PHONE".into(),
        }),
        h(Predicate::AtMostOne {
            label: "CONTACT-INFO".into(),
        }),
        h(Predicate::NestedIn {
            outer: "HOUSE".into(),
            inner: "PRICE".into(),
        }),
        h(Predicate::NestedIn {
            outer: "ADDRESS".into(),
            inner: "STREET".into(),
        }),
        h(Predicate::NestedIn {
            outer: "ADDRESS".into(),
            inner: "CITY".into(),
        }),
        h(Predicate::NestedIn {
            outer: "ADDRESS".into(),
            inner: "STATE".into(),
        }),
        h(Predicate::NestedIn {
            outer: "ADDRESS".into(),
            inner: "ZIP".into(),
        }),
        h(Predicate::NestedIn {
            outer: "FEATURES".into(),
            inner: "STYLE".into(),
        }),
        h(Predicate::NestedIn {
            outer: "FEATURES".into(),
            inner: "HEATING".into(),
        }),
        h(Predicate::NestedIn {
            outer: "FEATURES".into(),
            inner: "COOLING".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "ADDRESS".into(),
            inner: "PRICE".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "FEATURES".into(),
            inner: "AGENT-NAME".into(),
        }),
        h(Predicate::Contiguous {
            a: "CITY".into(),
            b: "STATE".into(),
        }),
        h(Predicate::NestedIn {
            outer: "CONTACT-INFO".into(),
            inner: "AGENT-NAME".into(),
        }),
        h(Predicate::NestedIn {
            outer: "CONTACT-INFO".into(),
            inner: "AGENT-PHONE".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "CONTACT-INFO".into(),
            inner: "PRICE".into(),
        }),
        h(Predicate::NotNestedIn {
            outer: "ADDRESS".into(),
            inner: "AGENT-PHONE".into(),
        }),
        h(Predicate::Contiguous {
            a: "BEDS".into(),
            b: "BATHS".into(),
        }),
        h(Predicate::IsNumeric {
            label: "BEDS".into(),
        }),
        h(Predicate::IsNumeric {
            label: "BATHS".into(),
        }),
        h(Predicate::IsNumeric {
            label: "SQFT".into(),
        }),
        h(Predicate::IsNumeric {
            label: "YEAR-BUILT".into(),
        }),
        h(Predicate::IsNumeric {
            label: "PRICE".into(),
        }),
        h(Predicate::IsNumeric {
            label: "ZIP".into(),
        }),
        h(Predicate::IsTextual {
            label: "DESCRIPTION".into(),
        }),
        h(Predicate::IsTextual {
            label: "CITY".into(),
        }),
        h(Predicate::IsTextual {
            label: "AGENT-NAME".into(),
        }),
        DomainConstraint::soft(Predicate::AtMostK {
            label: "DESCRIPTION".into(),
            k: 2,
        }),
        DomainConstraint::numeric(
            Predicate::Proximity {
                a: "AGENT-NAME".into(),
                b: "AGENT-PHONE".into(),
            },
            0.2,
        ),
    ];

    let synonyms = vec![
        ("location", "address"),
        ("comments", "description"),
        ("remarks", "description"),
        ("details", "description"),
        ("phone", "telephone"),
        ("cost", "price"),
        ("home", "house"),
        ("listing", "house"),
        ("town", "city"),
        ("realtor", "agent"),
        ("office", "firm"),
        ("company", "firm"),
        ("br", "bedrooms"),
        ("ba", "bathrooms"),
        ("yr", "year"),
        ("size", "sqft"),
        ("ac", "cooling"),
        ("heat", "heating"),
        ("zipcode", "zip"),
        ("postal", "zip"),
        ("cool", "cooling"),
        ("cond", "cooling"),
        ("air", "cooling"),
        ("sq", "sqft"),
        ("square", "sqft"),
        ("feet", "sqft"),
        ("extras", "features"),
        ("amenities", "features"),
        ("props", "features"),
        ("built", "year"),
        ("addr", "address"),
        ("str", "street"),
        ("brokerage", "firm"),
        ("agent", "contact"),
    ];

    with_blanket_nesting(with_blanket_frequency(DomainSpec {
        name: "Real Estate I",
        concepts,
        mediated_root,
        sources,
        constraints,
        synonyms,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::SchemaTree;

    #[test]
    fn table3_mediated_statistics() {
        let s = spec();
        s.validate().unwrap();
        let dtd = s.mediated_dtd();
        let tree = SchemaTree::from_dtd(&dtd).unwrap();
        assert_eq!(tree.len(), 20, "Table 3: 20 mediated tags");
        assert_eq!(tree.non_leaf_tags().count(), 4, "Table 3: 4 non-leaf tags");
        assert_eq!(tree.max_depth(), 3, "Table 3: depth 3");
    }

    #[test]
    fn table3_source_statistics() {
        let s = spec();
        for i in 0..5 {
            let dtd = s.source_dtd(i);
            let tree = SchemaTree::from_dtd(&dtd).unwrap();
            assert!(
                (19..=21).contains(&tree.len()),
                "{}: {} tags",
                s.sources[i].name,
                tree.len()
            );
            assert!(tree.non_leaf_tags().count() <= 4);
            assert!(tree.max_depth() <= 3);
        }
    }
}
