//! # lsd-datagen
//!
//! Synthetic reproductions of the four evaluation domains of the LSD paper
//! (Table 3): **Real Estate I**, **Time Schedule**, **Faculty Listings**
//! and **Real Estate II**.
//!
//! The paper evaluated on five web sources per domain, scraped in 2000
//! (realestate.com, homeseekers.com, university time schedules, CS faculty
//! pages). Those sources no longer exist and no public dump survives, so —
//! per the substitution rule in DESIGN.md — this crate generates synthetic
//! domains that reproduce Table 3's *structural statistics* (tag counts,
//! non-leaf tags, DTD depth, listing counts, matchable percentages) and
//! embed the learnable signals the paper's learners exploit:
//!
//! - per-source tag-name vocabularies that overlap through synonyms and
//!   shared words (name matcher);
//! - label-indicative word frequencies in free-text fields (Naive Bayes,
//!   content matcher);
//! - formatted values — prices, phones, course codes — whose shape is the
//!   signal (format learner, value distributions);
//! - nested agent/office/contact structure that flat bags of words confuse
//!   but structure tokens separate (XML learner);
//! - integrity regularities — keys, frequencies, nestings — for the
//!   constraint handler;
//! - deliberate noise: ambiguous tag names, unmatchable OTHER tags, dirty
//!   values ("unknown", "n/a"), so the matching task stays non-trivial.
//!
//! Entry point: [`generate_domain`] (or [`DomainId::generate`]).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod domains;
pub mod emit;
mod engine;
mod spec;
mod values;
mod vocab;

pub use emit::{emit_bare_xml, emit_csv, emit_json, emit_sql, emit_xml, leaf_columns};
pub use engine::{GeneratedDomain, GeneratedSource};
pub use spec::{ConceptDef, ConceptId, DomainSpec, SourceStructure, TreeNode};
pub use values::ValueKind;

use lsd_xml::Dtd;

/// The four evaluation domains of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainId {
    /// Houses for sale; small mediated schema (Table 3 row 1).
    RealEstate1,
    /// University course offerings (Table 3 row 2).
    TimeSchedule,
    /// CS faculty profiles (Table 3 row 3).
    FacultyListings,
    /// Houses for sale; large mediated schema, deep structure (Table 3
    /// row 4).
    RealEstate2,
}

impl DomainId {
    /// All four domains, in the paper's order.
    pub const ALL: [DomainId; 4] = [
        DomainId::RealEstate1,
        DomainId::TimeSchedule,
        DomainId::FacultyListings,
        DomainId::RealEstate2,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            DomainId::RealEstate1 => "Real Estate I",
            DomainId::TimeSchedule => "Time Schedule",
            DomainId::FacultyListings => "Faculty Listings",
            DomainId::RealEstate2 => "Real Estate II",
        }
    }

    /// The domain specification (schemas, concepts, constraints, synonyms).
    pub fn spec(self) -> DomainSpec {
        match self {
            DomainId::RealEstate1 => domains::real_estate1::spec(),
            DomainId::TimeSchedule => domains::time_schedule::spec(),
            DomainId::FacultyListings => domains::faculty::spec(),
            DomainId::RealEstate2 => domains::real_estate2::spec(),
        }
    }

    /// Default listings per source, the midpoint of Table 3's download
    /// ranges (Real Estate 502–3002, Time Schedule 704–3925, Faculty
    /// 32–73). The paper's headline experiments use 300 listings, so that
    /// is the practical default for the experiment harness.
    pub fn default_listings(self) -> usize {
        match self {
            DomainId::RealEstate1 | DomainId::RealEstate2 => 300,
            DomainId::TimeSchedule => 300,
            DomainId::FacultyListings => 50,
        }
    }

    /// Generates the domain with `listings_per_source` listings for each of
    /// the five sources.
    pub fn generate(self, listings_per_source: usize, seed: u64) -> GeneratedDomain {
        generate_domain(self, listings_per_source, seed)
    }
}

/// Generates one domain: the mediated DTD, five sources with their DTDs,
/// listings and ground-truth mappings, the domain constraints and the
/// name-matcher synonym table.
pub fn generate_domain(id: DomainId, listings_per_source: usize, seed: u64) -> GeneratedDomain {
    engine::generate(&id.spec(), listings_per_source, seed)
}

/// Convenience: just the mediated DTD of a domain.
pub fn mediated_dtd(id: DomainId) -> Dtd {
    id.spec().mediated_dtd()
}
