//! The generation engine: spec → DTDs, listings, ground truth.

use crate::spec::{DomainSpec, TreeNode};
use crate::values::{generate_value, ListingContext};
use lsd_constraints::DomainConstraint;
use lsd_xml::{Dtd, Element};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// One generated source: schema, data, and the ground-truth mapping used
/// for training and for scoring accuracy.
#[derive(Debug, Clone)]
pub struct GeneratedSource {
    /// Display name.
    pub name: String,
    /// The source DTD.
    pub dtd: Dtd,
    /// Generated listings, each valid under `dtd`.
    pub listings: Vec<Element>,
    /// Ground truth: source tag → mediated tag, for matchable tags only.
    pub mapping: HashMap<String, String>,
    /// Tags with a 1-1 match in the mediated schema.
    pub matchable_tags: usize,
    /// Total tags in the source schema.
    pub total_tags: usize,
}

impl GeneratedSource {
    /// Table 3's "Matchable Tags" percentage.
    pub fn matchable_percent(&self) -> f64 {
        100.0 * self.matchable_tags as f64 / self.total_tags as f64
    }
}

/// A fully generated domain.
#[derive(Debug, Clone)]
pub struct GeneratedDomain {
    /// Display name (Table 3 row).
    pub name: &'static str,
    /// The mediated DTD.
    pub mediated: Dtd,
    /// Domain constraints over mediated tags.
    pub constraints: Vec<DomainConstraint>,
    /// Name-matcher synonym pairs.
    pub synonyms: Vec<(String, String)>,
    /// The five sources.
    pub sources: Vec<GeneratedSource>,
}

/// Generates a domain from its spec. Deterministic for a given
/// `(spec, listings_per_source, seed)` triple.
pub fn generate(spec: &DomainSpec, listings_per_source: usize, seed: u64) -> GeneratedDomain {
    spec.validate()
        .unwrap_or_else(|e| panic!("invalid domain spec: {e}"));
    let mediated = spec.mediated_dtd();
    let sources = spec
        .sources
        .iter()
        .enumerate()
        .map(|(s, structure)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E37_79B9));
            let dtd = spec.source_dtd(s);
            let listings = (0..listings_per_source)
                .map(|ordinal| {
                    let ctx = ListingContext::sample(ordinal, &mut rng);
                    build_listing(spec, &structure.root, s, &ctx, &mut rng)
                })
                .collect();
            let mapping: HashMap<String, String> = structure
                .root
                .concepts()
                .into_iter()
                .filter_map(|c| {
                    spec.concepts[c]
                        .mediated
                        .map(|m| (spec.concepts[c].name_in(s).to_string(), m.to_string()))
                })
                .collect();
            let total_tags = dtd.len();
            GeneratedSource {
                name: structure.name.to_string(),
                dtd,
                listings,
                matchable_tags: mapping.len(),
                total_tags,
                mapping,
            }
        })
        .collect();
    GeneratedDomain {
        name: spec.name,
        mediated,
        constraints: spec.constraints.clone(),
        synonyms: spec
            .synonyms
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
        sources,
    }
}

/// Probability that a leaf value absorbs a fragment of its following
/// sibling — simulated wrapper segmentation noise. The paper's listings
/// were extracted from HTML by wrappers with "only trivial data cleaning";
/// mis-segmented field boundaries are the dominant noise of that pipeline
/// and the reason its content-based learners top out well below 100%.
const SEGMENTATION_NOISE: f64 = 0.08;

/// Generates one listing element by walking the source tree.
fn build_listing(
    spec: &DomainSpec,
    node: &TreeNode,
    source: usize,
    ctx: &ListingContext,
    rng: &mut ChaCha8Rng,
) -> Element {
    match node {
        TreeNode::Leaf(c) => {
            let def = &spec.concepts[*c];
            let kind = def.kind.expect("validated: leaves have generators");
            Element::text_leaf(def.name_in(source), generate_value(kind, source, ctx, rng))
        }
        TreeNode::Group(c, children) => {
            let def = &spec.concepts[*c];
            let mut element = Element::new(def.name_in(source));
            for child in children {
                let child_def = &spec.concepts[child.concept()];
                if child_def.optional > 0.0 && rng.gen_bool(child_def.optional) {
                    continue;
                }
                element.push_child(build_listing(spec, child, source, ctx, rng));
            }
            smear_adjacent_leaves(&mut element, rng);
            element
        }
    }
}

/// Wrapper segmentation noise: occasionally append the leading half of the
/// next sibling leaf's text to the current leaf (both keep their values —
/// boundaries in scraped HTML are fuzzy, not lossy).
fn smear_adjacent_leaves(group: &mut Element, rng: &mut ChaCha8Rng) {
    for i in 0..group.children.len().saturating_sub(1) {
        if !rng.gen_bool(SEGMENTATION_NOISE) {
            continue;
        }
        let (Some(next_text), true) = (
            group.children[i + 1]
                .as_element()
                .filter(|e| e.is_leaf())
                .map(Element::direct_text),
            group.children[i].as_element().is_some_and(Element::is_leaf),
        ) else {
            continue;
        };
        let words: Vec<&str> = next_text.split_whitespace().collect();
        if words.is_empty() {
            continue;
        }
        let take = (words.len() / 2).max(1);
        let fragment = words[..take].join(" ");
        if let Some(lsd_xml::Node::Element(e)) = group.children.get_mut(i) {
            if let Some(lsd_xml::Node::Text(t)) = e.children.last_mut() {
                t.push(' ');
                t.push_str(&fragment);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::DomainId;

    #[test]
    fn generation_is_deterministic() {
        let a = DomainId::RealEstate1.generate(5, 42);
        let b = DomainId::RealEstate1.generate(5, 42);
        for (sa, sb) in a.sources.iter().zip(&b.sources) {
            assert_eq!(sa.listings, sb.listings);
        }
        let c = DomainId::RealEstate1.generate(5, 43);
        assert_ne!(a.sources[0].listings, c.sources[0].listings);
    }

    #[test]
    fn listings_validate_against_their_dtd() {
        for id in DomainId::ALL {
            let d = id.generate(8, 7);
            for src in &d.sources {
                for listing in &src.listings {
                    src.dtd
                        .validate(listing)
                        .unwrap_or_else(|e| panic!("{} / {}: {e}", d.name, src.name));
                }
            }
        }
    }

    #[test]
    fn mappings_target_mediated_tags() {
        for id in DomainId::ALL {
            let d = id.generate(2, 1);
            let mediated_tags: std::collections::HashSet<&str> =
                d.mediated.element_names().collect();
            for src in &d.sources {
                assert!(!src.mapping.is_empty());
                for (tag, label) in &src.mapping {
                    assert!(src.dtd.decl(tag).is_some(), "{tag} not in {}", src.name);
                    assert!(
                        mediated_tags.contains(label.as_str()),
                        "{label} not mediated"
                    );
                }
            }
        }
    }

    #[test]
    fn matchable_percentages_in_table3_ranges() {
        let expected: [(crate::DomainId, f64, f64); 4] = [
            (DomainId::RealEstate1, 84.0, 100.0),
            (DomainId::TimeSchedule, 95.0, 100.0),
            (DomainId::FacultyListings, 100.0, 100.0),
            (DomainId::RealEstate2, 100.0, 100.0),
        ];
        for (id, lo, hi) in expected {
            let d = id.generate(2, 1);
            for src in &d.sources {
                let pct = src.matchable_percent();
                assert!(
                    (lo - 1e-9..=hi + 1e-9).contains(&pct),
                    "{} / {}: {pct:.1}% outside [{lo}, {hi}]",
                    d.name,
                    src.name
                );
            }
        }
    }
}
