//! Property-based tests for the domain generators: every generated dataset
//! must be structurally valid and internally consistent, for any seed and
//! any listing count.

use lsd_datagen::DomainId;
use lsd_xml::SchemaTree;
use proptest::prelude::*;

fn arb_domain() -> impl Strategy<Value = DomainId> {
    prop_oneof![
        Just(DomainId::RealEstate1),
        Just(DomainId::TimeSchedule),
        Just(DomainId::FacultyListings),
        Just(DomainId::RealEstate2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any seed: listings validate against their DTD, mappings point at
    /// declared tags and mediated labels, and the requested listing count
    /// is honoured.
    #[test]
    fn generated_domains_are_valid(id in arb_domain(), listings in 1usize..12, seed in any::<u64>()) {
        let domain = id.generate(listings, seed);
        let mediated: std::collections::HashSet<&str> =
            domain.mediated.element_names().collect();
        prop_assert_eq!(domain.sources.len(), 5);
        for source in &domain.sources {
            prop_assert_eq!(source.listings.len(), listings);
            for listing in &source.listings {
                source.dtd.validate(listing).map_err(|e| {
                    TestCaseError::fail(format!("{}/{}: {e}", domain.name, source.name))
                })?;
            }
            for (tag, label) in &source.mapping {
                prop_assert!(source.dtd.decl(tag).is_some());
                prop_assert!(mediated.contains(label.as_str()));
            }
            // The schema tree always builds (closed DTD, unique root).
            let tree = SchemaTree::from_dtd(&source.dtd).expect("valid schema");
            prop_assert!(tree.len() >= 10);
        }
    }

    /// The domain constraints never contradict the ground truth: the true
    /// mapping of every source is feasible under every hard constraint.
    #[test]
    fn truth_is_feasible_under_domain_constraints(id in arb_domain(), seed in any::<u64>()) {
        use lsd_constraints::{evaluate_partial, MatchingContext};
        use lsd_learn::{LabelSet, Prediction};

        let domain = id.generate(40, seed);
        let labels = LabelSet::new(domain.mediated.element_names().map(str::to_string));
        for source in &domain.sources {
            let schema = SchemaTree::from_dtd(&source.dtd).expect("valid schema");
            let tags: Vec<String> = schema.tag_names().map(str::to_string).collect();
            let data = lsd_core::build_source_data(
                tags.iter().map(String::as_str),
                &source.listings,
            );
            let ctx = MatchingContext {
                labels: &labels,
                schema: &schema,
                tags: tags.clone(),
                predictions: vec![Prediction::uniform(labels.len()); tags.len()],
                data: &data,
                alpha: 1.0,
            };
            let truth: Vec<Option<usize>> = tags
                .iter()
                .map(|t| {
                    Some(
                        source
                            .mapping
                            .get(t)
                            .and_then(|m| labels.get(m))
                            .unwrap_or_else(|| labels.other()),
                    )
                })
                .collect();
            let cost = evaluate_partial(&ctx, &domain.constraints, &truth);
            prop_assert!(
                cost.is_finite(),
                "{}/{} (seed {seed}): ground truth infeasible",
                domain.name,
                source.name
            );
        }
    }
}
