//! # lsd-analysis
//!
//! Static diagnostics for LSD inputs, run *before* any training or
//! matching. Two families of lints share one [`Diagnostic`] type and one
//! rustc-style renderer:
//!
//! - **Schema lints** (`LSD001`–`LSD005`, [`analyze_dtd`]) check a parsed
//!   DTD: content models must be 1-unambiguous (Glushkov determinism),
//!   referenced elements must be declared, declared elements should be
//!   reachable, recursion needs a base case, and attributes must not be
//!   declared twice.
//! - **Constraint lints** (`LSD101`–`LSD106`, [`analyze_constraints`])
//!   check a domain-constraint set against the mediated label set: label
//!   names must exist, hard constraints must not contradict each other
//!   (a label both required and excluded, conflicting tag feedback, a
//!   statically unsatisfiable set), and duplicates / degenerate entries
//!   are flagged.
//!
//! - **Artifact audits** (`LSD2xx`, [`audit_snapshot`] / [`audit_wal`] /
//!   [`audit_registry`]) statically check the *serving* artifacts on disk:
//!   `SavedModel` snapshots (`LSD20x` — untrained or degenerate learners,
//!   non-finite stacking weights, label-set skew, mediated-DTD
//!   disagreement), feedback WALs (`LSD21x` — torn tails, mid-file CRC
//!   corruption, fold points beyond the log, corrections naming unknown
//!   labels), and whole registry directories (`LSD22x` — duplicate slugs,
//!   version skew, mediated-DTD drift, orphaned WALs).
//!
//! `Error`-severity findings make `Lsd::train` / `Lsd::set_constraints`
//! refuse the input; `Warning`s pass through and are counted in the
//! `lsd-obs` metrics registry. The `lsd-lint` and `lsd-audit` binaries
//! (in `crates/bench`) render the same diagnostics for artifacts on disk,
//! and `lsd-serve --strict-audit` gates registry loads on a clean audit.
//!
//! ```
//! use lsd_analysis::{analyze_dtd, render_all};
//!
//! let dtd = lsd_xml::parse_dtd("<!ELEMENT r ((a, b) | (a, c))>\n\
//!                               <!ELEMENT a (#PCDATA)>\n\
//!                               <!ELEMENT b (#PCDATA)>\n\
//!                               <!ELEMENT c (#PCDATA)>").unwrap();
//! let diags = analyze_dtd(&dtd);
//! assert_eq!(diags[0].code.as_str(), "LSD001");
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod artifact;
mod constraints;
mod diagnostic;
mod glushkov;
mod registry_audit;
mod render;
mod schema;
mod wal_audit;

pub use artifact::{
    audit_snapshot, audit_snapshot_with_summary, SnapshotSummary, MIN_INFERRED_SUPPORT,
};
pub use constraints::analyze_constraints;
pub use diagnostic::{has_errors, Code, Diagnostic, Severity};
pub use glushkov::{check_one_unambiguous, Ambiguity, GlushkovAutomaton};
pub use registry_audit::audit_registry;
pub use render::{render, render_all};
pub use schema::analyze_dtd;
pub use wal_audit::{audit_wal, WalAuditContext};

use lsd_constraints::DomainConstraint;
use lsd_learn::LabelSet;
use lsd_xml::Dtd;

/// Analyzes a schema and a constraint set together: schema findings first,
/// then constraint findings. This is what `Lsd::analyze` runs over the
/// mediated schema and the configured constraints.
pub fn analyze(dtd: &Dtd, labels: &LabelSet, constraints: &[DomainConstraint]) -> Vec<Diagnostic> {
    let mut out = analyze_dtd(dtd);
    out.extend(analyze_constraints(labels, constraints));
    out
}

/// Stamps every diagnostic with an origin label (file name, "mediated
/// schema", ...), preserving origins already set.
pub fn with_origin(diagnostics: Vec<Diagnostic>, origin: &str) -> Vec<Diagnostic> {
    diagnostics
        .into_iter()
        .map(|d| {
            if d.origin.is_some() {
                d
            } else {
                d.with_origin(origin)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::parse_dtd;

    #[test]
    fn combined_analysis_concatenates_both_fronts() {
        let dtd = parse_dtd("<!ELEMENT r (ghost)>").unwrap();
        let labels = LabelSet::new(["PRICE"]);
        let constraints = vec![lsd_constraints::DomainConstraint::hard(
            lsd_constraints::Predicate::ExactlyOne {
                label: "MISSING".into(),
            },
        )];
        let diags = analyze(&dtd, &labels, &constraints);
        let codes: Vec<_> = diags.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, ["LSD002", "LSD101"]);
    }

    #[test]
    fn with_origin_fills_only_missing() {
        let d1 = Diagnostic::new(Code::UnreachableElement, "a").with_origin("explicit");
        let d2 = Diagnostic::new(Code::UnreachableElement, "b");
        let tagged = with_origin(vec![d1, d2], "default");
        assert_eq!(tagged[0].origin.as_deref(), Some("explicit"));
        assert_eq!(tagged[1].origin.as_deref(), Some("default"));
    }

    /// Every datagen domain must pass its own static analysis: the
    /// mediated schema, each source DTD, and the domain constraint set are
    /// all clean.
    #[test]
    fn datagen_domains_are_clean() {
        for id in lsd_datagen::DomainId::ALL {
            let spec = id.spec();
            let mediated = spec.mediated_dtd();
            assert_eq!(
                analyze_dtd(&mediated),
                Vec::new(),
                "mediated schema of {}",
                spec.name
            );
            let labels = LabelSet::new(mediated.element_names().map(str::to_string));
            assert_eq!(
                analyze_constraints(&labels, &spec.constraints),
                Vec::new(),
                "constraints of {}",
                spec.name
            );
            for s in 0..spec.sources.len() {
                assert_eq!(
                    analyze_dtd(&spec.source_dtd(s)),
                    Vec::new(),
                    "source {s} of {}",
                    spec.name
                );
            }
        }
    }
}
