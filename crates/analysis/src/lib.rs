//! # lsd-analysis
//!
//! Static diagnostics for LSD inputs, run *before* any training or
//! matching. Two families of lints share one [`Diagnostic`] type and one
//! rustc-style renderer:
//!
//! - **Schema lints** (`LSD001`–`LSD005`, [`analyze_dtd`]) check a parsed
//!   DTD: content models must be 1-unambiguous (Glushkov determinism),
//!   referenced elements must be declared, declared elements should be
//!   reachable, recursion needs a base case, and attributes must not be
//!   declared twice.
//! - **Constraint lints** (`LSD101`–`LSD106`, [`analyze_constraints`])
//!   check a domain-constraint set against the mediated label set: label
//!   names must exist, hard constraints must not contradict each other
//!   (a label both required and excluded, conflicting tag feedback, a
//!   statically unsatisfiable set), and duplicates / degenerate entries
//!   are flagged.
//!
//! `Error`-severity findings make `Lsd::train` / `Lsd::set_constraints`
//! refuse the input; `Warning`s pass through and are counted in the
//! `lsd-obs` metrics registry. The `lsd-lint` binary (in `crates/bench`)
//! renders the same diagnostics for DTD files on disk.
//!
//! ```
//! use lsd_analysis::{analyze_dtd, render_all};
//!
//! let dtd = lsd_xml::parse_dtd("<!ELEMENT r ((a, b) | (a, c))>\n\
//!                               <!ELEMENT a (#PCDATA)>\n\
//!                               <!ELEMENT b (#PCDATA)>\n\
//!                               <!ELEMENT c (#PCDATA)>").unwrap();
//! let diags = analyze_dtd(&dtd);
//! assert_eq!(diags[0].code.as_str(), "LSD001");
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod constraints;
mod diagnostic;
mod glushkov;
mod render;
mod schema;

pub use constraints::analyze_constraints;
pub use diagnostic::{has_errors, Code, Diagnostic, Severity};
pub use glushkov::{check_one_unambiguous, Ambiguity};
pub use render::{render, render_all};
pub use schema::analyze_dtd;

use lsd_constraints::DomainConstraint;
use lsd_learn::LabelSet;
use lsd_xml::Dtd;

/// Analyzes a schema and a constraint set together: schema findings first,
/// then constraint findings. This is what `Lsd::analyze` runs over the
/// mediated schema and the configured constraints.
pub fn analyze(dtd: &Dtd, labels: &LabelSet, constraints: &[DomainConstraint]) -> Vec<Diagnostic> {
    let mut out = analyze_dtd(dtd);
    out.extend(analyze_constraints(labels, constraints));
    out
}

/// Stamps every diagnostic with an origin label (file name, "mediated
/// schema", ...), preserving origins already set.
pub fn with_origin(diagnostics: Vec<Diagnostic>, origin: &str) -> Vec<Diagnostic> {
    diagnostics
        .into_iter()
        .map(|d| {
            if d.origin.is_some() {
                d
            } else {
                d.with_origin(origin)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsd_xml::parse_dtd;

    #[test]
    fn combined_analysis_concatenates_both_fronts() {
        let dtd = parse_dtd("<!ELEMENT r (ghost)>").unwrap();
        let labels = LabelSet::new(["PRICE"]);
        let constraints = vec![lsd_constraints::DomainConstraint::hard(
            lsd_constraints::Predicate::ExactlyOne {
                label: "MISSING".into(),
            },
        )];
        let diags = analyze(&dtd, &labels, &constraints);
        let codes: Vec<_> = diags.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, ["LSD002", "LSD101"]);
    }

    #[test]
    fn with_origin_fills_only_missing() {
        let d1 = Diagnostic::new(Code::UnreachableElement, "a").with_origin("explicit");
        let d2 = Diagnostic::new(Code::UnreachableElement, "b");
        let tagged = with_origin(vec![d1, d2], "default");
        assert_eq!(tagged[0].origin.as_deref(), Some("explicit"));
        assert_eq!(tagged[1].origin.as_deref(), Some("default"));
    }

    /// Every datagen domain must pass its own static analysis: the
    /// mediated schema, each source DTD, and the domain constraint set are
    /// all clean.
    #[test]
    fn datagen_domains_are_clean() {
        for id in lsd_datagen::DomainId::ALL {
            let spec = id.spec();
            let mediated = spec.mediated_dtd();
            assert_eq!(
                analyze_dtd(&mediated),
                Vec::new(),
                "mediated schema of {}",
                spec.name
            );
            let labels = LabelSet::new(mediated.element_names().map(str::to_string));
            assert_eq!(
                analyze_constraints(&labels, &spec.constraints),
                Vec::new(),
                "constraints of {}",
                spec.name
            );
            for s in 0..spec.sources.len() {
                assert_eq!(
                    analyze_dtd(&spec.source_dtd(s)),
                    Vec::new(),
                    "source {s} of {}",
                    spec.name
                );
            }
        }
    }
}
