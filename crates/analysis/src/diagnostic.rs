//! The diagnostic value type: code, severity, message, span and notes.

use lsd_xml::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a diagnostic is. `Error` diagnostics are rejected by
/// `Lsd::train` / `Lsd::set_constraints`; `Warning` diagnostics pass
/// through (and are counted in the `lsd-obs` metrics registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but workable: the pipeline proceeds.
    Warning,
    /// The input cannot be used reliably: the pipeline refuses it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable diagnostic codes. `LSD0xx` codes are schema lints over a
/// parsed DTD; `LSD1xx` codes are constraint lints over a compiled
/// domain-constraint set; `LSD2xx` codes are artifact audits over serving
/// artifacts on disk (`LSD20x` snapshots, `LSD21x` feedback WALs, `LSD22x`
/// registry directories, `LSD23x` inferred-schema provenance). Each code
/// has exactly one default [`Severity`], listed in the table in
/// `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Code {
    /// LSD001 — a content model is not 1-unambiguous (its Glushkov
    /// automaton is non-deterministic).
    AmbiguousContentModel,
    /// LSD002 — a content model or attribute list references an element
    /// that is never declared.
    UndeclaredElementRef,
    /// LSD003 — a declared element is unreachable from the root.
    UnreachableElement,
    /// LSD004 — an element recurses with no `#PCDATA`/`EMPTY`/optional
    /// base case, so it can derive no finite document.
    NoFiniteDerivation,
    /// LSD005 — the same attribute is declared twice for one element.
    DuplicateAttribute,
    /// LSD101 — a constraint references a label absent from the mediated
    /// schema.
    UnknownLabel,
    /// LSD102 — a label is both required (hard `ExactlyOne` / `TagIs`)
    /// and excluded (hard `AtMostK` with `k = 0`, or a degenerate hard
    /// self-`NestedIn`).
    LabelRequiredAndExcluded,
    /// LSD103 — tag-level feedback contradicts itself (`TagIs` vs
    /// `TagIsNot` on the same pair, or two `TagIs` with different labels
    /// for one tag).
    ConflictingTagFeedback,
    /// LSD104 — the hard-constraint set statically prunes every complete
    /// mapping (e.g. two mandatory labels are mutually exclusive), so the
    /// A\* search can never return a feasible result.
    UnsatisfiableConstraintSet,
    /// LSD105 — the same constraint appears more than once (soft
    /// duplicates double-count their violation cost).
    DuplicateConstraint,
    /// LSD106 — a degenerate constraint: a soft constraint with a
    /// non-positive cost or weight, or a pair predicate relating a label
    /// to itself.
    DegenerateConstraint,
    /// LSD201 — a snapshot claims `trained: false`; it can never serve.
    SnapshotUntrained,
    /// LSD202 — a meta-learner stacking weight is not a finite number
    /// (`null` is how a JSON serializer writes NaN/Infinity).
    NonFiniteMetaWeight,
    /// LSD203 — a base learner's stacking-weight column is all zero: the
    /// learner is carried in the snapshot but contributes nothing.
    ZeroWeightLearner,
    /// LSD204 — a trained snapshot carries a learner with no training
    /// state (empty WHIRL vocabulary / zero observed documents).
    EmptyLearnerState,
    /// LSD205 — the meta-weight matrix shape disagrees with the label set
    /// or learner list (a label present in the matrix but absent from the
    /// label set, or vice versa).
    MetaLabelSkew,
    /// LSD206 — the snapshot's mediated DTD does not parse, or its element
    /// names disagree with the stored label set.
    MediatedDtdMismatch,
    /// LSD207 — the snapshot is not a well-formed `SavedModel` document
    /// (unparseable JSON, missing or mistyped required fields).
    MalformedSnapshot,
    /// LSD211 — a feedback WAL does not start with the `LSDWAL01` magic.
    WalBadMagic,
    /// LSD212 — a feedback WAL ends in a torn record (crash residue; the
    /// valid prefix is still replayable).
    WalTornTail,
    /// LSD213 — a WAL record's payload fails its CRC-32 mid-file: silent
    /// corruption, not a torn append.
    WalCorruptRecord,
    /// LSD214 — a snapshot's `feedback_applied` fold point lies beyond the
    /// end of its companion WAL (the fold point regressed, or the WAL was
    /// rewritten underneath the model).
    WalFoldPointBeyondLength,
    /// LSD215 — a WAL correction names a label absent from the companion
    /// model's label set.
    WalUnknownLabel,
    /// LSD216 — correction timestamps go backwards across the WAL.
    WalNonMonotoneTimestamps,
    /// LSD221 — two registry snapshots normalize to the same model slug.
    RegistryDuplicateSlug,
    /// LSD222 — registry snapshots carry different format versions.
    RegistryVersionSkew,
    /// LSD223 — two models with identical label sets (the same domain)
    /// disagree on the mediated DTD.
    RegistryDtdDrift,
    /// LSD224 — a feedback WAL has no companion model snapshot.
    RegistryOrphanWal,
    /// LSD231 — a snapshot was trained on a source whose schema was
    /// *inferred* from the instances, and some inferred element rests on
    /// too few observations to trust its content model.
    InferredSchemaLowSupport,
}

impl Code {
    /// The stable `LSDxxx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::AmbiguousContentModel => "LSD001",
            Code::UndeclaredElementRef => "LSD002",
            Code::UnreachableElement => "LSD003",
            Code::NoFiniteDerivation => "LSD004",
            Code::DuplicateAttribute => "LSD005",
            Code::UnknownLabel => "LSD101",
            Code::LabelRequiredAndExcluded => "LSD102",
            Code::ConflictingTagFeedback => "LSD103",
            Code::UnsatisfiableConstraintSet => "LSD104",
            Code::DuplicateConstraint => "LSD105",
            Code::DegenerateConstraint => "LSD106",
            Code::SnapshotUntrained => "LSD201",
            Code::NonFiniteMetaWeight => "LSD202",
            Code::ZeroWeightLearner => "LSD203",
            Code::EmptyLearnerState => "LSD204",
            Code::MetaLabelSkew => "LSD205",
            Code::MediatedDtdMismatch => "LSD206",
            Code::MalformedSnapshot => "LSD207",
            Code::WalBadMagic => "LSD211",
            Code::WalTornTail => "LSD212",
            Code::WalCorruptRecord => "LSD213",
            Code::WalFoldPointBeyondLength => "LSD214",
            Code::WalUnknownLabel => "LSD215",
            Code::WalNonMonotoneTimestamps => "LSD216",
            Code::RegistryDuplicateSlug => "LSD221",
            Code::RegistryVersionSkew => "LSD222",
            Code::RegistryDtdDrift => "LSD223",
            Code::RegistryOrphanWal => "LSD224",
            Code::InferredSchemaLowSupport => "LSD231",
        }
    }

    /// The default severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::AmbiguousContentModel
            | Code::UndeclaredElementRef
            | Code::NoFiniteDerivation
            | Code::UnknownLabel
            | Code::LabelRequiredAndExcluded
            | Code::ConflictingTagFeedback
            | Code::UnsatisfiableConstraintSet
            | Code::SnapshotUntrained
            | Code::NonFiniteMetaWeight
            | Code::MetaLabelSkew
            | Code::MediatedDtdMismatch
            | Code::MalformedSnapshot
            | Code::WalBadMagic
            | Code::WalCorruptRecord
            | Code::WalFoldPointBeyondLength
            | Code::WalUnknownLabel
            | Code::RegistryDuplicateSlug => Severity::Error,
            Code::UnreachableElement
            | Code::DuplicateAttribute
            | Code::DuplicateConstraint
            | Code::DegenerateConstraint
            | Code::ZeroWeightLearner
            | Code::EmptyLearnerState
            | Code::WalTornTail
            | Code::WalNonMonotoneTimestamps
            | Code::RegistryVersionSkew
            | Code::RegistryDtdDrift
            | Code::RegistryOrphanWal
            | Code::InferredSchemaLowSupport => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the static-analysis pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The stable diagnostic code.
    pub code: Code,
    /// Error or warning (defaults to [`Code::severity`]).
    pub severity: Severity,
    /// One-line description of the finding.
    pub message: String,
    /// Byte span into the DTD source text, when the finding points at a
    /// declaration that carries a non-synthetic span.
    pub span: Option<Span>,
    /// What the analyzed text came from (a file name, `"mediated schema"`,
    /// `"source 'x.com'"`, ...), for the `-->` line of the rendering.
    pub origin: Option<String>,
    /// Extra context lines, rendered as `= note: ...`.
    pub notes: Vec<String>,
    /// A suggested fix, rendered as `= help: ...`.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no location.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            span: None,
            origin: None,
            notes: Vec::new(),
            help: None,
        }
    }

    /// Attaches a source span (ignored if synthetic — a synthetic span
    /// points nowhere useful).
    pub fn with_span(mut self, span: Span) -> Self {
        if !span.is_synthetic() {
            self.span = Some(span);
        }
        self
    }

    /// Labels the origin of the analyzed text.
    pub fn with_origin(mut self, origin: impl Into<String>) -> Self {
        self.origin = Some(origin.into());
        self
    }

    /// Appends a `= note:` line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Sets the `= help:` line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// True for error-severity diagnostics.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    /// The compact one-line form, `error[LSD001]: message`. Use
    /// [`crate::render`] for the full rustc-style block.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// True if any diagnostic in the slice is an error.
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(Diagnostic::is_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let all = [
            Code::AmbiguousContentModel,
            Code::UndeclaredElementRef,
            Code::UnreachableElement,
            Code::NoFiniteDerivation,
            Code::DuplicateAttribute,
            Code::UnknownLabel,
            Code::LabelRequiredAndExcluded,
            Code::ConflictingTagFeedback,
            Code::UnsatisfiableConstraintSet,
            Code::DuplicateConstraint,
            Code::DegenerateConstraint,
            Code::SnapshotUntrained,
            Code::NonFiniteMetaWeight,
            Code::ZeroWeightLearner,
            Code::EmptyLearnerState,
            Code::MetaLabelSkew,
            Code::MediatedDtdMismatch,
            Code::MalformedSnapshot,
            Code::WalBadMagic,
            Code::WalTornTail,
            Code::WalCorruptRecord,
            Code::WalFoldPointBeyondLength,
            Code::WalUnknownLabel,
            Code::WalNonMonotoneTimestamps,
            Code::RegistryDuplicateSlug,
            Code::RegistryVersionSkew,
            Code::RegistryDtdDrift,
            Code::RegistryOrphanWal,
            Code::InferredSchemaLowSupport,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for c in all {
            assert!(seen.insert(c.as_str()), "duplicate code {}", c.as_str());
            assert!(c.as_str().starts_with("LSD"));
        }
    }

    #[test]
    fn display_is_compact() {
        let d = Diagnostic::new(Code::AmbiguousContentModel, "model is ambiguous");
        assert_eq!(d.to_string(), "error[LSD001]: model is ambiguous");
        assert!(d.is_error());
    }

    #[test]
    fn synthetic_spans_are_dropped() {
        let d = Diagnostic::new(Code::UnreachableElement, "x").with_span(Span::SYNTHETIC);
        assert_eq!(d.span, None);
        let d = Diagnostic::new(Code::UnreachableElement, "x").with_span(Span::new(3, 9));
        assert_eq!(d.span, Some(Span::new(3, 9)));
    }

    #[test]
    fn has_errors_scans_severities() {
        let w = Diagnostic::new(Code::UnreachableElement, "w");
        let e = Diagnostic::new(Code::UndeclaredElementRef, "e");
        assert!(!has_errors(std::slice::from_ref(&w)));
        assert!(has_errors(&[w, e]));
    }
}
