//! Schema lints (`LSD001`–`LSD005`): static checks over a parsed DTD.

use crate::diagnostic::{Code, Diagnostic};
use crate::glushkov::check_one_unambiguous;
use lsd_xml::{ContentModel, Dtd, Occurrence};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Runs every schema lint over the DTD, in declaration order per rule.
pub fn analyze_dtd(dtd: &Dtd) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_ambiguous_models(dtd, &mut out);
    lint_undeclared_refs(dtd, &mut out);
    lint_unreachable(dtd, &mut out);
    lint_no_finite_derivation(dtd, &mut out);
    lint_duplicate_attributes(dtd, &mut out);
    out
}

/// LSD001 — content models must be 1-unambiguous (deterministic).
fn lint_ambiguous_models(dtd: &Dtd, out: &mut Vec<Diagnostic>) {
    for decl in dtd.declarations() {
        if let Some(witness) = check_one_unambiguous(&decl.content) {
            out.push(
                Diagnostic::new(
                    Code::AmbiguousContentModel,
                    format!(
                        "content model of `{}` is not 1-unambiguous: {}",
                        decl.name,
                        decl.content.to_dtd_syntax()
                    ),
                )
                .with_span(decl.span)
                .with_note(witness.describe())
                .with_help(
                    "rewrite the model so the next child name always determines a unique \
                     position, e.g. factor out the common prefix",
                ),
            );
        }
    }
}

/// LSD002 — every referenced element (content models and ATTLISTs) must be
/// declared.
fn lint_undeclared_refs(dtd: &Dtd, out: &mut Vec<Diagnostic>) {
    for decl in dtd.declarations() {
        let mut reported = BTreeSet::new();
        for name in decl.content.referenced_names() {
            if dtd.decl(&name).is_none() && reported.insert(name.clone()) {
                out.push(
                    Diagnostic::new(
                        Code::UndeclaredElementRef,
                        format!(
                            "content model of `{}` references undeclared element `{name}`",
                            decl.name
                        ),
                    )
                    .with_span(decl.span)
                    .with_help(format!(
                        "declare `<!ELEMENT {name} ...>` or drop the reference"
                    )),
                );
            }
        }
    }
    for attlist in dtd.attlists() {
        if dtd.decl(&attlist.element).is_none() {
            out.push(
                Diagnostic::new(
                    Code::UndeclaredElementRef,
                    format!(
                        "attribute list declared for undeclared element `{}`",
                        attlist.element
                    ),
                )
                .with_span(attlist.span),
            );
        }
    }
}

/// LSD003 — every declared element should be reachable from the root.
/// `ANY` content reaches every declared element.
fn lint_unreachable(dtd: &Dtd, out: &mut Vec<Diagnostic>) {
    let Ok(root) = dtd.root_name() else {
        return; // empty DTD: nothing to reach
    };
    let root = root.to_string();
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    let mut queue = VecDeque::from([root]);
    while let Some(name) = queue.pop_front() {
        if !reachable.insert(name.clone()) {
            continue;
        }
        let Some(decl) = dtd.decl(&name) else {
            continue; // undeclared refs are LSD002's business
        };
        match &decl.content {
            ContentModel::Any => {
                queue.extend(dtd.element_names().map(str::to_string));
            }
            content => queue.extend(content.referenced_names()),
        }
    }
    for decl in dtd.declarations() {
        if !reachable.contains(&decl.name) {
            out.push(
                Diagnostic::new(
                    Code::UnreachableElement,
                    format!("element `{}` is unreachable from the root", decl.name),
                )
                .with_span(decl.span)
                .with_note(format!(
                    "no content model reachable from the root references `{}`",
                    decl.name
                )),
            );
        }
    }
}

/// LSD004 — recursive elements need a base case. Computes the set of
/// elements with at least one *finite* derivation as a fixpoint: text and
/// empty content terminate, a name reference terminates if skippable
/// (`?`/`*`) or if its referent terminates, a sequence terminates when all
/// parts do, a choice when any branch does. Elements outside the fixpoint
/// can only derive infinite trees.
fn lint_no_finite_derivation(dtd: &Dtd, out: &mut Vec<Diagnostic>) {
    let mut terminates: BTreeMap<&str, bool> = dtd.element_names().map(|n| (n, false)).collect();
    loop {
        let mut changed = false;
        for decl in dtd.declarations() {
            if !terminates[decl.name.as_str()] && model_terminates(&decl.content, &terminates) {
                terminates.insert(&decl.name, true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for decl in dtd.declarations() {
        if !terminates[decl.name.as_str()] {
            out.push(
                Diagnostic::new(
                    Code::NoFiniteDerivation,
                    format!(
                        "element `{}` can derive no finite document: every expansion \
                         requires another `{}` (directly or transitively)",
                        decl.name, decl.name
                    ),
                )
                .with_span(decl.span)
                .with_help(
                    "give the recursion a base case, e.g. make the recursive reference \
                     optional (`?` or `*`) or add a non-recursive choice branch",
                ),
            );
        }
    }
}

fn model_terminates(model: &ContentModel, terminates: &BTreeMap<&str, bool>) -> bool {
    match model {
        ContentModel::Empty | ContentModel::Any | ContentModel::Pcdata | ContentModel::Mixed(_) => {
            true
        }
        ContentModel::Name(name, occ) => {
            skippable(*occ) || terminates.get(name.as_str()).copied().unwrap_or(true)
        }
        ContentModel::Seq(parts, occ) => {
            skippable(*occ) || parts.iter().all(|p| model_terminates(p, terminates))
        }
        ContentModel::Choice(parts, occ) => {
            skippable(*occ) || parts.iter().any(|p| model_terminates(p, terminates))
        }
    }
}

/// Zero repetitions allowed: the particle can be skipped entirely.
fn skippable(occ: Occurrence) -> bool {
    matches!(occ, Occurrence::Optional | Occurrence::ZeroOrMore)
}

/// LSD005 — an attribute declared twice for one element. XML makes the
/// second declaration dead (first binding wins), which usually signals a
/// copy-paste error.
fn lint_duplicate_attributes(dtd: &Dtd, out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
    for attlist in dtd.attlists() {
        for attr in &attlist.attrs {
            if !seen.insert((attlist.element.as_str(), attr.name.as_str())) {
                out.push(
                    Diagnostic::new(
                        Code::DuplicateAttribute,
                        format!(
                            "attribute `{}` is declared more than once for element `{}`",
                            attr.name, attlist.element
                        ),
                    )
                    .with_span(attr.span)
                    .with_note("the first declaration wins; this one is dead"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::has_errors;
    use lsd_xml::parse_dtd;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_dtd_has_no_diagnostics() {
        let dtd = parse_dtd(
            "<!ELEMENT listing (address, price, agent?)>\n\
             <!ELEMENT address (#PCDATA)>\n\
             <!ELEMENT price (#PCDATA)>\n\
             <!ELEMENT agent (#PCDATA)>\n\
             <!ATTLIST listing id CDATA #REQUIRED>",
        )
        .unwrap();
        assert_eq!(analyze_dtd(&dtd), Vec::new());
    }

    #[test]
    fn ambiguous_model_is_lsd001_with_span() {
        let text = "<!ELEMENT r ((a, b) | (a, c))>\n\
                    <!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>";
        let dtd = parse_dtd(text).unwrap();
        let diags = analyze_dtd(&dtd);
        assert_eq!(codes(&diags), ["LSD001"]);
        assert!(diags[0].is_error());
        let span = diags[0].span.expect("span points at the declaration");
        assert!(text[span.start..span.end].starts_with("<!ELEMENT r"));
    }

    #[test]
    fn undeclared_reference_is_lsd002() {
        let dtd = parse_dtd("<!ELEMENT r (ghost)>").unwrap();
        let diags = analyze_dtd(&dtd);
        assert!(codes(&diags).contains(&"LSD002"), "{diags:?}");
        assert!(has_errors(&diags));
        let d = diags
            .iter()
            .find(|d| d.code == Code::UndeclaredElementRef)
            .unwrap();
        assert!(d.message.contains("ghost"));
    }

    #[test]
    fn attlist_for_undeclared_element_is_lsd002() {
        let dtd = parse_dtd("<!ELEMENT r (#PCDATA)>\n<!ATTLIST ghost id CDATA #IMPLIED>").unwrap();
        let diags = analyze_dtd(&dtd);
        assert_eq!(codes(&diags), ["LSD002"]);
    }

    #[test]
    fn unreachable_element_is_lsd003_warning() {
        let dtd =
            parse_dtd("<!ELEMENT r (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT orphan (#PCDATA)>")
                .unwrap();
        let diags = analyze_dtd(&dtd);
        assert_eq!(codes(&diags), ["LSD003"]);
        assert!(!has_errors(&diags));
        assert!(diags[0].message.contains("orphan"));
    }

    #[test]
    fn any_content_reaches_everything() {
        let dtd =
            parse_dtd("<!ELEMENT r ANY>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>").unwrap();
        assert_eq!(analyze_dtd(&dtd), Vec::new());
    }

    #[test]
    fn baseless_recursion_is_lsd004() {
        let dtd = parse_dtd("<!ELEMENT r (r, r)>").unwrap();
        let diags = analyze_dtd(&dtd);
        assert_eq!(codes(&diags), ["LSD004"]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn mutual_recursion_without_base_case_is_lsd004_for_both() {
        let dtd = parse_dtd("<!ELEMENT a (b)>\n<!ELEMENT b (a)>").unwrap();
        let diags = analyze_dtd(&dtd);
        assert_eq!(codes(&diags), ["LSD004", "LSD004"]);
    }

    #[test]
    fn recursion_with_base_case_is_clean() {
        for text in [
            "<!ELEMENT r (a, r?)>\n<!ELEMENT a (#PCDATA)>",
            "<!ELEMENT r (r*, a)>\n<!ELEMENT a (#PCDATA)>",
            "<!ELEMENT r (r | a)>\n<!ELEMENT a (#PCDATA)>",
        ] {
            let dtd = parse_dtd(text).unwrap();
            assert_eq!(analyze_dtd(&dtd), Vec::new(), "{text}");
        }
    }

    #[test]
    fn duplicate_attribute_is_lsd005_with_attr_span() {
        let text = "<!ELEMENT r (#PCDATA)>\n\
                    <!ATTLIST r id CDATA #REQUIRED>\n\
                    <!ATTLIST r id CDATA #IMPLIED>";
        let dtd = parse_dtd(text).unwrap();
        let diags = analyze_dtd(&dtd);
        assert_eq!(codes(&diags), ["LSD005"]);
        assert!(!has_errors(&diags));
        let span = diags[0].span.expect("span points at the duplicate attr");
        assert_eq!(&text[span.start..span.end], "id");
        // The duplicate is the one in the *second* ATTLIST.
        assert!(span.start > text.find("#REQUIRED").unwrap());
    }

    #[test]
    fn multiple_rules_fire_together() {
        let dtd = parse_dtd(
            "<!ELEMENT r ((a, b) | (a, ghost))>\n\
             <!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>\n\
             <!ELEMENT dead (dead)>",
        )
        .unwrap();
        let got = codes(&analyze_dtd(&dtd));
        for expected in ["LSD001", "LSD002", "LSD003", "LSD004"] {
            assert!(got.contains(&expected), "missing {expected} in {got:?}");
        }
    }
}
