//! Constraint lints (`LSD101`–`LSD106`): static checks over a
//! domain-constraint set, before any source is matched.
//!
//! The raw constraint list is linted first ([`CompiledConstraintSet`] drops
//! entries naming unknown labels, so unknown-label and duplicate findings
//! must look at the originals), then the compiled set is introspected for
//! contradictions among the *hard* constraints — the ones that make the A\*
//! search return no feasible mapping at all.

use crate::diagnostic::{Code, Diagnostic};
use lsd_constraints::{CompiledConstraintSet, ConstraintKind, DomainConstraint, Predicate};
use lsd_learn::LabelSet;
use std::collections::{BTreeMap, BTreeSet};

/// Runs every constraint lint against a label set.
pub fn analyze_constraints(labels: &LabelSet, constraints: &[DomainConstraint]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_unknown_labels(labels, constraints, &mut out);
    lint_duplicates(constraints, &mut out);
    lint_degenerate(constraints, &mut out);
    let compiled = CompiledConstraintSet::compile(labels, constraints);
    lint_required_and_excluded(labels, &compiled, &mut out);
    lint_conflicting_tag_feedback(labels, &compiled, &mut out);
    lint_unsatisfiable(labels, &compiled, &mut out);
    out
}

/// LSD101 — constraints naming labels absent from the mediated schema.
/// Compilation silently drops such constraints, so without this lint a
/// typo in a label name simply disables the constraint.
fn lint_unknown_labels(
    labels: &LabelSet,
    constraints: &[DomainConstraint],
    out: &mut Vec<Diagnostic>,
) {
    for c in constraints {
        for name in c.predicate.label_names() {
            if labels.get(name).is_none() {
                out.push(
                    Diagnostic::new(
                        Code::UnknownLabel,
                        format!("constraint references unknown label `{name}`"),
                    )
                    .with_note(format!("in: {c}"))
                    .with_help(
                        "label names must match mediated-schema tags exactly \
                         (check spelling and case)",
                    ),
                );
            }
        }
    }
}

/// LSD105 — the same constraint listed twice. Harmless for hard
/// constraints, but soft duplicates double-count their violation cost.
fn lint_duplicates(constraints: &[DomainConstraint], out: &mut Vec<Diagnostic>) {
    for (i, c) in constraints.iter().enumerate() {
        if constraints[..i].contains(c) {
            out.push(
                Diagnostic::new(
                    Code::DuplicateConstraint,
                    format!("duplicate constraint: {c}"),
                )
                .with_note(if matches!(c.kind, ConstraintKind::Hard) {
                    "hard duplicates are redundant".to_string()
                } else {
                    "soft duplicates double-count their violation cost".to_string()
                }),
            );
        }
    }
}

/// LSD106 — constraints that cannot mean what they say: soft constraints
/// with non-positive cost or weight (they never change a ranking), and
/// pair predicates relating a label to itself.
fn lint_degenerate(constraints: &[DomainConstraint], out: &mut Vec<Diagnostic>) {
    for c in constraints {
        match c.kind {
            ConstraintKind::SoftBinary { cost } if cost <= 0.0 => {
                out.push(
                    Diagnostic::new(
                        Code::DegenerateConstraint,
                        format!("soft constraint has non-positive cost {cost}: {c}"),
                    )
                    .with_help("use a positive cost, or drop the constraint"),
                );
            }
            ConstraintKind::SoftNumeric { weight } if weight <= 0.0 => {
                out.push(
                    Diagnostic::new(
                        Code::DegenerateConstraint,
                        format!("numeric constraint has non-positive weight {weight}: {c}"),
                    )
                    .with_help("use a positive weight, or drop the constraint"),
                );
            }
            _ => {}
        }
        let self_pair = match &c.predicate {
            Predicate::NestedIn { outer, inner } | Predicate::NotNestedIn { outer, inner } => {
                outer == inner
            }
            Predicate::Contiguous { a, b }
            | Predicate::MutuallyExclusive { a, b }
            | Predicate::Proximity { a, b } => a == b,
            _ => false,
        };
        if self_pair {
            let mut d = Diagnostic::new(
                Code::DegenerateConstraint,
                format!("pair constraint relates a label to itself: {c}"),
            );
            if matches!(
                (&c.kind, &c.predicate),
                (ConstraintKind::Hard, Predicate::NestedIn { .. })
            ) {
                d = d.with_note(
                    "no element is nested in itself, so this hard constraint excludes the \
                     label from every mapping",
                );
            }
            out.push(d);
        }
    }
}

/// Labels that some hard constraint *requires* to appear: hard `ExactlyOne`
/// demands an assignment, and hard `TagIs` pins a tag to the label.
fn required_labels(set: &CompiledConstraintSet) -> BTreeMap<usize, &'static str> {
    let mut required = BTreeMap::new();
    for l in set.mandatory_labels() {
        required.insert(l, "hard `exactly one` constraint");
    }
    for (_, l) in set.forced_tag_labels() {
        required.entry(l).or_insert("hard `tag is` feedback");
    }
    required
}

/// Labels that some hard constraint *excludes* from every mapping.
fn excluded_labels(set: &CompiledConstraintSet) -> BTreeMap<usize, &'static str> {
    let mut excluded = BTreeMap::new();
    for l in set.hard_excluded_labels() {
        excluded.insert(l, "hard `at most 0` constraint");
    }
    for l in set.hard_self_nested_labels() {
        excluded
            .entry(l)
            .or_insert("hard self-referential `nested in` constraint");
    }
    excluded
}

/// LSD102 — a label both required and excluded by hard constraints.
fn lint_required_and_excluded(
    labels: &LabelSet,
    set: &CompiledConstraintSet,
    out: &mut Vec<Diagnostic>,
) {
    let excluded = excluded_labels(set);
    for (label, why_required) in required_labels(set) {
        if let Some(why_excluded) = excluded.get(&label) {
            out.push(
                Diagnostic::new(
                    Code::LabelRequiredAndExcluded,
                    format!(
                        "label `{}` is both required and excluded by hard constraints",
                        labels.name(label)
                    ),
                )
                .with_note(format!("required by a {why_required}"))
                .with_note(format!("excluded by a {why_excluded}"))
                .with_help("drop one of the two constraints; together they reject every mapping"),
            );
        }
    }
}

/// LSD103 — contradictory tag-level feedback: `TagIs` and `TagIsNot` on
/// the same (tag, label) pair, or two `TagIs` pinning one tag to different
/// labels.
fn lint_conflicting_tag_feedback(
    labels: &LabelSet,
    set: &CompiledConstraintSet,
    out: &mut Vec<Diagnostic>,
) {
    let forced = set.forced_tag_labels();
    let forbidden: BTreeSet<(&str, usize)> = set.forbidden_tag_labels().into_iter().collect();
    for &(tag, label) in &forced {
        if forbidden.contains(&(tag, label)) {
            out.push(
                Diagnostic::new(
                    Code::ConflictingTagFeedback,
                    format!(
                        "tag `{tag}` is both pinned to and vetoed from label `{}`",
                        labels.name(label)
                    ),
                )
                .with_note("hard `tag is` and hard `tag is not` feedback disagree")
                .with_help("remove the stale feedback entry"),
            );
        }
    }
    let mut pinned: BTreeMap<&str, usize> = BTreeMap::new();
    for &(tag, label) in &forced {
        match pinned.get(tag) {
            None => {
                pinned.insert(tag, label);
            }
            Some(&prev) if prev != label => {
                out.push(
                    Diagnostic::new(
                        Code::ConflictingTagFeedback,
                        format!(
                            "tag `{tag}` is pinned to two different labels: `{}` and `{}`",
                            labels.name(prev),
                            labels.name(label)
                        ),
                    )
                    .with_note("a tag matches exactly one label in a 1-1 mapping"),
                );
            }
            Some(_) => {}
        }
    }
}

/// LSD104 — the hard-constraint set prunes every complete mapping. Two
/// statically decidable cases: (a) two labels that must both appear are
/// hard mutually exclusive; (b) one tag is pinned (`TagIs`) to two
/// mutually exclusive labels... which is impossible for a single tag, so
/// the decidable tag case is a required label pinned onto a tag that a
/// hard `TagIsNot` vetoes — covered by LSD103. Case (a) is checked here.
fn lint_unsatisfiable(labels: &LabelSet, set: &CompiledConstraintSet, out: &mut Vec<Diagnostic>) {
    let required = required_labels(set);
    for (a, b) in set.hard_exclusive_pairs() {
        if a == b {
            continue; // LSD106's business
        }
        if required.contains_key(&a) && required.contains_key(&b) {
            out.push(
                Diagnostic::new(
                    Code::UnsatisfiableConstraintSet,
                    format!(
                        "hard constraints are unsatisfiable: `{}` and `{}` are mutually \
                         exclusive but both must appear",
                        labels.name(a),
                        labels.name(b)
                    ),
                )
                .with_note("every complete mapping violates a hard constraint")
                .with_help(
                    "relax the exclusivity to a soft constraint, or drop one of the \
                     requirements",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::has_errors;
    use lsd_constraints::DomainConstraint as DC;
    use lsd_constraints::Predicate as P;

    fn labels() -> LabelSet {
        LabelSet::new(["PRICE", "ADDRESS", "AGENT-NAME"])
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_set_has_no_diagnostics() {
        let cs = vec![
            DC::hard(P::ExactlyOne {
                label: "PRICE".into(),
            }),
            DC::hard(P::AtMostOne {
                label: "ADDRESS".into(),
            }),
            DC::soft(P::AtMostK {
                label: "AGENT-NAME".into(),
                k: 2,
            }),
            DC::numeric(
                P::Proximity {
                    a: "PRICE".into(),
                    b: "ADDRESS".into(),
                },
                0.3,
            ),
        ];
        assert_eq!(analyze_constraints(&labels(), &cs), Vec::new());
    }

    #[test]
    fn unknown_label_is_lsd101_error() {
        let cs = vec![DC::hard(P::ExactlyOne {
            label: "PRYCE".into(),
        })];
        let diags = analyze_constraints(&labels(), &cs);
        assert_eq!(codes(&diags), ["LSD101"]);
        assert!(has_errors(&diags));
        assert!(diags[0].message.contains("PRYCE"));
    }

    #[test]
    fn required_and_excluded_is_lsd102() {
        let cs = vec![
            DC::hard(P::ExactlyOne {
                label: "PRICE".into(),
            }),
            DC::hard(P::AtMostK {
                label: "PRICE".into(),
                k: 0,
            }),
        ];
        let diags = analyze_constraints(&labels(), &cs);
        assert_eq!(codes(&diags), ["LSD102"]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn self_nested_required_label_is_lsd102_and_lsd106() {
        let cs = vec![
            DC::hard(P::ExactlyOne {
                label: "PRICE".into(),
            }),
            DC::hard(P::NestedIn {
                outer: "PRICE".into(),
                inner: "PRICE".into(),
            }),
        ];
        let got = codes(&analyze_constraints(&labels(), &cs));
        assert!(got.contains(&"LSD102"), "{got:?}");
        assert!(got.contains(&"LSD106"), "{got:?}");
    }

    #[test]
    fn tag_is_and_is_not_conflict_is_lsd103() {
        let cs = vec![
            DC::hard(P::TagIs {
                tag: "cost".into(),
                label: "PRICE".into(),
            }),
            DC::hard(P::TagIsNot {
                tag: "cost".into(),
                label: "PRICE".into(),
            }),
        ];
        let diags = analyze_constraints(&labels(), &cs);
        assert_eq!(codes(&diags), ["LSD103"]);
    }

    #[test]
    fn tag_pinned_to_two_labels_is_lsd103() {
        let cs = vec![
            DC::hard(P::TagIs {
                tag: "cost".into(),
                label: "PRICE".into(),
            }),
            DC::hard(P::TagIs {
                tag: "cost".into(),
                label: "ADDRESS".into(),
            }),
        ];
        let diags = analyze_constraints(&labels(), &cs);
        assert_eq!(codes(&diags), ["LSD103"]);
    }

    #[test]
    fn exclusive_mandatory_pair_is_lsd104() {
        let cs = vec![
            DC::hard(P::ExactlyOne {
                label: "PRICE".into(),
            }),
            DC::hard(P::ExactlyOne {
                label: "ADDRESS".into(),
            }),
            DC::hard(P::MutuallyExclusive {
                a: "PRICE".into(),
                b: "ADDRESS".into(),
            }),
        ];
        let diags = analyze_constraints(&labels(), &cs);
        assert_eq!(codes(&diags), ["LSD104"]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn soft_exclusivity_of_mandatory_pair_is_fine() {
        let cs = vec![
            DC::hard(P::ExactlyOne {
                label: "PRICE".into(),
            }),
            DC::hard(P::ExactlyOne {
                label: "ADDRESS".into(),
            }),
            DC::soft(P::MutuallyExclusive {
                a: "PRICE".into(),
                b: "ADDRESS".into(),
            }),
        ];
        assert_eq!(analyze_constraints(&labels(), &cs), Vec::new());
    }

    #[test]
    fn duplicate_constraint_is_lsd105_warning() {
        let one = DC::soft(P::AtMostK {
            label: "PRICE".into(),
            k: 1,
        });
        let diags = analyze_constraints(&labels(), &[one.clone(), one]);
        assert_eq!(codes(&diags), ["LSD105"]);
        assert!(!has_errors(&diags));
    }

    #[test]
    fn non_positive_cost_is_lsd106_warning() {
        let cs = vec![
            DomainConstraint {
                predicate: P::AtMostOne {
                    label: "PRICE".into(),
                },
                kind: ConstraintKind::SoftBinary { cost: 0.0 },
            },
            DomainConstraint {
                predicate: P::Proximity {
                    a: "PRICE".into(),
                    b: "ADDRESS".into(),
                },
                kind: ConstraintKind::SoftNumeric { weight: -1.0 },
            },
        ];
        let diags = analyze_constraints(&labels(), &cs);
        assert_eq!(codes(&diags), ["LSD106", "LSD106"]);
        assert!(!has_errors(&diags));
    }

    #[test]
    fn exclusivity_with_unrequired_labels_is_fine() {
        let cs = vec![
            DC::hard(P::ExactlyOne {
                label: "PRICE".into(),
            }),
            DC::hard(P::MutuallyExclusive {
                a: "PRICE".into(),
                b: "ADDRESS".into(),
            }),
        ];
        assert_eq!(analyze_constraints(&labels(), &cs), Vec::new());
    }
}
