//! Static audit of model-registry directories (the `LSD22x` family).
//!
//! A registry directory is what `lsd-serve` boots from: one `<name>.json`
//! snapshot per model, with an optional `<name>.wal` feedback log beside
//! it. Each file can be individually healthy while the directory as a
//! whole is not — two files that collapse to the same serving slug, a
//! half-upgraded fleet with mixed snapshot versions, two models claiming
//! the same domain with diverged mediated schemas, or a WAL left behind by
//! a deleted model. [`audit_registry`] audits every artifact individually
//! (stamping each diagnostic's `origin` with its file name) and then
//! cross-checks the set.

use crate::artifact::{audit_snapshot_with_summary, SnapshotSummary};
use crate::diagnostic::{Code, Diagnostic};
use crate::wal_audit::{audit_wal, WalAuditContext};
use std::io;
use std::path::Path;

/// Audits every snapshot and WAL in `dir`, plus the directory-level
/// cross-checks. Diagnostics carry the originating file name as their
/// `origin`; directory-level findings name every involved file.
///
/// # Errors
/// I/O failures reading the directory or a file in it. Unreadable
/// artifacts are an environment problem, not an artifact defect — the
/// `lsd-audit` binary maps this to its usage exit code.
pub fn audit_registry(dir: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut snapshot_files = Vec::new();
    let mut wal_files = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if !path.is_file() {
            continue;
        }
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => snapshot_files.push(path),
            Some("wal") => wal_files.push(path),
            _ => {}
        }
    }
    // Deterministic order regardless of directory iteration order.
    snapshot_files.sort();
    wal_files.sort();

    let mut out = Vec::new();
    let mut models: Vec<(String, SnapshotSummary)> = Vec::new();
    for path in &snapshot_files {
        let name = file_name(path);
        let text = std::fs::read_to_string(path)?;
        let (diags, summary) = audit_snapshot_with_summary(&text);
        out.extend(crate::with_origin(diags, &name));

        let wal_path = path.with_extension("wal");
        if let Some(i) = wal_files.iter().position(|w| *w == wal_path) {
            let wal_name = file_name(&wal_files.remove(i));
            let ctx = WalAuditContext {
                labels: summary.labels.clone(),
                feedback_applied: summary.feedback_applied,
            };
            let bytes = std::fs::read(&wal_path)?;
            out.extend(crate::with_origin(audit_wal(&bytes, Some(&ctx)), &wal_name));
        }
        models.push((name, summary));
    }

    for path in &wal_files {
        out.push(
            Diagnostic::new(
                Code::RegistryOrphanWal,
                format!(
                    "feedback WAL `{}` has no companion snapshot in the registry",
                    file_name(path)
                ),
            )
            .with_origin(file_name(path))
            .with_note("its corrections can never be folded — no model will ever replay it")
            .with_help("delete the WAL, or restore the model snapshot it belonged to"),
        );
    }

    audit_duplicate_slugs(&models, &mut out);
    audit_version_skew(&models, &mut out);
    audit_dtd_drift(&models, &mut out);
    Ok(out)
}

/// Two snapshot files that normalize to the same serving slug would fight
/// over one registry entry; which one wins depends on directory order.
fn audit_duplicate_slugs(models: &[(String, SnapshotSummary)], out: &mut Vec<Diagnostic>) {
    for (i, (name, _)) in models.iter().enumerate() {
        let slug = slugify(stem(name));
        for (other, _) in &models[..i] {
            if slugify(stem(other)) == slug {
                out.push(
                    Diagnostic::new(
                        Code::RegistryDuplicateSlug,
                        format!("`{name}` and `{other}` both normalize to model slug `{slug}`"),
                    )
                    .with_origin(name.clone())
                    .with_note("which snapshot serves depends on directory iteration order")
                    .with_help("rename one of the files to a distinct slug"),
                );
            }
        }
    }
}

/// More than one distinct snapshot-format version in one directory is a
/// half-finished migration: the next format change strands the stragglers.
fn audit_version_skew(models: &[(String, SnapshotSummary)], out: &mut Vec<Diagnostic>) {
    let mut versions: Vec<u32> = models.iter().filter_map(|(_, s)| s.version).collect();
    versions.sort_unstable();
    versions.dedup();
    if versions.len() > 1 {
        let mut detail: Vec<String> = models
            .iter()
            .filter_map(|(name, s)| s.version.map(|v| format!("`{name}` is v{v}")))
            .collect();
        detail.sort();
        out.push(
            Diagnostic::new(
                Code::RegistryVersionSkew,
                format!(
                    "registry mixes {} snapshot format versions ({})",
                    versions.len(),
                    versions
                        .iter()
                        .map(|v| format!("v{v}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .with_note(detail.join("; "))
            .with_help("re-save the older snapshots with the current build"),
        );
    }
}

/// Two models with the same label set claim the same mediated domain; if
/// their stored mediated DTDs differ, one of them trained against a stale
/// schema.
fn audit_dtd_drift(models: &[(String, SnapshotSummary)], out: &mut Vec<Diagnostic>) {
    for (i, (name, summary)) in models.iter().enumerate() {
        if summary.labels.is_empty() || summary.mediated_dtd.is_empty() {
            continue;
        }
        let mut labels = summary.labels.clone();
        labels.sort();
        for (other, other_summary) in &models[..i] {
            if other_summary.mediated_dtd.is_empty() {
                continue;
            }
            let mut other_labels = other_summary.labels.clone();
            other_labels.sort();
            if labels == other_labels && summary.mediated_dtd != other_summary.mediated_dtd {
                out.push(
                    Diagnostic::new(
                        Code::RegistryDtdDrift,
                        format!(
                            "`{name}` and `{other}` share a label set but store different \
                             mediated DTDs"
                        ),
                    )
                    .with_origin(name.clone())
                    .with_note(
                        "models of one domain should agree on the mediated schema; one \
                                of these trained against a stale revision",
                    )
                    .with_help("retrain the stale model against the current mediated schema"),
                );
            }
        }
    }
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn stem(file_name: &str) -> &str {
    file_name.strip_suffix(".json").unwrap_or(file_name)
}

/// The serving layer's slug normalization: ASCII lowercase with `_` → `-`
/// (mirrors `domain_slug` in the bench runner helpers).
fn slugify(stem: &str) -> String {
    stem.chars()
        .map(|c| match c {
            '_' | ' ' => '-',
            c => c.to_ascii_lowercase(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_registry(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir()
            .join("lsd-registry-audit-tests")
            .join(format!(
                "{label}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
        std::fs::create_dir_all(&dir).expect("temp registry dir");
        dir
    }

    fn snapshot(version: u32, dtd: &str, labels: &[&str]) -> String {
        // One row of stacking weights per label, one learner column.
        let weights = labels
            .iter()
            .map(|_| "[0.5]")
            .collect::<Vec<_>>()
            .join(", ");
        let labels = labels
            .iter()
            .map(|l| format!("{l:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            r#"{{
  "version": {version},
  "mediated_dtd": {dtd:?},
  "labels": [{labels}],
  "learners": [{{"Stats": {{"num_labels": 2, "moments": [], "class_counts": [1.0], "total": 3.0}}}}],
  "xml_index": null,
  "meta": {{"weights": [{weights}]}},
  "constraints": [],
  "trained": true,
  "feedback_applied": 0
}}"#
        )
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn healthy_registry_is_clean() {
        let dir = temp_registry("clean");
        std::fs::write(dir.join("a.json"), snapshot(1, "", &["X", "OTHER"])).expect("writes");
        std::fs::write(dir.join("b.json"), snapshot(1, "", &["Y", "OTHER"])).expect("writes");
        assert_eq!(audit_registry(&dir).expect("audits"), Vec::new());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_slugs_are_lsd221_errors() {
        let dir = temp_registry("dup");
        std::fs::write(dir.join("real_estate.json"), snapshot(1, "", &["OTHER"])).expect("writes");
        std::fs::write(dir.join("Real-Estate.json"), snapshot(1, "", &["OTHER"])).expect("writes");
        let diags = audit_registry(&dir).expect("audits");
        assert_eq!(codes(&diags), ["LSD221"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("`real-estate`"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_skew_is_lsd222_warning() {
        let dir = temp_registry("skew");
        std::fs::write(dir.join("a.json"), snapshot(1, "", &["OTHER"])).expect("writes");
        std::fs::write(dir.join("b.json"), snapshot(2, "", &["OTHER"])).expect("writes");
        let diags = audit_registry(&dir).expect("audits");
        assert_eq!(codes(&diags), ["LSD222"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("v1, v2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dtd_drift_between_same_domain_models_is_lsd223() {
        let dir = temp_registry("drift");
        // Same parsed schema, textually diverged revisions.
        let dtd_a = "<!ELEMENT X (#PCDATA)>";
        let dtd_b = "<!ELEMENT  X  (#PCDATA)>";
        std::fs::write(dir.join("a.json"), snapshot(1, dtd_a, &["X", "OTHER"])).expect("writes");
        std::fs::write(dir.join("b.json"), snapshot(1, dtd_b, &["X", "OTHER"])).expect("writes");
        let diags = audit_registry(&dir).expect("audits");
        // Both DTDs are individually fine; only the drift is flagged.
        assert_eq!(codes(&diags), ["LSD223"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_wal_is_lsd224() {
        let dir = temp_registry("orphan");
        std::fs::write(dir.join("a.json"), snapshot(1, "", &["OTHER"])).expect("writes");
        std::fs::write(dir.join("gone.wal"), b"LSDWAL01").expect("writes");
        let diags = audit_registry(&dir).expect("audits");
        assert_eq!(codes(&diags), ["LSD224"]);
        assert_eq!(diags[0].origin.as_deref(), Some("gone.wal"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn companion_wal_is_audited_with_snapshot_context() {
        let dir = temp_registry("companion");
        // Snapshot claims 3 folded records; the WAL is empty → LSD214.
        let text = snapshot(1, "", &["OTHER"])
            .replace("\"feedback_applied\": 0", "\"feedback_applied\": 3");
        std::fs::write(dir.join("a.json"), text).expect("writes");
        std::fs::write(dir.join("a.wal"), b"LSDWAL01").expect("writes");
        let diags = audit_registry(&dir).expect("audits");
        assert_eq!(codes(&diags), ["LSD214"]);
        assert_eq!(diags[0].origin.as_deref(), Some("a.wal"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_snapshot_diagnostics_carry_the_file_origin() {
        let dir = temp_registry("origin");
        let untrained =
            snapshot(1, "", &["OTHER"]).replace("\"trained\": true", "\"trained\": false");
        std::fs::write(dir.join("bad.json"), untrained).expect("writes");
        let diags = audit_registry(&dir).expect("audits");
        assert_eq!(codes(&diags), ["LSD201"]);
        assert_eq!(diags[0].origin.as_deref(), Some("bad.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let dir = temp_registry("gone").join("definitely-missing");
        assert!(audit_registry(&dir).is_err());
    }
}
