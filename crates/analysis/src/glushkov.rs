//! 1-unambiguity checking of DTD content models via Glushkov automata.
//!
//! XML DTDs require *deterministic* (1-unambiguous) content models: while
//! reading a child sequence left to right, the next child name must always
//! determine a unique position in the regular expression without lookahead
//! (Brüggemann-Klein & Wood). The classic counterexample is
//! `((a, b) | (a, c))` — on seeing `a` the parser cannot tell which branch
//! it is in.
//!
//! The check is the textbook one: number every element-name occurrence in
//! the model (its *positions*), compute the Glushkov `first` and `follow`
//! sets, and flag the model if two **distinct** positions carrying the
//! **same** name appear together in `first` or in any `follow(p)` — exactly
//! the condition under which the Glushkov automaton is nondeterministic.
//!
//! The construction itself is exposed as [`GlushkovAutomaton`] so that
//! other crates (notably `lsd-infer`, which runs the construction "in
//! reverse" to learn content models from instance data) can reuse the
//! position/first/follow machinery instead of duplicating it.

use lsd_xml::{ContentModel, Occurrence};
use std::collections::BTreeSet;

/// Why a content model is not 1-unambiguous: the name two positions share,
/// and (when the collision is in a follow set rather than the first set)
/// the name after which the two positions compete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// The element name that two distinct positions both match.
    pub symbol: String,
    /// `None` — both positions can start the content; `Some(prev)` — both
    /// can follow an occurrence of `prev`.
    pub after: Option<String>,
}

impl Ambiguity {
    /// Human-readable explanation for a diagnostic note.
    pub fn describe(&self) -> String {
        match &self.after {
            None => format!(
                "two different occurrences of `{}` can both match the first child",
                self.symbol
            ),
            Some(prev) => format!(
                "after reading `{prev}`, two different occurrences of `{}` can both match \
                 the next child",
                self.symbol
            ),
        }
    }
}

/// The Glushkov (position) automaton of a content model.
///
/// Every element-name occurrence in the model is a *position*; the
/// automaton records, for each position, which positions may follow it,
/// which positions may start the content, which may end it, and whether
/// the empty child sequence is accepted. This is both the substrate of the
/// 1-unambiguity lint ([`check_one_unambiguous`]) and a reusable sequence
/// acceptor ([`GlushkovAutomaton::accepts`]) for schema inference.
#[derive(Debug, Clone)]
pub struct GlushkovAutomaton {
    /// `symbols[p]` — the element name at position `p`.
    pub symbols: Vec<String>,
    /// `follow[p]` — positions that may come immediately after `p`.
    pub follow: Vec<BTreeSet<usize>>,
    /// Positions that may match the first child.
    pub first: BTreeSet<usize>,
    /// Positions that may match the last child.
    pub last: BTreeSet<usize>,
    /// Whether the model accepts an empty child sequence.
    pub nullable: bool,
}

impl GlushkovAutomaton {
    /// Builds the position automaton of `model`.
    pub fn from_model(model: &ContentModel) -> GlushkovAutomaton {
        let mut b = Builder {
            symbols: Vec::new(),
            follow: Vec::new(),
        };
        let term = b.build(model);
        GlushkovAutomaton {
            symbols: b.symbols,
            follow: b.follow,
            first: term.first.iter().copied().collect(),
            last: term.last.iter().copied().collect(),
            nullable: term.nullable,
        }
    }

    /// Returns a witness if the underlying model is not 1-unambiguous:
    /// two distinct positions with the same name in `first` or in some
    /// `follow(p)`. `None` means the model is deterministic.
    pub fn ambiguity(&self) -> Option<Ambiguity> {
        if let Some(symbol) = self.collision(self.first.iter().copied()) {
            return Some(Ambiguity {
                symbol,
                after: None,
            });
        }
        for p in 0..self.symbols.len() {
            if let Some(symbol) = self.collision(self.follow[p].iter().copied()) {
                return Some(Ambiguity {
                    symbol,
                    after: Some(self.symbols[p].clone()),
                });
            }
        }
        None
    }

    /// Whether the model accepts the child-name sequence `names`, by
    /// position-set simulation (correct whether or not the model is
    /// deterministic).
    pub fn accepts(&self, names: &[&str]) -> bool {
        let mut current: BTreeSet<usize> = match names.first() {
            None => return self.nullable,
            Some(&name) => self
                .first
                .iter()
                .copied()
                .filter(|&p| self.symbols[p] == name)
                .collect(),
        };
        for &name in &names[1..] {
            let mut next = BTreeSet::new();
            for &p in &current {
                next.extend(
                    self.follow[p]
                        .iter()
                        .copied()
                        .filter(|&q| self.symbols[q] == name),
                );
            }
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|p| self.last.contains(p))
    }

    /// Two distinct positions with the same symbol in `set`?
    fn collision(&self, set: impl IntoIterator<Item = usize>) -> Option<String> {
        let mut seen: Vec<usize> = Vec::new();
        for p in set {
            if seen
                .iter()
                .any(|&q| q != p && self.symbols[q] == self.symbols[p])
            {
                return Some(self.symbols[p].clone());
            }
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        None
    }
}

/// The nullable/first/last summary of a subexpression, over position ids.
struct Term {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

/// Accumulates positions (one per name occurrence) and their follow sets.
struct Builder {
    symbols: Vec<String>,
    follow: Vec<BTreeSet<usize>>,
}

impl Builder {
    fn position(&mut self, name: &str) -> usize {
        self.symbols.push(name.to_string());
        self.follow.push(BTreeSet::new());
        self.symbols.len() - 1
    }

    fn link(&mut self, from: &[usize], to: &[usize]) {
        for &f in from {
            self.follow[f].extend(to.iter().copied());
        }
    }

    /// Applies an occurrence suffix to a built subexpression: `?` and `*`
    /// make it nullable; `*` and `+` loop its last positions back to its
    /// first positions.
    fn apply_occurrence(&mut self, mut term: Term, occ: Occurrence) -> Term {
        match occ {
            Occurrence::One => {}
            Occurrence::Optional => term.nullable = true,
            Occurrence::ZeroOrMore => {
                term.nullable = true;
                let (last, first) = (term.last.clone(), term.first.clone());
                self.link(&last, &first);
            }
            Occurrence::OneOrMore => {
                let (last, first) = (term.last.clone(), term.first.clone());
                self.link(&last, &first);
            }
        }
        term
    }

    fn build(&mut self, model: &ContentModel) -> Term {
        match model {
            // No positions: trivially deterministic, never part of a
            // composite model.
            ContentModel::Empty | ContentModel::Any | ContentModel::Pcdata => Term {
                nullable: true,
                first: Vec::new(),
                last: Vec::new(),
            },
            // `(#PCDATA | a | b)*` is `(a | b)*` over element positions.
            ContentModel::Mixed(names) => {
                let positions: Vec<usize> = names.iter().map(|n| self.position(n)).collect();
                let term = Term {
                    nullable: true,
                    first: positions.clone(),
                    last: positions,
                };
                self.apply_occurrence(term, Occurrence::ZeroOrMore)
            }
            ContentModel::Name(name, occ) => {
                let p = self.position(name);
                let term = Term {
                    nullable: false,
                    first: vec![p],
                    last: vec![p],
                };
                self.apply_occurrence(term, *occ)
            }
            ContentModel::Seq(parts, occ) => {
                let mut acc = Term {
                    nullable: true,
                    first: Vec::new(),
                    last: Vec::new(),
                };
                for part in parts {
                    let next = self.build(part);
                    self.link(&acc.last, &next.first);
                    if acc.nullable {
                        acc.first.extend(&next.first);
                    }
                    if next.nullable {
                        acc.last.extend(next.last.iter().copied());
                    } else {
                        acc.last = next.last;
                    }
                    acc.nullable &= next.nullable;
                }
                self.apply_occurrence(acc, *occ)
            }
            ContentModel::Choice(parts, occ) => {
                let mut acc = Term {
                    nullable: false,
                    first: Vec::new(),
                    last: Vec::new(),
                };
                for part in parts {
                    let t = self.build(part);
                    acc.nullable |= t.nullable;
                    acc.first.extend(t.first);
                    acc.last.extend(t.last);
                }
                self.apply_occurrence(acc, *occ)
            }
        }
    }
}

/// Checks one content model for 1-unambiguity. Returns `None` when the
/// model is deterministic, or a witness [`Ambiguity`] otherwise.
pub fn check_one_unambiguous(model: &ContentModel) -> Option<Ambiguity> {
    GlushkovAutomaton::from_model(model).ambiguity()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_model(spec: &str) -> ContentModel {
        let dtd = lsd_xml::parse_dtd(&format!("<!ELEMENT root {spec}>")).expect("test DTD parses");
        dtd.decl("root").expect("root declared").content.clone()
    }

    #[test]
    fn simple_models_are_unambiguous() {
        for spec in [
            "(a, b)",
            "(a | b)",
            "(a?, b)",
            "(a, b, c)*",
            "((a | b), c)+",
            "(a+, b?)",
            "(#PCDATA)",
            "EMPTY",
            "ANY",
            "(#PCDATA | a | b)*",
        ] {
            assert_eq!(check_one_unambiguous(&parse_model(spec)), None, "{spec}");
        }
    }

    #[test]
    fn common_prefix_choice_is_ambiguous_at_first() {
        let a = check_one_unambiguous(&parse_model("((a, b) | (a, c))")).expect("ambiguous");
        assert_eq!(a.symbol, "a");
        assert_eq!(a.after, None);
        assert!(a.describe().contains("first child"));
    }

    #[test]
    fn optional_then_same_name_is_ambiguous() {
        let a = check_one_unambiguous(&parse_model("(a?, a)")).expect("ambiguous");
        assert_eq!(a.symbol, "a");
        assert_eq!(a.after, None);
    }

    #[test]
    fn star_loop_followed_by_same_name_is_ambiguous() {
        // `(a, b)*` is nullable, so both `a` occurrences can also start the
        // content — the collision already shows in the first set.
        let a = check_one_unambiguous(&parse_model("((a, b)*, a?)")).expect("ambiguous");
        assert_eq!(a.symbol, "a");
    }

    #[test]
    fn plus_loop_followed_by_same_name_is_ambiguous_in_follow() {
        // `(a, b)+` is not nullable, so the first set is unambiguous; the
        // collision is only visible after reading `b`, where the loop can
        // restart with `a` or the trailing `a?` can match.
        let a = check_one_unambiguous(&parse_model("((a, b)+, a?)")).expect("ambiguous");
        assert_eq!(a.symbol, "a");
        assert_eq!(a.after.as_deref(), Some("b"));
        assert!(a.describe().contains("after reading `b`"));
    }

    #[test]
    fn duplicate_mixed_names_are_ambiguous() {
        let model = ContentModel::Mixed(vec!["a".into(), "b".into(), "a".into()]);
        let a = check_one_unambiguous(&model).expect("ambiguous");
        assert_eq!(a.symbol, "a");
    }

    #[test]
    fn star_of_choice_with_distinct_names_is_fine() {
        assert_eq!(check_one_unambiguous(&parse_model("(a | b | c)*")), None);
    }

    #[test]
    fn repeated_name_across_branches_of_star_is_ambiguous() {
        // After `a`, the loop can restart with `a` (position 1) or continue
        // with `a` (position 2): ((a)*, a) is ambiguous.
        let a = check_one_unambiguous(&parse_model("(a*, a)")).expect("ambiguous");
        assert_eq!(a.symbol, "a");
    }

    #[test]
    fn automaton_accepts_matches_model_semantics() {
        let auto = GlushkovAutomaton::from_model(&parse_model("(a, b*, (c | d))"));
        assert!(auto.accepts(&["a", "c"]));
        assert!(auto.accepts(&["a", "b", "b", "d"]));
        assert!(!auto.accepts(&["a"]));
        assert!(!auto.accepts(&["b", "c"]));
        assert!(!auto.accepts(&[]));
        assert!(!auto.accepts(&["a", "c", "c"]));

        let nullable = GlushkovAutomaton::from_model(&parse_model("(a | b)*"));
        assert!(nullable.nullable);
        assert!(nullable.accepts(&[]));
        assert!(nullable.accepts(&["b", "a", "b"]));
        assert!(!nullable.accepts(&["b", "x"]));
    }

    #[test]
    fn accepts_is_correct_on_nondeterministic_models() {
        // Position-set simulation does not require 1-unambiguity.
        let auto = GlushkovAutomaton::from_model(&parse_model("((a, b) | (a, c))"));
        assert!(auto.ambiguity().is_some());
        assert!(auto.accepts(&["a", "b"]));
        assert!(auto.accepts(&["a", "c"]));
        assert!(!auto.accepts(&["a"]));
    }
}
