//! Static audit of feedback write-ahead logs (the `LSD21x` family).
//!
//! The serving layer acknowledges a correction only after appending it to
//! a per-model WAL (`crates/core/src/wal.rs`), and the retrain worker
//! folds WAL suffixes into new model generations. The WAL recovery path is
//! deliberately forgiving — it silently truncates a torn tail — which is
//! the right behaviour for a server coming back from a crash and the wrong
//! behaviour for an operator asking "is this artifact healthy?". The
//! auditor walks the same frame format *without* repairing anything and
//! reports what recovery would silently discard, plus cross-checks against
//! the companion snapshot (fold point, label set) that recovery never
//! performs.
//!
//! Frame format (mirrors `crates/core/src/wal.rs`, which owns it):
//!
//! ```text
//! magic: 8 bytes  b"LSDWAL01"
//! record*:
//!   len:     u32 little-endian  (payload byte count)
//!   crc32:   u32 little-endian  (IEEE CRC-32 of the payload)
//!   payload: len bytes          (one FeedbackRecord as JSON)
//! ```

use crate::artifact::get;
use crate::diagnostic::{Code, Diagnostic};
use lsd_xml::Span;
use serde::Value;

/// The 8-byte WAL file magic. Kept in sync with
/// `lsd_core::wal::WAL_MAGIC` by a cross-crate test in `tests/audit.rs`.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"LSDWAL01";

/// Companion-snapshot context for cross-checks the WAL alone cannot do:
/// whether the snapshot's fold point actually exists in the log, and
/// whether corrections name labels the model knows.
#[derive(Debug, Clone, Default)]
pub struct WalAuditContext {
    /// The companion model's label names (from its snapshot).
    pub labels: Vec<String>,
    /// The companion snapshot's `feedback_applied` fold point.
    pub feedback_applied: u64,
}

/// Audits raw WAL bytes. Pass `ctx` when the companion snapshot is known;
/// without it only the self-contained checks (magic, framing, CRC,
/// timestamps) run. Spans are byte offsets into the file — meaningful for
/// tooling even though the binary artifact gets no caret rendering.
pub fn audit_wal(bytes: &[u8], ctx: Option<&WalAuditContext>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        out.push(
            Diagnostic::new(
                Code::WalBadMagic,
                if bytes.is_empty() {
                    "file is empty — a feedback WAL always starts with its 8-byte magic".to_string()
                } else {
                    format!(
                        "file does not start with the feedback-WAL magic `{}`",
                        String::from_utf8_lossy(WAL_MAGIC)
                    )
                },
            )
            .with_span(Span::new(0, bytes.len().min(WAL_MAGIC.len())))
            .with_help("this file is not a feedback WAL; recovery would refuse to touch it"),
        );
        return out;
    }

    let mut pos = WAL_MAGIC.len();
    let mut records = 0u64;
    let mut last_timestamp = 0u64;
    let mut monotone = true;
    let mut unknown_labels = 0usize;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            out.push(torn_tail(pos, bytes.len(), records, "record header"));
            break;
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            out.push(torn_tail(pos, bytes.len(), records, "record payload"));
            break;
        };
        if crc32(payload) != crc {
            out.push(
                Diagnostic::new(
                    Code::WalCorruptRecord,
                    format!(
                        "record {records} (at byte {pos}) fails its CRC-32 check: the payload \
                         was corrupted in place"
                    ),
                )
                .with_span(Span::new(pos, pos + 8 + len))
                .with_note(format!(
                    "recovery would silently truncate this and the following {} byte(s)",
                    bytes.len() - pos
                ))
                .with_help(
                    "unlike a torn tail, mid-file corruption means the storage or a \
                            writer misbehaved; investigate before trusting earlier records",
                ),
            );
            break; // framing is untrustworthy beyond a corrupt record
        }
        match std::str::from_utf8(payload)
            .ok()
            .and_then(|text| serde_json::from_str::<Value>(text).ok())
        {
            Some(record) => audit_record(
                &record,
                records,
                pos,
                len,
                ctx,
                &mut last_timestamp,
                &mut monotone,
                &mut unknown_labels,
                &mut out,
            ),
            None => {
                out.push(
                    Diagnostic::new(
                        Code::WalCorruptRecord,
                        format!(
                            "record {records} (at byte {pos}) passes its CRC but is not a JSON \
                             feedback record"
                        ),
                    )
                    .with_span(Span::new(pos, pos + 8 + len)),
                );
                break;
            }
        }
        records += 1;
        pos += 8 + len;
    }

    if let Some(ctx) = ctx {
        if ctx.feedback_applied > records {
            out.push(
                Diagnostic::new(
                    Code::WalFoldPointBeyondLength,
                    format!(
                        "companion snapshot claims {} folded record(s) but the WAL holds only \
                         {records}",
                        ctx.feedback_applied
                    ),
                )
                .with_note(
                    "the snapshot and the WAL are from different histories — the WAL \
                            was truncated or replaced after the snapshot was written",
                )
                .with_help(
                    "restart-time replay would mis-skip records; restore the matching \
                            WAL or reset the snapshot's fold point",
                ),
            );
        }
    }
    out
}

fn torn_tail(pos: usize, file_len: usize, records: u64, what: &str) -> Diagnostic {
    Diagnostic::new(
        Code::WalTornTail,
        format!(
            "WAL ends mid-{what}: {} trailing byte(s) after record {records} are torn",
            file_len - pos
        ),
    )
    .with_span(Span::new(pos, file_len))
    .with_note("this is the residue of a crash mid-append; recovery truncates it safely")
    .with_help("no action needed — the next `FeedbackWal::open` repairs the file")
}

/// Per-record content checks: correction labels against the companion
/// label set, and timestamp monotonicity across the whole log.
#[allow(clippy::too_many_arguments)]
fn audit_record(
    record: &Value,
    index: u64,
    pos: usize,
    len: usize,
    ctx: Option<&WalAuditContext>,
    last_timestamp: &mut u64,
    monotone: &mut bool,
    unknown_labels: &mut usize,
    out: &mut Vec<Diagnostic>,
) {
    let Value::Map(fields) = record else { return };
    let Some(Value::Seq(corrections)) = get(fields, "corrections") else {
        return;
    };
    let span = Span::new(pos, pos + 8 + len);
    for correction in corrections {
        let Value::Map(correction) = correction else {
            continue;
        };
        if let Some(label) = correction_label(correction) {
            if let Some(ctx) = ctx {
                if !ctx.labels.iter().any(|l| l == label) {
                    *unknown_labels += 1;
                    if *unknown_labels <= 3 {
                        out.push(
                            Diagnostic::new(
                                Code::WalUnknownLabel,
                                format!(
                                    "record {index} corrects a tag to label `{label}`, which the \
                                     companion model does not have"
                                ),
                            )
                            .with_span(span)
                            .with_note(format!(
                                "the model's labels are: {}",
                                ctx.labels
                                    .iter()
                                    .map(|l| format!("`{l}`"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ))
                            .with_help(
                                "replaying this WAL against this snapshot would fail at \
                                        retrain time; the WAL belongs to a different model",
                            ),
                        );
                    }
                }
            }
        }
        if let Some(Value::Int(ts)) = get(correction, "timestamp_ms") {
            let ts = u64::try_from(*ts).unwrap_or(0);
            // Zero means "no timestamp recorded" and carries no ordering.
            if ts != 0 {
                if ts < *last_timestamp && *monotone {
                    *monotone = false;
                    out.push(
                        Diagnostic::new(
                            Code::WalNonMonotoneTimestamps,
                            format!(
                                "record {index} carries timestamp {ts} ms, earlier than a \
                                 preceding record's {} ms",
                                last_timestamp
                            ),
                        )
                        .with_span(span)
                        .with_note(
                            "an append-only log should never time-travel; this usually \
                                    means clock skew between submitters or a hand-edited WAL",
                        ),
                    );
                }
                *last_timestamp = (*last_timestamp).max(ts);
            }
        }
    }
}

/// The label a correction kind refers to, when it refers to one.
/// Kinds serialize externally tagged: `{"TagIs": {"label": ..}}`,
/// `{"TagIsNot": {"label": ..}}`, or the unit `"TagIsOther"`.
fn correction_label(correction: &[(String, Value)]) -> Option<&str> {
    match get(correction, "kind")? {
        Value::Map(kind) => {
            let (tag, body) = kind.first()?;
            if tag != "TagIs" && tag != "TagIsNot" {
                return None;
            }
            match body {
                Value::Map(body) => match get(body, "label") {
                    Some(Value::Str(label)) => Some(label),
                    _ => None,
                },
                _ => None,
            }
        }
        _ => None, // "TagIsOther" needs no label to exist
    }
}

/// IEEE CRC-32 (the zlib/PNG polynomial). Duplicated from
/// `crates/core/src/wal.rs` — `lsd-core` depends on this crate, so the
/// auditor cannot call the original; a test vector below and the
/// cross-crate round-trip tests in `tests/audit.rs` keep them in lockstep.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;

    /// Builds a syntactically valid WAL from record payloads.
    fn wal(payloads: &[&str]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for p in payloads {
            let p = p.as_bytes();
            bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(p).to_le_bytes());
            bytes.extend_from_slice(p);
        }
        bytes
    }

    fn record(corrections: &str) -> String {
        format!(r#"{{"source_name":"s","dtd":"","listings":[],"corrections":{corrections}}}"#)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // Same vector as crates/core/src/wal.rs — the two copies must agree.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn clean_wal_is_clean() {
        let bytes = wal(&[&record("[]"), &record("[]")]);
        assert_eq!(audit_wal(&bytes, None), Vec::new());
    }

    #[test]
    fn empty_file_is_lsd211() {
        let diags = audit_wal(b"", None);
        assert_eq!(codes(&diags), ["LSD211"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn foreign_magic_is_lsd211() {
        assert_eq!(codes(&audit_wal(b"NOTAWAL!rest", None)), ["LSD211"]);
    }

    #[test]
    fn torn_tail_is_lsd212_warning_with_span() {
        let mut bytes = wal(&[&record("[]")]);
        let intact = bytes.len();
        bytes.extend_from_slice(&[0x21, 0x00, 0x00]); // 3 bytes of a header
        let diags = audit_wal(&bytes, None);
        assert_eq!(codes(&diags), ["LSD212"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        let span = diags[0].span.expect("span covers the torn bytes");
        assert_eq!((span.start, span.end), (intact, intact + 3));
    }

    #[test]
    fn short_payload_is_lsd212() {
        let full = wal(&[&record("[]"), &record("[]")]);
        // Cut inside the second record's payload.
        let diags = audit_wal(&full[..full.len() - 4], None);
        assert_eq!(codes(&diags), ["LSD212"]);
    }

    #[test]
    fn mid_file_crc_corruption_is_lsd213_error_and_stops() {
        let mut bytes = wal(&[&record("[]"), &record("[]")]);
        // Flip one byte inside the FIRST record's payload: the damage is
        // mid-file, not a tail.
        bytes[WAL_MAGIC.len() + 8] ^= 0xFF;
        let diags = audit_wal(&bytes, None);
        assert_eq!(codes(&diags), ["LSD213"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("record 0"));
    }

    #[test]
    fn valid_crc_but_non_json_payload_is_lsd213() {
        let bytes = wal(&["this is not json"]);
        assert_eq!(codes(&audit_wal(&bytes, None)), ["LSD213"]);
    }

    #[test]
    fn fold_point_beyond_length_is_lsd214() {
        let bytes = wal(&[&record("[]")]);
        let ctx = WalAuditContext {
            labels: vec!["OTHER".into()],
            feedback_applied: 5,
        };
        let diags = audit_wal(&bytes, Some(&ctx));
        assert_eq!(codes(&diags), ["LSD214"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn fold_point_at_length_is_fine() {
        let bytes = wal(&[&record("[]")]);
        let ctx = WalAuditContext {
            labels: vec!["OTHER".into()],
            feedback_applied: 1,
        };
        assert_eq!(audit_wal(&bytes, Some(&ctx)), Vec::new());
    }

    #[test]
    fn unknown_correction_label_is_lsd215() {
        let bytes = wal(&[&record(
            r#"[{"tag":"t","kind":{"TagIs":{"label":"GHOST"}},"source":"s","timestamp_ms":0,"origin":"o"}]"#,
        )]);
        let ctx = WalAuditContext {
            labels: vec!["PRICE".into(), "OTHER".into()],
            feedback_applied: 0,
        };
        let diags = audit_wal(&bytes, Some(&ctx));
        assert_eq!(codes(&diags), ["LSD215"]);
        assert!(diags[0].message.contains("`GHOST`"));
        assert!(diags[0].notes[0].contains("`PRICE`"));
    }

    #[test]
    fn known_labels_and_tag_is_other_pass() {
        let bytes = wal(&[&record(
            r#"[{"tag":"t","kind":{"TagIs":{"label":"PRICE"}},"source":"s","timestamp_ms":1,"origin":"o"},
                {"tag":"u","kind":"TagIsOther","source":"s","timestamp_ms":2,"origin":"o"}]"#,
        )]);
        let ctx = WalAuditContext {
            labels: vec!["PRICE".into(), "OTHER".into()],
            feedback_applied: 0,
        };
        assert_eq!(audit_wal(&bytes, Some(&ctx)), Vec::new());
    }

    #[test]
    fn decreasing_timestamps_are_lsd216_once() {
        let c = |ts: u64| {
            format!(
                r#"[{{"tag":"t","kind":"TagIsOther","source":"s","timestamp_ms":{ts},"origin":"o"}}]"#
            )
        };
        let bytes = wal(&[&record(&c(100)), &record(&c(50)), &record(&c(25))]);
        let diags = audit_wal(&bytes, None);
        assert_eq!(codes(&diags), ["LSD216"], "reported once per file");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn zero_timestamps_do_not_trip_monotonicity() {
        let c = |ts: u64| {
            format!(
                r#"[{{"tag":"t","kind":"TagIsOther","source":"s","timestamp_ms":{ts},"origin":"o"}}]"#
            )
        };
        let bytes = wal(&[&record(&c(100)), &record(&c(0)), &record(&c(200))]);
        assert_eq!(audit_wal(&bytes, None), Vec::new());
    }
}
