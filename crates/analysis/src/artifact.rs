//! Static audit of `SavedModel` snapshots (the `LSD20x` family).
//!
//! A snapshot is the serving side's unit of deployment: the trained state
//! of every learner, the stacking weights, the label set and the mediated
//! schema, serialized as one JSON document (`lsd_core::persist`). Between
//! training and serving it crosses process and machine boundaries, and a
//! silently corrupted snapshot — a NaN weight written as `null`, a learner
//! whose vocabulary never made it to disk, a label set that drifted away
//! from the mediated schema — only surfaces as wrong *answers*, not as a
//! load failure. [`audit_snapshot`] finds those defects statically, before
//! the artifact is allowed anywhere near traffic.
//!
//! The auditor works on the artifact *text*, not on a deserialized
//! `SavedModel` (`lsd-core` depends on this crate, not the other way
//! around), which is also what lets diagnostics carry byte spans into the
//! file for rustc-style caret rendering.

use crate::diagnostic::{Code, Diagnostic};
use lsd_xml::Span;
use serde::Value;

/// What a snapshot audit could extract, whether or not the audit was
/// clean — the cross-artifact context [`crate::audit_registry`] and the
/// WAL auditor need (label set, fold point, version, mediated DTD).
#[derive(Debug, Clone, Default)]
pub struct SnapshotSummary {
    /// The `version` field, when present and integral.
    pub version: Option<u32>,
    /// The stored label names, in order (empty when unreadable).
    pub labels: Vec<String>,
    /// The mediated DTD text (empty for pre-analysis snapshots).
    pub mediated_dtd: String,
    /// The `feedback_applied` fold point (0 when absent).
    pub feedback_applied: u64,
    /// The `trained` flag (false when unreadable).
    pub trained: bool,
}

/// Audits one `SavedModel` JSON document. See the module docs for what is
/// checked; [`audit_snapshot_with_summary`] additionally returns the
/// fields later cross-checks need.
pub fn audit_snapshot(text: &str) -> Vec<Diagnostic> {
    audit_snapshot_with_summary(text).0
}

/// [`audit_snapshot`] plus the extracted [`SnapshotSummary`].
pub fn audit_snapshot_with_summary(text: &str) -> (Vec<Diagnostic>, SnapshotSummary) {
    let mut out = Vec::new();
    let mut summary = SnapshotSummary::default();
    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => {
            out.push(
                Diagnostic::new(
                    Code::MalformedSnapshot,
                    format!("snapshot is not valid JSON: {e}"),
                )
                .with_span(parse_error_span(&e.to_string(), text))
                .with_help("regenerate the snapshot with `Lsd::save_json`"),
            );
            return (out, summary);
        }
    };
    let Value::Map(fields) = &value else {
        out.push(Diagnostic::new(
            Code::MalformedSnapshot,
            "snapshot root is not a JSON object",
        ));
        return (out, summary);
    };

    summary.version = match get(fields, "version") {
        Some(Value::Int(v)) if *v >= 0 => Some(*v as u32),
        _ => None,
    };
    if summary.version.is_none() {
        out.push(
            Diagnostic::new(
                Code::MalformedSnapshot,
                "snapshot has no integral `version` field",
            )
            .with_span(key_span(text, "version")),
        );
    }

    summary.trained = matches!(get(fields, "trained"), Some(Value::Bool(true)));
    if !summary.trained {
        out.push(
            Diagnostic::new(
                Code::SnapshotUntrained,
                "snapshot is untrained (`trained` is not `true`); it can never serve",
            )
            .with_span(key_span(text, "trained"))
            .with_help("run `Lsd::train` before saving a serving snapshot"),
        );
    }

    summary.labels = match get(fields, "labels") {
        Some(Value::Seq(items)) => items
            .iter()
            .filter_map(|v| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => {
            out.push(
                Diagnostic::new(Code::MalformedSnapshot, "snapshot has no `labels` array")
                    .with_span(key_span(text, "labels")),
            );
            Vec::new()
        }
    };

    let learners: &[Value] = match get(fields, "learners") {
        Some(Value::Seq(items)) => items,
        _ => &[],
    };
    let learner_names: Vec<String> = learners
        .iter()
        .enumerate()
        .map(|(j, l)| learner_kind(l).unwrap_or_else(|| format!("learner {j}")))
        .collect();

    audit_meta_weights(text, fields, &summary, &learner_names, &mut out);

    if summary.trained {
        for (j, learner) in learners.iter().enumerate() {
            if let Some(why) = degenerate_learner(learner) {
                out.push(
                    Diagnostic::new(
                        Code::EmptyLearnerState,
                        format!(
                            "learner `{}` has no training state: {why}",
                            learner_names[j]
                        ),
                    )
                    .with_span(key_span(text, "learners"))
                    .with_note("a trained snapshot should carry every learner's fitted state")
                    .with_help("retrain and re-save, or drop the learner from the configuration"),
                );
            }
        }
    }

    summary.mediated_dtd = match get(fields, "mediated_dtd") {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    audit_mediated_dtd(text, &summary, &mut out);

    summary.feedback_applied = match get(fields, "feedback_applied") {
        Some(Value::Int(v)) if *v >= 0 => *v as u64,
        Some(Value::Int(v)) => {
            out.push(
                Diagnostic::new(
                    Code::MalformedSnapshot,
                    format!("`feedback_applied` fold point is negative ({v})"),
                )
                .with_span(key_span(text, "feedback_applied")),
            );
            0
        }
        _ => 0,
    };

    audit_inferred_provenance(text, fields, &mut out);

    (out, summary)
}

/// Minimum per-element observation count below which an inferred content
/// model is considered weakly supported (LSD231). With fewer than this
/// many instances, `?`/`*` occurrence decisions rest on one or two
/// observations and are as likely memorization as structure.
pub const MIN_INFERRED_SUPPORT: i64 = 3;

/// The `LSD23x` family: snapshots trained on *inferred* schemas. Each
/// provenance entry carrying inference evidence is checked for elements
/// whose content model rests on fewer than [`MIN_INFERRED_SUPPORT`]
/// observations. A Warning, not an Error: the model serves, but the audit
/// surfaces which parts of its training schema were guessed from thin
/// evidence.
fn audit_inferred_provenance(text: &str, fields: &[(String, Value)], out: &mut Vec<Diagnostic>) {
    let Some(Value::Seq(entries)) = get(fields, "source_provenance") else {
        return; // pre-provenance snapshots have nothing to check
    };
    let span = key_span(text, "source_provenance");
    for (i, entry) in entries.iter().enumerate() {
        let Value::Map(entry) = entry else { continue };
        let Some(Value::Map(stats)) = get(entry, "inferred") else {
            continue; // native or DDL-derived schema
        };
        let source = match get(entry, "source") {
            Some(Value::Str(s)) => format!("`{s}`"),
            _ => format!("source {i}"),
        };
        let corpus_size = match get(stats, "corpus_size") {
            Some(Value::Int(n)) => *n,
            _ => 0,
        };
        let weak: Vec<String> = match get(stats, "element_support") {
            Some(Value::Map(support)) => support
                .iter()
                .filter_map(|(name, count)| match count {
                    Value::Int(n) if *n < MIN_INFERRED_SUPPORT => {
                        Some(format!("`{name}` (seen {n}x)"))
                    }
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        if weak.is_empty() {
            continue;
        }
        out.push(
            Diagnostic::new(
                Code::InferredSchemaLowSupport,
                format!(
                    "snapshot was trained on {source}, whose schema was inferred from \
                     {corpus_size} instance(s); {} element(s) have fewer than \
                     {MIN_INFERRED_SUPPORT} observations",
                    weak.len()
                ),
            )
            .with_span(span)
            .with_note(format!("weakly supported: {}", weak.join(", ")))
            .with_help(
                "supply a hand-written DTD for the source, or retrain with more instances \
                 so the inferred occurrence decisions rest on real evidence",
            ),
        );
    }
}

/// Checks the meta-weight matrix: every entry a finite number, the row
/// count equal to the label count, the column count equal to the learner
/// count, and no all-zero learner column.
fn audit_meta_weights(
    text: &str,
    fields: &[(String, Value)],
    summary: &SnapshotSummary,
    learner_names: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let weights = match get(fields, "meta") {
        Some(Value::Map(meta)) => match get(meta, "weights") {
            Some(Value::Seq(rows)) => rows,
            _ => {
                out.push(
                    Diagnostic::new(
                        Code::MalformedSnapshot,
                        "snapshot has no `meta.weights` matrix",
                    )
                    .with_span(key_span(text, "meta")),
                );
                return;
            }
        },
        _ => {
            out.push(
                Diagnostic::new(Code::MalformedSnapshot, "snapshot has no `meta` object")
                    .with_span(key_span(text, "meta")),
            );
            return;
        }
    };
    let span = key_span(text, "weights");

    // An untrained snapshot legitimately carries `MetaLearner::uniform(0, n)`
    // (an empty matrix); shape checks only make sense on trained models.
    if summary.trained {
        if weights.len() != summary.labels.len() {
            out.push(
                Diagnostic::new(
                    Code::MetaLabelSkew,
                    format!(
                        "meta-weight matrix has {} label row(s) but the label set has {} label(s)",
                        weights.len(),
                        summary.labels.len()
                    ),
                )
                .with_span(span)
                .with_note("every label must have exactly one stacking-weight row")
                .with_help("the snapshot mixes state from two different models; retrain"),
            );
        }
        for (i, row) in weights.iter().enumerate() {
            let Value::Seq(row) = row else { continue };
            if row.len() != learner_names.len() {
                out.push(
                    Diagnostic::new(
                        Code::MetaLabelSkew,
                        format!(
                            "meta-weight row {i} has {} column(s) but the snapshot holds {} \
                             learner(s)",
                            row.len(),
                            learner_names.len()
                        ),
                    )
                    .with_span(span),
                );
                break;
            }
        }
    }

    let mut nonfinite = 0usize;
    for (i, row) in weights.iter().enumerate() {
        let Value::Seq(row) = row else { continue };
        for (j, w) in row.iter().enumerate() {
            if !is_finite_number(w) {
                nonfinite += 1;
                if nonfinite <= 3 {
                    let label = summary
                        .labels
                        .get(i)
                        .map_or_else(|| format!("row {i}"), |l| format!("`{l}`"));
                    let learner = learner_names
                        .get(j)
                        .map_or_else(|| format!("column {j}"), |n| format!("`{n}`"));
                    out.push(
                        Diagnostic::new(
                            Code::NonFiniteMetaWeight,
                            format!(
                                "stacking weight of {learner} for {label} is not a finite \
                                 number ({})",
                                render_scalar(w)
                            ),
                        )
                        .with_span(span)
                        .with_note("JSON has no NaN/Infinity; serializers write them as `null`")
                        .with_help("the regression produced a non-finite weight; retrain"),
                    );
                }
            }
        }
    }
    if nonfinite > 3 {
        out.push(
            Diagnostic::new(
                Code::NonFiniteMetaWeight,
                format!(
                    "...and {} more non-finite stacking weight(s)",
                    nonfinite - 3
                ),
            )
            .with_span(span),
        );
    }

    if summary.trained && nonfinite == 0 && !weights.is_empty() {
        for (j, name) in learner_names.iter().enumerate() {
            let all_zero = weights.iter().all(|row| match row {
                Value::Seq(row) => num_is_zero(row.get(j)),
                _ => false,
            });
            if all_zero {
                out.push(
                    Diagnostic::new(
                        Code::ZeroWeightLearner,
                        format!(
                            "learner `{name}` has an all-zero stacking-weight column: it is \
                             loaded and run but contributes nothing to any label"
                        ),
                    )
                    .with_span(span)
                    .with_help("drop the learner from the configuration or retrain the stack"),
                );
            }
        }
    }
}

/// Cross-checks the stored mediated DTD against the stored label set.
fn audit_mediated_dtd(text: &str, summary: &SnapshotSummary, out: &mut Vec<Diagnostic>) {
    // Pre-analysis snapshots carry no mediated DTD; the label set alone is
    // authoritative for them, so there is nothing to cross-check.
    if summary.mediated_dtd.is_empty() {
        return;
    }
    let span = key_span(text, "mediated_dtd");
    let dtd = match lsd_xml::parse_dtd(&summary.mediated_dtd) {
        Ok(dtd) => dtd,
        Err(e) => {
            out.push(
                Diagnostic::new(
                    Code::MediatedDtdMismatch,
                    format!("snapshot's mediated DTD does not parse: {e}"),
                )
                .with_span(span),
            );
            return;
        }
    };
    if summary.labels.is_empty() {
        return; // already reported as MalformedSnapshot
    }
    let mut expected: Vec<String> = dtd.element_names().map(str::to_string).collect();
    expected.push("OTHER".to_string());
    expected.sort();
    let mut stored = summary.labels.clone();
    stored.sort();
    if expected != stored {
        let missing: Vec<&String> = expected.iter().filter(|l| !stored.contains(l)).collect();
        let extra: Vec<&String> = stored.iter().filter(|l| !expected.contains(l)).collect();
        let mut d = Diagnostic::new(
            Code::MediatedDtdMismatch,
            "snapshot's label set disagrees with its mediated DTD",
        )
        .with_span(span)
        .with_help("the schema or label set was edited after training; retrain");
        if !missing.is_empty() {
            d = d.with_note(format!(
                "declared in the DTD but absent from the label set: {}",
                join(&missing)
            ));
        }
        if !extra.is_empty() {
            d = d.with_note(format!(
                "in the label set but not declared in the DTD: {}",
                join(&extra)
            ));
        }
        out.push(d);
    }
}

/// True when a trained learner's serialized state shows it never saw a
/// training example. Returns a human-readable reason.
fn degenerate_learner(learner: &Value) -> Option<String> {
    let Value::Map(entries) = learner else {
        return None;
    };
    let (kind, body) = entries.first()?;
    let Value::Map(body) = body else { return None };
    match kind.as_str() {
        // WHIRL learners: the example store and the raw-document store are
        // both empty, so the vocabulary is empty and every query scores
        // uniform.
        "Name" | "Content" => {
            let whirl = match get(body, "whirl") {
                Some(Value::Map(w)) => w,
                _ => return None,
            };
            let empty = |key: &str| match get(whirl, key) {
                Some(Value::Seq(items)) => items.is_empty(),
                _ => true,
            };
            (empty("examples") && empty("docs"))
                .then(|| "its WHIRL vocabulary is empty (no stored examples)".to_string())
        }
        // Naive-Bayes-backed learners: zero observed documents.
        "NaiveBayes" | "Xml" | "Format" => match get(body, "model") {
            Some(Value::Map(model)) => num_is_zero(get(model, "total_docs"))
                .then(|| "its Naive Bayes model observed zero documents".to_string()),
            _ => None,
        },
        // Gaussian stats learner: zero accumulated mass.
        "Stats" => num_is_zero(get(body, "total"))
            .then(|| "its value-statistics model observed zero values".to_string()),
        // Parameter-only learners (e.g. the county recognizer) have no
        // trained state to lose.
        _ => None,
    }
}

fn is_finite_number(v: &Value) -> bool {
    match v {
        Value::Int(_) => true,
        Value::Float(f) => f.is_finite(),
        _ => false,
    }
}

fn num_is_zero(v: Option<&Value>) -> bool {
    match v {
        Some(Value::Int(i)) => *i == 0,
        Some(Value::Float(f)) => *f == 0.0,
        _ => false,
    }
}

/// The externally-tagged variant name of one serialized learner.
fn learner_kind(learner: &Value) -> Option<String> {
    match learner {
        Value::Map(entries) => entries.first().map(|(k, _)| k.clone()),
        Value::Str(unit) => Some(unit.clone()),
        _ => None,
    }
}

pub(crate) fn get<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Byte span of the first `"key"` occurrence in the artifact text — enough
/// for the caret renderer to point at the offending field.
fn key_span(text: &str, key: &str) -> Span {
    let needle = format!("\"{key}\"");
    match text.find(&needle) {
        Some(start) => Span::new(start, start + needle.len()),
        None => Span::SYNTHETIC,
    }
}

/// Extracts the `at byte N` offset our JSON parser embeds in its messages,
/// so even an unparseable artifact gets a caret.
fn parse_error_span(message: &str, text: &str) -> Span {
    let offset = message
        .rsplit("at byte ")
        .next()
        .and_then(|tail| tail.trim().parse::<usize>().ok())
        .unwrap_or(0)
        .min(text.len());
    Span::new(offset, (offset + 1).min(text.len()))
}

fn render_scalar(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Seq(_) => "an array".to_string(),
        Value::Map(_) => "an object".to_string(),
    }
}

fn join(items: &[&String]) -> String {
    items
        .iter()
        .map(|s| format!("`{s}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;

    fn minimal(trained: bool, weights: &str) -> String {
        format!(
            r#"{{
  "version": 1,
  "mediated_dtd": "",
  "labels": ["A", "B", "OTHER"],
  "learners": [{{"Stats": {{"num_labels": 3, "moments": [], "class_counts": [1.0], "total": 3.0}}}}],
  "xml_index": null,
  "meta": {{"weights": {weights}}},
  "constraints": [],
  "trained": {trained},
  "feedback_applied": 0
}}"#
        )
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_snapshot_is_clean() {
        let text = minimal(true, "[[0.5], [0.5], [0.2]]");
        assert_eq!(audit_snapshot(&text), Vec::new());
    }

    #[test]
    fn unparseable_json_is_lsd207_with_offset_span() {
        let diags = audit_snapshot("{\"version\": 1, !}");
        assert_eq!(codes(&diags), ["LSD207"]);
        assert_eq!(diags[0].severity, Severity::Error);
        let span = diags[0].span.expect("parse errors carry the byte offset");
        assert_eq!(span.start, 15);
    }

    #[test]
    fn untrained_snapshot_is_lsd201() {
        let text = minimal(false, "[]");
        let diags = audit_snapshot(&text);
        assert_eq!(codes(&diags), ["LSD201"]);
        let span = diags[0].span.expect("span points at the trained field");
        assert_eq!(&text[span.start..span.end], "\"trained\"");
    }

    #[test]
    fn null_weight_is_lsd202() {
        // `null` is exactly what the JSON serializer writes for a NaN
        // weight, so a NaN-poisoned regression is detectable on disk.
        let diags = audit_snapshot(&minimal(true, "[[null], [0.5], [0.2]]"));
        assert_eq!(codes(&diags), ["LSD202"]);
        assert!(diags[0].message.contains("`Stats`"));
        assert!(diags[0].message.contains("`A`"));
    }

    #[test]
    fn many_nonfinite_weights_are_summarized() {
        let diags = audit_snapshot(&minimal(true, "[[null], [null], [null]]"));
        assert_eq!(codes(&diags), ["LSD202", "LSD202", "LSD202"]);
    }

    #[test]
    fn zero_column_is_lsd203_warning() {
        let diags = audit_snapshot(&minimal(true, "[[0.0], [0], [0.0]]"));
        assert_eq!(codes(&diags), ["LSD203"]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn label_row_skew_is_lsd205() {
        let diags = audit_snapshot(&minimal(true, "[[0.5], [0.5]]"));
        assert_eq!(codes(&diags), ["LSD205"]);
        assert!(diags[0].message.contains("2 label row(s)"));
        assert!(diags[0].message.contains("3 label(s)"));
    }

    #[test]
    fn learner_column_skew_is_lsd205() {
        let diags = audit_snapshot(&minimal(true, "[[0.5, 0.1], [0.5, 0.1], [0.2, 0.1]]"));
        assert_eq!(codes(&diags), ["LSD205"]);
        assert!(diags[0].message.contains("2 column(s)"));
    }

    #[test]
    fn degenerate_stats_learner_is_lsd204() {
        let text = minimal(true, "[[0.5], [0.5], [0.2]]").replace("\"total\": 3.0", "\"total\": 0");
        let diags = audit_snapshot(&text);
        assert_eq!(codes(&diags), ["LSD204"]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn untrained_learners_are_not_flagged_on_untrained_snapshots() {
        let text = minimal(false, "[]").replace("\"total\": 3.0", "\"total\": 0");
        assert_eq!(codes(&audit_snapshot(&text)), ["LSD201"]);
    }

    #[test]
    fn empty_whirl_vocabulary_is_lsd204() {
        let text = minimal(true, "[[0.5], [0.5], [0.2]]").replace(
            r#"{"Stats": {"num_labels": 3, "moments": [], "class_counts": [1.0], "total": 3.0}}"#,
            r#"{"Content": {"num_labels": 3, "config": {}, "whirl": {"docs": [], "examples": [], "num_labels": 3}}}"#,
        );
        let diags = audit_snapshot(&text);
        assert_eq!(codes(&diags), ["LSD204"]);
        assert!(diags[0].message.contains("WHIRL vocabulary"));
    }

    #[test]
    fn mediated_dtd_label_disagreement_is_lsd206() {
        let text = minimal(true, "[[0.5], [0.5], [0.2]]").replace(
            "\"mediated_dtd\": \"\"",
            "\"mediated_dtd\": \"<!ELEMENT A (#PCDATA)>\\n<!ELEMENT C (#PCDATA)>\"",
        );
        let diags = audit_snapshot(&text);
        assert_eq!(codes(&diags), ["LSD206"]);
        assert!(
            diags[0].notes.iter().any(|n| n.contains("`C`")),
            "{diags:?}"
        );
        assert!(
            diags[0].notes.iter().any(|n| n.contains("`B`")),
            "{diags:?}"
        );
    }

    #[test]
    fn unparseable_mediated_dtd_is_lsd206() {
        let text = minimal(true, "[[0.5], [0.5], [0.2]]").replace(
            "\"mediated_dtd\": \"\"",
            "\"mediated_dtd\": \"<!ELEMENT broken\"",
        );
        assert_eq!(codes(&audit_snapshot(&text)), ["LSD206"]);
    }

    /// A clean trained snapshot plus one provenance entry with the given
    /// `inferred` JSON value.
    fn with_provenance(inferred: &str) -> String {
        minimal(true, "[[0.5], [0.5], [0.2]]").replace(
            "\"feedback_applied\": 0",
            &format!(
                "\"feedback_applied\": 0,\n  \"source_provenance\": [{{\"source\": \"bare.xml\", \
                 \"format\": \"Xml\", \"listings\": 2, \"inferred\": {inferred}}}]"
            ),
        )
    }

    #[test]
    fn weakly_supported_inferred_schema_is_lsd231_warning() {
        let text = with_provenance(
            r#"{"corpus_size": 2, "elements": 3, "edges": 4, "generalizations": 1,
                "fallbacks": 0, "element_support": {"home": 2, "area": 2, "pool": 1}}"#,
        );
        let diags = audit_snapshot(&text);
        assert_eq!(codes(&diags), ["LSD231"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("`bare.xml`"), "{diags:?}");
        assert!(diags[0].message.contains("3 element(s)"), "{diags:?}");
        assert!(
            diags[0]
                .notes
                .iter()
                .any(|n| n.contains("`pool` (seen 1x)")),
            "{diags:?}"
        );
    }

    #[test]
    fn well_supported_inferred_schema_is_clean() {
        let text = with_provenance(
            r#"{"corpus_size": 40, "elements": 2, "edges": 3, "generalizations": 0,
                "fallbacks": 0, "element_support": {"home": 40, "area": 38}}"#,
        );
        assert_eq!(audit_snapshot(&text), Vec::new());
    }

    #[test]
    fn native_schema_provenance_is_not_flagged() {
        let text = with_provenance("null");
        assert_eq!(audit_snapshot(&text), Vec::new());
    }

    #[test]
    fn summary_extracts_cross_check_context() {
        let text = minimal(true, "[[0.5], [0.5], [0.2]]")
            .replace("\"feedback_applied\": 0", "\"feedback_applied\": 7");
        let (diags, summary) = audit_snapshot_with_summary(&text);
        assert!(diags.is_empty());
        assert_eq!(summary.version, Some(1));
        assert_eq!(summary.labels, ["A", "B", "OTHER"]);
        assert_eq!(summary.feedback_applied, 7);
        assert!(summary.trained);
    }
}
