//! Rustc-style plain-text rendering of diagnostics:
//!
//! ```text
//! error[LSD001]: content model of `r` is not 1-unambiguous: ((a, b) | (a, c))
//!  --> mediated.dtd:1:1
//!   |
//! 1 | <!ELEMENT r ((a, b) | (a, c))>
//!   | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
//!   = note: two different occurrences of `a` can both match the first child
//!   = help: rewrite the model so the next child name always determines a unique position
//! ```

use crate::diagnostic::Diagnostic;
use std::fmt::Write as _;

/// Renders one diagnostic. `source` is the text the diagnostic's span
/// indexes into (the DTD that was analyzed); without it — or without a
/// span — the location block is omitted and only the headline, notes and
/// help are printed.
pub fn render(diagnostic: &Diagnostic, source: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{diagnostic}");

    let location = diagnostic
        .span
        .and_then(|span| source.and_then(|text| span.locate(text).map(|loc| (span, loc))));
    if let Some((_, loc)) = location {
        let origin = diagnostic.origin.as_deref().unwrap_or("<dtd>");
        let gutter = loc.line.to_string().len();
        let _ = writeln!(
            out,
            "{:gutter$}--> {origin}:{}:{}",
            "", loc.line, loc.column
        );
        let _ = writeln!(out, "{:gutter$} |", "");
        let _ = writeln!(out, "{} | {}", loc.line, loc.line_text);
        let _ = writeln!(
            out,
            "{:gutter$} | {:pad$}{}",
            "",
            "",
            "^".repeat(loc.underline_len),
            pad = loc.column - 1
        );
    } else if let Some(origin) = diagnostic.origin.as_deref() {
        let _ = writeln!(out, " --> {origin}");
    }

    for note in &diagnostic.notes {
        let _ = writeln!(out, "  = note: {note}");
    }
    if let Some(help) = &diagnostic.help {
        let _ = writeln!(out, "  = help: {help}");
    }
    out
}

/// Renders a batch of diagnostics followed by a rustc-style summary line
/// (`"error: aborting due to 2 previous errors; 1 warning emitted"`), or
/// the empty string when there is nothing to report.
pub fn render_all(diagnostics: &[Diagnostic], source: Option<&str>) -> String {
    if diagnostics.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&render(d, source));
        out.push('\n');
    }
    let errors = diagnostics.iter().filter(|d| d.is_error()).count();
    let warnings = diagnostics.len() - errors;
    let plural = |n: usize, what: &str| format!("{n} {what}{}", if n == 1 { "" } else { "s" });
    match (errors, warnings) {
        (0, w) => {
            let _ = writeln!(out, "warning: {} emitted", plural(w, "warning"));
        }
        (e, 0) => {
            let _ = writeln!(
                out,
                "error: aborting due to {}",
                plural(e, "previous error")
            );
        }
        (e, w) => {
            let _ = writeln!(
                out,
                "error: aborting due to {}; {} emitted",
                plural(e, "previous error"),
                plural(w, "warning")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Code;
    use lsd_xml::Span;

    #[test]
    fn renders_span_with_underline() {
        let text = "<!ELEMENT a (#PCDATA)>\n<!ELEMENT r (ghost)>";
        let start = text.find("<!ELEMENT r").unwrap();
        let d = Diagnostic::new(
            Code::UndeclaredElementRef,
            "content model of `r` references undeclared element `ghost`",
        )
        .with_span(Span::new(start, text.len()))
        .with_origin("mediated.dtd")
        .with_help("declare `<!ELEMENT ghost ...>` or drop the reference");
        let rendered = render(&d, Some(text));
        let expected = "\
error[LSD002]: content model of `r` references undeclared element `ghost`
 --> mediated.dtd:2:1
  |
2 | <!ELEMENT r (ghost)>
  | ^^^^^^^^^^^^^^^^^^^^
  = help: declare `<!ELEMENT ghost ...>` or drop the reference
";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn renders_mid_line_span() {
        let text = "<!ATTLIST r id CDATA #REQUIRED>";
        let start = text.find("id").unwrap();
        let d = Diagnostic::new(Code::DuplicateAttribute, "duplicate attribute `id`")
            .with_span(Span::new(start, start + 2));
        let rendered = render(&d, Some(text));
        assert!(rendered.contains("1 | <!ATTLIST r id CDATA #REQUIRED>"));
        let underline_line = rendered
            .lines()
            .find(|l| l.contains('^'))
            .expect("underline rendered");
        assert_eq!(underline_line, "  |             ^^");
    }

    #[test]
    fn renders_without_source_or_span() {
        let d = Diagnostic::new(
            Code::UnknownLabel,
            "constraint references unknown label `X`",
        )
        .with_note("in: [hard] exactly one element matches X");
        let rendered = render(&d, None);
        assert_eq!(
            rendered,
            "error[LSD101]: constraint references unknown label `X`\n\
             \x20 = note: in: [hard] exactly one element matches X\n"
        );
    }

    #[test]
    fn summary_counts_errors_and_warnings() {
        let e = Diagnostic::new(Code::UndeclaredElementRef, "e");
        let w = Diagnostic::new(Code::UnreachableElement, "w");
        let all = render_all(&[e.clone(), w.clone(), w.clone()], None);
        assert!(all.ends_with("error: aborting due to 1 previous error; 2 warnings emitted\n"));
        assert!(render_all(&[w], None).ends_with("warning: 1 warning emitted\n"));
        assert!(render_all(&[e.clone(), e], None)
            .ends_with("error: aborting due to 2 previous errors\n"));
        assert_eq!(render_all(&[], None), "");
    }
}
