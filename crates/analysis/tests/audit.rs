//! Integration tests for the artifact auditors against REAL artifacts:
//! snapshots written by `Lsd::save_json` and WALs written by
//! `FeedbackWal::append` (via the `lsd-core` dev-dependency), corrupted
//! the way production artifacts actually corrupt — a NaN weight that the
//! JSON serializer writes as `null`, a crash-torn tail at every possible
//! byte offset, a flipped byte mid-record.

use lsd_analysis::{
    audit_registry, audit_snapshot, audit_snapshot_with_summary, audit_wal, Diagnostic, Severity,
    WalAuditContext,
};
use lsd_core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher, StatsLearner};
use lsd_core::{Correction, FeedbackRecord, FeedbackWal, Lsd, LsdBuilder, Source, TrainedSource};
use lsd_xml::{parse_dtd, parse_fragment};
use serde::Value;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const MEDIATED: &str = "<!ELEMENT HOUSE (ADDRESS, DESCRIPTION, PHONE)>\n\
                        <!ELEMENT ADDRESS (#PCDATA)>\n\
                        <!ELEMENT DESCRIPTION (#PCDATA)>\n\
                        <!ELEMENT PHONE (#PCDATA)>";

const SOURCE_DTD: &str = "<!ELEMENT home (location, comments, contact)>\n\
                          <!ELEMENT location (#PCDATA)>\n\
                          <!ELEMENT comments (#PCDATA)>\n\
                          <!ELEMENT contact (#PCDATA)>";

fn temp_dir(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir()
        .join("lsd-audit-int-tests")
        .join(format!(
            "{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn train_model() -> Lsd {
    let mediated = parse_dtd(MEDIATED).expect("mediated DTD");
    let dtd = parse_dtd(SOURCE_DTD).expect("source DTD");
    let listings = [
        ("Miami, FL", "Great view of the bay", "(305) 111 2222"),
        ("Boston, MA", "Fantastic yard and porch", "(617) 333 4444"),
        ("Austin, TX", "Nice area near downtown", "(512) 555 6666"),
    ]
    .iter()
    .map(|(a, d, p)| {
        parse_fragment(&format!(
            "<home><location>{a}</location><comments>{d}</comments>\
             <contact>{p}</contact></home>"
        ))
        .expect("well-formed listing")
    })
    .collect();
    let train = TrainedSource {
        source: Source::from_xml("train", dtd, listings),
        mapping: HashMap::from([
            ("home".to_string(), "HOUSE".to_string()),
            ("location".to_string(), "ADDRESS".to_string()),
            ("comments".to_string(), "DESCRIPTION".to_string()),
            ("contact".to_string(), "PHONE".to_string()),
        ]),
    };
    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::new(n, HashMap::new())))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .add_learner(Box::new(StatsLearner::new(n)))
        .with_xml_learner(None)
        .build()
        .expect("builds");
    lsd.train(std::slice::from_ref(&train)).expect("trains");
    lsd
}

/// The trained model serialized by the real persistence path.
fn snapshot_text(label: &str) -> String {
    let dir = temp_dir(label);
    let path = dir.join("model.json");
    train_model().save_json(&path).expect("saves");
    let text = std::fs::read_to_string(&path).expect("reads");
    std::fs::remove_dir_all(&dir).ok();
    text
}

/// Edits one field of a snapshot through the JSON layer — the same
/// transformation a buggy writer or a NaN-poisoned regression performs.
fn edit_snapshot(text: &str, edit: impl FnOnce(&mut Vec<(String, Value)>)) -> String {
    let mut value: Value = serde_json::from_str(text).expect("snapshot parses");
    let Value::Map(fields) = &mut value else {
        panic!("snapshot root is an object");
    };
    edit(fields);
    serde_json::to_string(&value).expect("re-serializes")
}

fn field<'v>(fields: &'v mut [(String, Value)], key: &str) -> &'v mut Value {
    &mut fields
        .iter_mut()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("snapshot has a `{key}` field"))
        .1
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

fn wal_record(i: u64, label: &str) -> FeedbackRecord {
    let dtd = parse_dtd(SOURCE_DTD).expect("source DTD");
    let listing = parse_fragment(
        "<home><location>Kent, WA</location><comments>quiet street</comments>\
         <contact>(206) 111 2222</contact></home>",
    )
    .expect("listing");
    FeedbackRecord::from_source(
        &Source::from_xml("fb", dtd, vec![listing]),
        vec![Correction::tag_is("location", label).with_provenance("test", 1000 + i, "test")],
    )
}

#[test]
fn real_trained_snapshot_audits_clean() {
    let text = snapshot_text("clean");
    assert_eq!(audit_snapshot(&text), Vec::new());
    let (_, summary) = audit_snapshot_with_summary(&text);
    assert!(summary.trained);
    assert_eq!(summary.version, Some(1));
    assert_eq!(
        summary.labels,
        ["HOUSE", "ADDRESS", "DESCRIPTION", "PHONE", "OTHER"]
    );
}

#[test]
fn nan_meta_weight_round_trips_as_null_and_is_lsd202() {
    // The serializer genuinely writes NaN as null — the exact artifact a
    // NaN-poisoned regression leaves on disk.
    assert_eq!(
        serde_json::to_string(&Value::Float(f64::NAN)).unwrap(),
        "null"
    );

    let text = snapshot_text("nan");
    let poisoned = edit_snapshot(&text, |fields| {
        let Value::Map(meta) = field(fields, "meta") else {
            panic!("meta is an object");
        };
        let Value::Seq(rows) = field(meta, "weights") else {
            panic!("weights is a matrix");
        };
        let Value::Seq(row) = &mut rows[0] else {
            panic!("weight rows are arrays");
        };
        row[0] = Value::Null;
    });
    let diags = audit_snapshot(&poisoned);
    assert_eq!(codes(&diags), ["LSD202"]);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("`HOUSE`"), "{}", diags[0].message);
}

#[test]
fn untrained_flag_is_lsd201_error() {
    let text = snapshot_text("untrained");
    let untrained = edit_snapshot(&text, |fields| {
        *field(fields, "trained") = Value::Bool(false);
    });
    let diags = audit_snapshot(&untrained);
    assert_eq!(codes(&diags), ["LSD201"]);
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn dropped_label_is_lsd205_and_lsd206() {
    let text = snapshot_text("skew");
    let skewed = edit_snapshot(&text, |fields| {
        let Value::Seq(labels) = field(fields, "labels") else {
            panic!("labels is an array");
        };
        labels.remove(0);
    });
    let diags = audit_snapshot(&skewed);
    let found = codes(&diags);
    assert!(
        found.contains(&"LSD205"),
        "meta rows now outnumber labels: {found:?}"
    );
    assert!(
        found.contains(&"LSD206"),
        "DTD still declares the dropped label: {found:?}"
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn wal_magic_constants_agree_across_crates() {
    // The auditor re-implements the frame walk (lsd-core depends on
    // lsd-analysis, so it cannot call into it); this pins the two magics
    // to each other.
    assert_eq!(lsd_core::WAL_MAGIC, b"LSDWAL01");
    let dir = temp_dir("magic");
    let (_, records) = FeedbackWal::open(dir.join("m.wal")).expect("creates");
    assert!(records.is_empty());
    let bytes = std::fs::read(dir.join("m.wal")).expect("reads");
    assert_eq!(audit_wal(&bytes, None), Vec::new());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_every_byte_offset_of_the_last_record_is_lsd212() {
    let dir = temp_dir("torn");
    let path = dir.join("m.wal");
    let intact_len;
    {
        let (mut wal, _) = FeedbackWal::open(&path).expect("creates");
        wal.append(&wal_record(0, "ADDRESS")).expect("appends");
        wal.append(&wal_record(1, "ADDRESS")).expect("appends");
        intact_len = std::fs::metadata(&path).expect("stats").len() as usize;
        wal.append(&wal_record(2, "ADDRESS")).expect("appends");
    }
    let full = std::fs::read(&path).expect("reads");
    // At exactly the intact boundary the file is a clean 2-record log...
    assert_eq!(audit_wal(&full[..intact_len], None), Vec::new());
    // ...and every cut inside the last record is a torn tail: one LSD212
    // warning, never an error, never a panic.
    for cut in intact_len + 1..full.len() {
        let diags = audit_wal(&full[..cut], None);
        assert_eq!(codes(&diags), ["LSD212"], "cut at {cut}");
        assert_eq!(diags[0].severity, Severity::Warning, "cut at {cut}");
        let span = diags[0].span.expect("torn spans exist");
        assert_eq!((span.start, span.end), (intact_len, cut), "cut at {cut}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_record_crc_corruption_is_lsd213_error() {
    let dir = temp_dir("crc");
    let path = dir.join("m.wal");
    let first_record_end;
    {
        let (mut wal, _) = FeedbackWal::open(&path).expect("creates");
        wal.append(&wal_record(0, "ADDRESS")).expect("appends");
        first_record_end = std::fs::metadata(&path).expect("stats").len() as usize;
        wal.append(&wal_record(1, "ADDRESS")).expect("appends");
    }
    let mut bytes = std::fs::read(&path).expect("reads");
    bytes[first_record_end - 2] ^= 0xFF; // inside record 0's payload
    let diags = audit_wal(&bytes, None);
    assert_eq!(codes(&diags), ["LSD213"]);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(
        diags[0].message.contains("record 0"),
        "{}",
        diags[0].message
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fold_point_beyond_wal_length_is_lsd214() {
    let dir = temp_dir("fold");
    let path = dir.join("m.wal");
    {
        let (mut wal, _) = FeedbackWal::open(&path).expect("creates");
        wal.append(&wal_record(0, "ADDRESS")).expect("appends");
    }
    let bytes = std::fs::read(&path).expect("reads");
    let (_, summary) = audit_snapshot_with_summary(&snapshot_text("fold-ctx"));
    let ctx = WalAuditContext {
        labels: summary.labels,
        feedback_applied: 2, // the WAL holds 1
    };
    let diags = audit_wal(&bytes, Some(&ctx));
    assert_eq!(codes(&diags), ["LSD214"]);
    assert_eq!(diags[0].severity, Severity::Error);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn correction_to_unknown_label_is_lsd215() {
    let dir = temp_dir("label");
    let path = dir.join("m.wal");
    {
        let (mut wal, _) = FeedbackWal::open(&path).expect("creates");
        wal.append(&wal_record(0, "ADDRESS")).expect("appends");
        wal.append(&wal_record(1, "ZIPCODE")).expect("appends"); // not in the model
    }
    let bytes = std::fs::read(&path).expect("reads");
    let (_, summary) = audit_snapshot_with_summary(&snapshot_text("label-ctx"));
    let ctx = WalAuditContext {
        labels: summary.labels,
        feedback_applied: 0,
    };
    let diags = audit_wal(&bytes, Some(&ctx));
    assert_eq!(codes(&diags), ["LSD215"]);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("`ZIPCODE`"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn registry_with_duplicate_slugs_and_version_skew() {
    let dir = temp_dir("registry");
    let text = snapshot_text("registry-model");
    std::fs::write(dir.join("real_estate.json"), &text).expect("writes");
    std::fs::write(dir.join("Real-Estate.json"), &text).expect("writes");
    let old = edit_snapshot(&text, |fields| {
        // An older-format snapshot (version gating accepts <= current).
        *field(fields, "version") = Value::Int(0);
    });
    std::fs::write(dir.join("legacy.json"), &old).expect("writes");
    let diags = audit_registry(&dir).expect("audits");
    let found = codes(&diags);
    assert!(found.contains(&"LSD221"), "duplicate slug: {found:?}");
    assert!(found.contains(&"LSD222"), "version skew: {found:?}");
    let dup = diags
        .iter()
        .find(|d| d.code.as_str() == "LSD221")
        .expect("dup");
    assert_eq!(dup.severity, Severity::Error);
    let skew = diags
        .iter()
        .find(|d| d.code.as_str() == "LSD222")
        .expect("skew");
    assert_eq!(skew.severity, Severity::Warning);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn acceptance_registry_healthy_plus_nan_plus_torn_wal() {
    // The ISSUE's acceptance scenario: one healthy model, one NaN-weight
    // snapshot, one torn WAL — exactly the expected codes, exactly the
    // expected severities.
    let dir = temp_dir("acceptance");
    let text = snapshot_text("acceptance-model");
    std::fs::write(dir.join("healthy.json"), &text).expect("writes");

    let poisoned = edit_snapshot(&text, |fields| {
        let Value::Map(meta) = field(fields, "meta") else {
            panic!("meta is an object");
        };
        let Value::Seq(rows) = field(meta, "weights") else {
            panic!("weights is a matrix");
        };
        let Value::Seq(row) = &mut rows[0] else {
            panic!("rows are arrays");
        };
        row[0] = Value::Null;
    });
    std::fs::write(dir.join("poisoned.json"), &poisoned).expect("writes");

    let wal_path = dir.join("healthy.wal");
    {
        let (mut wal, _) = FeedbackWal::open(&wal_path).expect("creates");
        wal.append(&wal_record(0, "ADDRESS")).expect("appends");
    }
    let mut bytes = std::fs::read(&wal_path).expect("reads");
    bytes.truncate(bytes.len() - 3); // crash-torn tail
    std::fs::write(&wal_path, &bytes).expect("writes");

    let diags = audit_registry(&dir).expect("audits");
    let mut found: Vec<(&str, Severity)> = diags
        .iter()
        .map(|d| (d.code.as_str(), d.severity))
        .collect();
    found.sort();
    assert_eq!(
        found,
        [("LSD202", Severity::Error), ("LSD212", Severity::Warning),],
        "{diags:#?}"
    );
    let nan = diags
        .iter()
        .find(|d| d.code.as_str() == "LSD202")
        .expect("nan");
    assert_eq!(nan.origin.as_deref(), Some("poisoned.json"));
    let torn = diags
        .iter()
        .find(|d| d.code.as_str() == "LSD212")
        .expect("torn");
    assert_eq!(torn.origin.as_deref(), Some("healthy.wal"));
    std::fs::remove_dir_all(&dir).ok();
}
