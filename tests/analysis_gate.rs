//! The static-analysis pass gating the pipeline: `train` and
//! `set_constraints` must reject error-severity diagnostics with
//! [`LsdError::Analysis`], while warnings pass through and surface in the
//! observability metrics.

use lsd::constraints::{DomainConstraint, Predicate};
use lsd::core::learners::NameMatcher;
use lsd::{LsdBuilder, LsdError, Source, TrainedSource};
use lsd_xml::{parse_dtd, parse_fragment};
use std::collections::HashMap;

fn training_source() -> TrainedSource {
    let dtd = parse_dtd(
        "<!ELEMENT h (addr, cost)>\n<!ELEMENT addr (#PCDATA)>\n<!ELEMENT cost (#PCDATA)>",
    )
    .unwrap();
    let listings = vec![
        parse_fragment("<h><addr>Miami, FL</addr><cost>$100,000</cost></h>").unwrap(),
        parse_fragment("<h><addr>Boston, MA</addr><cost>$200,000</cost></h>").unwrap(),
    ];
    TrainedSource {
        source: Source::from_xml("web.com", dtd, listings),
        mapping: HashMap::from([
            ("h".to_string(), "H".to_string()),
            ("addr".to_string(), "ADDRESS".to_string()),
            ("cost".to_string(), "PRICE".to_string()),
        ]),
    }
}

fn builder_for(mediated: &str) -> LsdBuilder {
    let mediated = parse_dtd(mediated).unwrap();
    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    builder.add_learner(Box::new(NameMatcher::new(n, HashMap::new())))
}

const CLEAN_MEDIATED: &str = "<!ELEMENT H (ADDRESS, PRICE)>\n\
                              <!ELEMENT ADDRESS (#PCDATA)>\n\
                              <!ELEMENT PRICE (#PCDATA)>";

#[test]
fn train_rejects_ambiguous_mediated_schema() {
    // ((ADDRESS, PRICE) | (ADDRESS)) is not 1-unambiguous.
    let mut lsd = builder_for(
        "<!ELEMENT H ((ADDRESS, PRICE) | (ADDRESS))>\n\
         <!ELEMENT ADDRESS (#PCDATA)>\n\
         <!ELEMENT PRICE (#PCDATA)>",
    )
    .build()
    .unwrap();
    match lsd.train(&[training_source()]) {
        Err(LsdError::Analysis { diagnostics }) => {
            assert!(
                diagnostics.iter().any(|d| d.code.as_str() == "LSD001"),
                "{diagnostics:?}"
            );
            // The mediated schema is analyzed via its retained parse, so
            // the diagnostic carries the origin label.
            let d = diagnostics
                .iter()
                .find(|d| d.code.as_str() == "LSD001")
                .unwrap();
            assert_eq!(d.origin.as_deref(), Some("mediated schema"));
        }
        other => panic!("expected LsdError::Analysis, got {other:?}"),
    }
    assert!(!lsd.is_trained());
}

#[test]
fn train_rejects_broken_training_source_schema() {
    let mut lsd = builder_for(CLEAN_MEDIATED).build().unwrap();
    let mut ts = training_source();
    ts.source.dtd = parse_dtd("<!ELEMENT h (addr, ghost)>\n<!ELEMENT addr (#PCDATA)>").unwrap();
    match lsd.train(&[ts]) {
        Err(LsdError::Analysis { diagnostics }) => {
            let d = diagnostics
                .iter()
                .find(|d| d.code.as_str() == "LSD002")
                .expect("undeclared-element diagnostic");
            assert_eq!(d.origin.as_deref(), Some("web.com"));
        }
        other => panic!("expected LsdError::Analysis, got {other:?}"),
    }
}

#[test]
fn set_constraints_rejects_required_and_excluded_label() {
    let mut lsd = builder_for(CLEAN_MEDIATED).build().unwrap();
    let contradiction = vec![
        DomainConstraint::hard(Predicate::ExactlyOne {
            label: "PRICE".into(),
        }),
        DomainConstraint::hard(Predicate::AtMostK {
            label: "PRICE".into(),
            k: 0,
        }),
    ];
    match lsd.set_constraints(contradiction) {
        Err(LsdError::Analysis { diagnostics }) => {
            assert!(
                diagnostics.iter().any(|d| d.code.as_str() == "LSD102"),
                "{diagnostics:?}"
            );
        }
        other => panic!("expected LsdError::Analysis, got {other:?}"),
    }
    // The previous (empty) constraint set stays in force.
    assert!(lsd.constraints().is_empty());
}

#[test]
fn set_constraints_rejects_statically_unsatisfiable_set() {
    let mut lsd = builder_for(CLEAN_MEDIATED).build().unwrap();
    let unsat = vec![
        DomainConstraint::hard(Predicate::ExactlyOne {
            label: "PRICE".into(),
        }),
        DomainConstraint::hard(Predicate::ExactlyOne {
            label: "ADDRESS".into(),
        }),
        DomainConstraint::hard(Predicate::MutuallyExclusive {
            a: "PRICE".into(),
            b: "ADDRESS".into(),
        }),
    ];
    match lsd.set_constraints(unsat) {
        Err(LsdError::Analysis { diagnostics }) => {
            assert!(
                diagnostics.iter().any(|d| d.code.as_str() == "LSD104"),
                "{diagnostics:?}"
            );
        }
        other => panic!("expected LsdError::Analysis, got {other:?}"),
    }
}

#[test]
fn unknown_label_keeps_its_dedicated_error() {
    let mut lsd = builder_for(CLEAN_MEDIATED).build().unwrap();
    let result = lsd.set_constraints(vec![DomainConstraint::hard(Predicate::ExactlyOne {
        label: "PRYCE".into(),
    })]);
    assert!(matches!(result, Err(LsdError::UnknownLabel { label }) if label == "PRYCE"));
}

#[test]
fn warnings_pass_training_and_are_counted_in_metrics() {
    // `EXTRA` is declared but unreachable from the mediated root: LSD003,
    // a warning — training proceeds and the report counts it.
    let mut lsd = builder_for(
        "<!ELEMENT H (ADDRESS, PRICE)>\n\
         <!ELEMENT ADDRESS (#PCDATA)>\n\
         <!ELEMENT PRICE (#PCDATA)>\n\
         <!ELEMENT EXTRA (#PCDATA)>",
    )
    .build()
    .unwrap();
    let report = lsd
        .train_with_report(&[training_source()])
        .expect("warnings must not block training");
    assert!(lsd.is_trained());
    assert_eq!(report.metrics.counter("analysis.warnings"), 1);
    let by_code = report.metrics.counters_labelled("analysis.diagnostics");
    assert_eq!(by_code, vec![("LSD003", 1)]);
}

#[test]
fn analyze_reports_without_gating() {
    let lsd = builder_for(
        "<!ELEMENT H (ADDRESS, PRICE)>\n\
         <!ELEMENT ADDRESS (#PCDATA)>\n\
         <!ELEMENT PRICE (#PCDATA)>\n\
         <!ELEMENT EXTRA (#PCDATA)>",
    )
    .build()
    .unwrap();
    let diags = lsd.analyze();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code.as_str(), "LSD003");
    let rendered = lsd::analysis::render_all(&diags, None);
    assert!(rendered.contains("warning[LSD003]"));
    assert!(rendered.contains("mediated schema"));
}
