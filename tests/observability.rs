//! The observability layer end to end: instrumented matching must report
//! search work and per-learner timings, span trees must nest correctly, and
//! the deterministic metric subset must not depend on the worker count.

use lsd::core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
use lsd::datagen::DomainId;
use lsd::obs::SpanRecord;
use lsd::{ExecPolicy, Lsd, LsdBuilder, LsdConfig, Source, TrainedSource};

fn to_source(gs: &lsd::datagen::GeneratedSource) -> Source {
    Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone())
}

fn build_trained() -> (Lsd, Vec<Source>) {
    let domain = DomainId::RealEstate1.generate(6, 11);
    let builder = LsdBuilder::new(&domain.mediated).with_config(LsdConfig::default());
    let n = builder.labels().len();
    let pairs: Vec<(&str, &str)> = domain
        .synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_xml_learner(None)
        .with_constraints(domain.constraints.clone())
        .build()
        .unwrap();
    let training: Vec<TrainedSource> = domain.sources[..3]
        .iter()
        .map(|gs| TrainedSource {
            source: to_source(gs),
            mapping: gs.mapping.clone(),
        })
        .collect();
    lsd.train(&training).unwrap();
    let targets: Vec<Source> = domain.sources[3..].iter().map(to_source).collect();
    (lsd, targets)
}

#[test]
fn match_report_counts_search_work_and_learner_time() {
    let (lsd, targets) = build_trained();
    let (outcome, report) = lsd.match_source_with_report(&targets[0]).unwrap();
    assert!(outcome.result.feasible);

    // The constraint search really ran.
    assert!(
        report.nodes_expanded() >= 1,
        "A* must expand at least one node, got {}",
        report.nodes_expanded()
    );
    assert!(report.constraint_evaluations() >= 1);
    assert_eq!(report.sources_matched(), 1);

    // Every registered learner predicted, and its wall time was recorded.
    let predict_nanos = report.predict_nanos();
    let predict_calls = report.predict_calls();
    for name in lsd.learner_names() {
        let ns = predict_nanos
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no predict-time entry for {name}"));
        assert!(ns.1 > 0, "{name} predict time must be nonzero");
        let calls = predict_calls
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no predict-call entry for {name}"));
        assert!(calls.1 > 0, "{name} must have predicted at least once");
    }
}

#[test]
fn train_report_counts_folds_and_learner_time() {
    let domain = DomainId::FacultyListings.generate(6, 3);
    let builder = LsdBuilder::new(&domain.mediated).with_config(LsdConfig::default());
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, [])))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .build()
        .unwrap();
    let training: Vec<TrainedSource> = domain.sources[..3]
        .iter()
        .map(|gs| TrainedSource {
            source: to_source(gs),
            mapping: gs.mapping.clone(),
        })
        .collect();
    let report = lsd.train_with_report(&training).unwrap();
    assert!(report.examples() > 0);
    // d = 5 folds per learner.
    assert_eq!(report.cv_folds(), 2 * 5);
    for name in lsd.learner_names() {
        let nanos = report.train_nanos();
        let entry = nanos
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no train-time entry for {name}"));
        assert!(entry.1 > 0, "{name} train time must be nonzero");
    }
}

/// Every non-root span must point at a recorded parent on the same thread
/// whose interval encloses the child's.
fn assert_well_formed(spans: &[SpanRecord]) {
    assert!(!spans.is_empty(), "instrumented run must record spans");
    for child in spans {
        let Some(parent_id) = child.parent else {
            continue;
        };
        let parent = spans
            .iter()
            .find(|s| s.id == parent_id)
            .unwrap_or_else(|| panic!("span {} has unrecorded parent {parent_id}", child.name));
        assert_eq!(
            parent.thread, child.thread,
            "parent {} and child {} recorded on different threads",
            parent.name, child.name
        );
        assert!(
            parent.start_ns <= child.start_ns,
            "parent {} starts after child {}",
            parent.name,
            child.name
        );
        assert!(
            parent.start_ns + parent.duration_ns >= child.start_ns + child.duration_ns,
            "parent {} ends before child {}",
            parent.name,
            child.name
        );
    }
}

#[test]
fn span_tree_is_well_formed() {
    let (lsd, targets) = build_trained();
    let (_, report) = lsd
        .match_batch_with_report(&targets, &ExecPolicy::with_threads(4))
        .unwrap();
    assert_well_formed(&report.metrics.spans);
    // The per-source pipeline spans are present and nested under a
    // match.source root.
    let source_spans = report
        .metrics
        .spans
        .iter()
        .filter(|s| s.name == "match.source")
        .count();
    assert_eq!(source_spans, targets.len());
    let stage1 = report
        .metrics
        .spans
        .iter()
        .find(|s| s.name == "match.stage1")
        .expect("stage-1 span recorded");
    let root_id = stage1.parent.expect("stage1 nests under match.source");
    let root = report
        .metrics
        .spans
        .iter()
        .find(|s| s.id == root_id)
        .expect("parent recorded");
    assert_eq!(root.name, "match.source");
}

#[test]
fn chrome_trace_is_well_formed_across_thread_counts() {
    let (lsd, targets) = build_trained();
    for threads in [1usize, 4] {
        let (_, report) = lsd
            .match_batch_with_report(&targets, &ExecPolicy::with_threads(threads))
            .unwrap();
        let trace = report.chrome_trace();
        let parsed: serde_json::Value =
            serde_json::from_str(&trace).unwrap_or_else(|e| panic!("trace must parse: {e}"));
        let Some(serde_json::Value::Seq(events)) = parsed.get("traceEvents").cloned() else {
            panic!("traceEvents must be an array");
        };
        // One complete ("X") event per recorded span, each with the fields
        // Perfetto needs, plus one thread-name metadata event per thread.
        let complete: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph")
                    .is_some_and(|p| *p == serde_json::Value::Str("X".into()))
            })
            .collect();
        assert_eq!(
            complete.len(),
            report.metrics.spans.len(),
            "one X event per span at {threads} threads"
        );
        for event in &complete {
            for key in ["name", "ts", "dur", "pid", "tid", "cat"] {
                assert!(event.get(key).is_some(), "X event missing `{key}`");
            }
        }
        let threads_seen: std::collections::BTreeSet<u64> =
            report.metrics.spans.iter().map(|s| s.thread).collect();
        let names = events
            .iter()
            .filter(|e| {
                e.get("ph")
                    .is_some_and(|p| *p == serde_json::Value::Str("M".into()))
            })
            .count();
        assert_eq!(
            names,
            threads_seen.len(),
            "one thread_name event per thread"
        );
    }
}

#[test]
fn report_events_round_trip_through_jsonl() {
    let (lsd, targets) = build_trained();
    let (_, report) = lsd
        .match_batch_with_report(&targets, &ExecPolicy::with_threads(2))
        .unwrap();
    let jsonl = report.events_jsonl(10_000);
    let events = lsd::obs::export::parse_jsonl(&jsonl).expect("round-trip");
    assert!(!events.is_empty());
    // Every counter in the snapshot appears as an event with its value.
    for (key, value) in &report.metrics.counters {
        let event = events
            .iter()
            .find(|e| e.kind == "counter" && e.name == *key)
            .unwrap_or_else(|| panic!("counter {key} must be exported"));
        assert_eq!(event.value, *value);
    }
    // Spans appear too, with their durations.
    let span_events = events.iter().filter(|e| e.kind == "span").count();
    assert_eq!(span_events, report.metrics.spans.len());
}

#[test]
fn deterministic_metrics_agree_across_thread_counts() {
    let (lsd, targets) = build_trained();
    let (outcomes1, report1) = lsd
        .match_batch_with_report(&targets, &ExecPolicy::with_threads(1))
        .unwrap();
    let (outcomes4, report4) = lsd
        .match_batch_with_report(&targets, &ExecPolicy::with_threads(4))
        .unwrap();
    for (a, b) in outcomes1.iter().zip(&outcomes4) {
        assert_eq!(a.labels, b.labels);
    }
    // Counters and gauges are the deterministic subset: equal regardless of
    // the worker count. (Histograms and spans carry wall-clock timings.)
    assert_eq!(
        report1.metrics.deterministic_view(),
        report4.metrics.deterministic_view(),
        "deterministic counters/gauges must not depend on thread count"
    );
    assert!(report1.nodes_expanded() >= 1);
}
