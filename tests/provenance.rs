//! Decision provenance end to end: `MatchOutcome::explain` must agree with
//! `MatchOutcome::candidates` exactly, carry the meta-learner's weights and
//! per-learner scores behind every combined score, blame a constraint when
//! one rejects a higher-ranked candidate, and render byte-identically
//! across thread counts.

use lsd::core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
use lsd::datagen::DomainId;
use lsd::{
    Correction, ExecPolicy, Feedback, Lsd, LsdBuilder, LsdConfig, RejectionReason, Source,
    TrainedSource,
};

fn to_source(gs: &lsd::datagen::GeneratedSource) -> Source {
    Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone())
}

fn build_trained() -> (Lsd, Vec<Source>) {
    let domain = DomainId::RealEstate1.generate(8, 21);
    let builder = LsdBuilder::new(&domain.mediated).with_config(LsdConfig::default());
    let n = builder.labels().len();
    let pairs: Vec<(&str, &str)> = domain
        .synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_xml_learner(None)
        .with_constraints(domain.constraints.clone())
        .build()
        .unwrap();
    let training: Vec<TrainedSource> = domain.sources[..3]
        .iter()
        .map(|gs| TrainedSource {
            source: to_source(gs),
            mapping: gs.mapping.clone(),
        })
        .collect();
    lsd.train(&training).unwrap();
    let targets: Vec<Source> = domain.sources[3..].iter().map(to_source).collect();
    (lsd, targets)
}

#[test]
fn explanations_mirror_candidates_exactly() {
    let (lsd, targets) = build_trained();
    let outcome = lsd.match_source(&targets[0]).unwrap();
    let learner_names = outcome.learner_names().to_vec();
    let meta = lsd.meta_learner();
    let labels = lsd.labels();

    for tag in outcome.tags.clone() {
        let explanation = outcome.explain(&tag).expect("tag was matched");
        assert_eq!(explanation.tag, tag);
        assert_eq!(
            explanation.chosen_label,
            outcome.label_of(&tag).unwrap().to_string()
        );

        // Candidate order, labels and scores match candidates() exactly.
        let candidates = outcome.candidates(&tag);
        assert_eq!(explanation.candidates.len(), candidates.len());
        let mut chosen_seen = 0;
        for (rank, (ce, cand)) in explanation.candidates.iter().zip(candidates).enumerate() {
            assert_eq!(ce.rank, rank);
            assert_eq!(ce.label, cand.label);
            assert_eq!(ce.score, cand.score);
            chosen_seen += usize::from(ce.chosen);

            // Per-learner provenance: same scores as the candidate view,
            // weights from the live meta-learner, products consistent.
            assert_eq!(ce.learners.len(), learner_names.len());
            let label_id = labels.get(&cand.label).unwrap_or_else(|| labels.other());
            for (j, lc) in ce.learners.iter().enumerate() {
                assert_eq!(lc.learner, learner_names[j]);
                assert_eq!(lc.score, cand.per_learner[j]);
                assert_eq!(lc.weight, meta.weight(label_id, j));
                assert_eq!(lc.weighted, lc.weight * lc.score);
            }
        }
        assert_eq!(chosen_seen, 1, "exactly one candidate is the chosen label");

        // Rejections only ever annotate candidates ranked above the chosen
        // label.
        let chosen_rank = explanation
            .candidates
            .iter()
            .position(|c| c.chosen)
            .unwrap();
        for ce in &explanation.candidates {
            if ce.rank >= chosen_rank {
                assert!(
                    ce.rejection.is_none(),
                    "{}#{} must carry no rejection",
                    tag,
                    ce.rank
                );
            } else {
                assert!(
                    ce.rejection.is_some(),
                    "{}#{} outranked the chosen label and needs a verdict",
                    tag,
                    ce.rank
                );
            }
        }
    }

    assert!(outcome.explain("no-such-tag").is_none());
    assert_eq!(outcome.explain_all().len(), outcome.tags.len());
}

#[test]
fn feedback_pin_shows_up_as_constraint_rejection() {
    let (lsd, targets) = build_trained();
    let baseline = lsd.match_source(&targets[0]).unwrap();
    // Pick a tag the system maps confidently, then pin it elsewhere: the
    // original top candidate must now be rejected by the feedback
    // constraint, and the explanation must say which constraint did it.
    let (tag, top_label) = baseline
        .tags
        .iter()
        .find_map(|t| {
            let cands = baseline.candidates(t);
            let top = cands.first()?;
            (Some(top.label.as_str()) == baseline.label_of(t) && top.label != "OTHER")
                .then(|| (t.clone(), top.label.clone()))
        })
        .expect("some tag is mapped to its top candidate");

    let feedback = Feedback::from_corrections(vec![Correction::tag_is_not(
        tag.as_str(),
        top_label.as_str(),
    )]);
    let outcome = lsd.match_source_with(&targets[0], &feedback).unwrap();
    assert_ne!(outcome.label_of(&tag), Some(top_label.as_str()));

    let explanation = outcome.explain(&tag).expect("tag was matched");
    let rejected = explanation
        .candidates
        .iter()
        .find(|c| c.label == top_label)
        .expect("the denied label is still a ranked candidate");
    match &rejected.rejection {
        Some(RejectionReason::Constraint { violated }) => {
            assert!(
                violated.iter().any(|v| v.contains(&top_label)),
                "the violated constraint must name the denied label: {violated:?}"
            );
        }
        other => panic!("denied label must be constraint-rejected, got {other:?}"),
    }
}

#[test]
fn explanations_are_byte_identical_across_thread_counts() {
    let (lsd, targets) = build_trained();
    let render_all = |threads: usize| -> (String, String) {
        let outcomes = lsd
            .match_batch(&targets, &ExecPolicy::with_threads(threads))
            .unwrap();
        let rendered: String = outcomes
            .iter()
            .flat_map(|o| o.explain_all())
            .map(|e| e.render())
            .collect();
        let json: String = outcomes
            .iter()
            .map(|o| serde_json::to_string_pretty(&o.explain_all()).unwrap())
            .collect();
        (rendered, json)
    };
    let (text1, json1) = render_all(1);
    let (text4, json4) = render_all(4);
    assert_eq!(text1, text4, "rendered explanations must be deterministic");
    assert_eq!(
        json1, json4,
        "serialized explanations must be deterministic"
    );
}

#[test]
fn search_counters_attribute_to_explained_candidates() {
    let (lsd, targets) = build_trained();
    let outcome = lsd.match_source(&targets[0]).unwrap();
    // The search generated at least one node for some explained (tag,
    // label) pair, and the per-pair totals never exceed the run totals.
    let explanations = outcome.explain_all();
    let generated: u64 = explanations
        .iter()
        .flat_map(|e| &e.candidates)
        .map(|c| c.search.generated)
        .sum();
    assert!(
        generated >= 1,
        "explained candidates must carry search activity"
    );
    assert_eq!(generated, outcome.result.stats.generated as u64);
}
