//! The parallel batch-matching engine: `match_batch` must be byte-identical
//! to serial matching at every thread count, and a trained [`Lsd`] must be
//! shareable across caller threads.

use lsd::core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
use lsd::datagen::DomainId;
use lsd::{ExecPolicy, Lsd, LsdBuilder, LsdConfig, MatchOutcome, Source, TrainedSource};

fn to_source(gs: &lsd::datagen::GeneratedSource) -> Source {
    Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone())
}

fn build_trained(id: DomainId) -> (Lsd, Vec<Source>) {
    let domain = id.generate(6, 11);
    let builder = LsdBuilder::new(&domain.mediated).with_config(LsdConfig::default());
    let n = builder.labels().len();
    let pairs: Vec<(&str, &str)> = domain
        .synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_xml_learner(None)
        .with_constraints(domain.constraints.clone())
        .build()
        .unwrap();
    let training: Vec<TrainedSource> = domain.sources[..3]
        .iter()
        .map(|gs| TrainedSource {
            source: to_source(gs),
            mapping: gs.mapping.clone(),
        })
        .collect();
    lsd.train(&training).unwrap();
    let targets: Vec<Source> = domain.sources.iter().map(to_source).collect();
    (lsd, targets)
}

/// Outcomes must agree bit for bit, not merely approximately: same tags,
/// labels, assignment, and prediction scores (compared via `f64::to_bits`).
fn assert_bit_identical(a: &MatchOutcome, b: &MatchOutcome, what: &str) {
    assert_eq!(a.tags, b.tags, "{what}: tags differ");
    assert_eq!(a.labels, b.labels, "{what}: labels differ");
    assert_eq!(
        a.result.assignment, b.result.assignment,
        "{what}: assignment differs"
    );
    assert_eq!(
        a.result.feasible, b.result.feasible,
        "{what}: feasibility differs"
    );
    assert_eq!(
        a.result.cost.to_bits(),
        b.result.cost.to_bits(),
        "{what}: cost differs"
    );
    assert_eq!(
        a.predictions.len(),
        b.predictions.len(),
        "{what}: prediction count differs"
    );
    for (pa, pb) in a.predictions.iter().zip(&b.predictions) {
        assert_eq!(
            pa.scores().len(),
            pb.scores().len(),
            "{what}: score width differs"
        );
        for (sa, sb) in pa.scores().iter().zip(pb.scores()) {
            assert_eq!(sa.to_bits(), sb.to_bits(), "{what}: score bits differ");
        }
    }
}

/// Figure 8a-style workload: all four evaluation domains, five sources each.
/// The batch engine must produce byte-identical outcomes at 1, 2 and 8
/// threads, and each must equal matching the sources one at a time.
#[test]
fn match_batch_is_deterministic_across_thread_counts() {
    for id in [
        DomainId::RealEstate1,
        DomainId::RealEstate2,
        DomainId::TimeSchedule,
        DomainId::FacultyListings,
    ] {
        let (lsd, targets) = build_trained(id);
        let serial: Vec<MatchOutcome> = targets
            .iter()
            .map(|s| lsd.match_source(s).unwrap())
            .collect();
        for threads in [1, 2, 8] {
            let batch = lsd
                .match_batch(&targets, &ExecPolicy::with_threads(threads))
                .unwrap();
            assert_eq!(batch.len(), serial.len());
            for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
                let what = format!("{} source {i} at {threads} threads", id.name());
                assert_bit_identical(b, s, &what);
            }
        }
    }
}

/// A trained `Lsd` is `Sync`: two caller threads may run `match_batch`
/// concurrently on the same instance and both get the serial answer.
#[test]
fn concurrent_match_batch_calls_share_one_system() {
    let (lsd, targets) = build_trained(DomainId::RealEstate1);
    let serial: Vec<MatchOutcome> = targets
        .iter()
        .map(|s| lsd.match_source(s).unwrap())
        .collect();
    let policy = ExecPolicy::with_threads(2);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| scope.spawn(|| lsd.match_batch(&targets, &policy).unwrap()))
            .collect();
        for handle in handles {
            let batch = handle.join().expect("caller thread panicked");
            for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
                assert_bit_identical(b, s, &format!("concurrent caller, source {i}"));
            }
        }
    });
}
