//! Integration tests reproducing the paper's worked examples in miniature:
//! the Figure 5 training walkthrough and the Figure 7 XML-learner scenario.

use lsd::core::learners::{
    BaseLearner, ContentMatcher, NaiveBayesLearner, NameMatcher, XmlLearner,
};
use lsd::core::{extract_instances, Instance, LsdBuilder, MetaLearner, Source, TrainedSource};
use lsd::learn::{cross_validation_predictions, LabelSet, Prediction};
use lsd::xml::{parse_dtd, parse_fragment};
use std::collections::HashMap;

/// Figure 5: two training sources (realestate.com, homeseekers.com), three
/// labels. We follow the five training steps explicitly — extract,
/// create per-learner training data, train, cross-validate, regress — and
/// verify each intermediate artefact has the shape the figure shows.
#[test]
fn figure5_training_walkthrough() {
    let labels = LabelSet::new(["ADDRESS", "DESCRIPTION", "AGENT-PHONE"]);

    // Step 2 — extract source data: 2 sources x 2 listings x 3 elements.
    let realestate = [
        ("Miami, FL", "Nice area", "(305) 729 0831"),
        ("Boston, MA", "Close to river", "(617) 253 1429"),
    ];
    let homeseekers = [
        ("Seattle, WA", "Fantastic house", "(206) 753 2605"),
        ("Portland, OR", "Great yard", "(515) 273 4312"),
    ];
    let mut examples: Vec<(Instance, usize)> = Vec::new();
    for (tags, rows) in [
        (["location", "comments", "contact"], &realestate),
        (["house-addr", "detailed-desc", "phone"], &homeseekers),
    ] {
        for (a, d, p) in rows.iter() {
            let root = parse_fragment(&format!(
                "<listing><{t0}>{a}</{t0}><{t1}>{d}</{t1}><{t2}>{p}</{t2}></listing>",
                t0 = tags[0],
                t1 = tags[1],
                t2 = tags[2]
            ))
            .expect("well-formed");
            let columns = extract_instances(std::slice::from_ref(&root));
            for (tag, label) in tags.iter().zip(0..3) {
                for instance in columns.get(*tag).expect("column present") {
                    examples.push((instance.clone(), label));
                }
            }
        }
    }
    // 12 extracted XML elements → 12 training examples per base learner.
    assert_eq!(examples.len(), 12);

    // Steps 3–4 — train the base learners on their training data.
    let refs: Vec<(&Instance, usize)> = examples.iter().map(|(i, l)| (i, *l)).collect();
    let mut name = NameMatcher::with_synonym_pairs(labels.len(), []);
    let mut nb = NaiveBayesLearner::new(labels.len());
    BaseLearner::train(&mut name, &refs);
    BaseLearner::train(&mut nb, &refs);

    // Step 5a — cross-validation produces CV(L): one prediction per
    // training example per learner.
    let cv_name = cross_validation_predictions(&refs, 5, 0, || BaseLearner::fresh(&name));
    let cv_nb = cross_validation_predictions(&refs, 5, 0, || BaseLearner::fresh(&nb));
    assert_eq!(cv_name.len(), 12);
    assert_eq!(cv_nb.len(), 12);
    for p in cv_name.iter().chain(&cv_nb) {
        assert_eq!(p.len(), labels.len());
        assert!((p.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    // Steps 5b/5c — the regression produces one weight per (label,
    // learner) pair, non-negative by construction.
    let truths: Vec<usize> = examples.iter().map(|(_, l)| *l).collect();
    let ml = MetaLearner::train(&[cv_name, cv_nb], &truths, labels.len());
    assert_eq!(ml.num_labels(), labels.len());
    assert_eq!(ml.num_learners(), 2);
    for label in 0..labels.len() {
        for learner in 0..2 {
            assert!(ml.weight(label, learner) >= 0.0);
        }
    }

    // Matching-phase combination (Section 3.2): the worked example's
    // weighted sum, on fresh instances.
    let area = Instance::new(
        parse_fragment("<area>Orlando, FL</area>").expect("ok"),
        vec!["home".into(), "area".into()],
    );
    let combined = ml.combine(&[
        BaseLearner::predict(&name, &area),
        BaseLearner::predict(&nb, &area),
    ]);
    assert_eq!(combined.best_label(), labels.get("ADDRESS").expect("label"));
}

/// Figure 7: a CONTACT-INFO element and a DESCRIPTION element share all
/// their words; flat Naive Bayes confuses them, the XML learner separates
/// them via structure tokens — through the full two-stage pipeline.
#[test]
fn figure7_xml_learner_pipeline() {
    let mediated = parse_dtd(
        "<!ELEMENT LISTING (CONTACT-INFO, DESCRIPTION)>\n\
         <!ELEMENT CONTACT-INFO (AGENT-NAME, OFFICE-NAME)>\n\
         <!ELEMENT AGENT-NAME (#PCDATA)>\n<!ELEMENT OFFICE-NAME (#PCDATA)>\n\
         <!ELEMENT DESCRIPTION (#PCDATA)>",
    )
    .expect("valid DTD");

    let train_dtd = parse_dtd(
        "<!ELEMENT entry (contact, description)>\n\
         <!ELEMENT contact (name, firm)>\n\
         <!ELEMENT name (#PCDATA)>\n<!ELEMENT firm (#PCDATA)>\n\
         <!ELEMENT description (#PCDATA)>",
    )
    .expect("valid DTD");
    let people = [
        ("Gail Murphy", "MAX Realtors"),
        ("Jane Kendall", "ACME Homes"),
        ("Mike Smith", "Windermere"),
        ("Kate Richardson", "Century 21"),
    ];
    let listings: Vec<_> = people
        .iter()
        .map(|(person, firm)| {
            parse_fragment(&format!(
                "<entry><contact><name>{person}</name><firm>{firm}</firm></contact>\
                 <description>Victorian house with a view. To see it, contact \
                 {person} at {firm}</description></entry>"
            ))
            .expect("well-formed")
        })
        .collect();
    let train = TrainedSource {
        source: Source::from_xml("train", train_dtd, listings),
        mapping: HashMap::from([
            ("entry".to_string(), "LISTING".to_string()),
            ("contact".to_string(), "CONTACT-INFO".to_string()),
            ("name".to_string(), "AGENT-NAME".to_string()),
            ("firm".to_string(), "OFFICE-NAME".to_string()),
            ("description".to_string(), "DESCRIPTION".to_string()),
        ]),
    };

    // Target source with the same pathology, different tag names.
    let target_dtd = parse_dtd(
        "<!ELEMENT rec (who, blurb)>\n\
         <!ELEMENT who (agent, company)>\n\
         <!ELEMENT agent (#PCDATA)>\n<!ELEMENT company (#PCDATA)>\n\
         <!ELEMENT blurb (#PCDATA)>",
    )
    .expect("valid DTD");
    let target_listings: Vec<_> = people
        .iter()
        .map(|(person, firm)| {
            parse_fragment(&format!(
                "<rec><who><agent>{person}</agent><company>{firm}</company></who>\
                 <blurb>Name your price! To see it, contact {person} at {firm}</blurb></rec>"
            ))
            .expect("well-formed")
        })
        .collect();
    let target = Source::from_xml("target", target_dtd, target_listings);

    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_xml_learner(None)
        .build()
        .unwrap();
    lsd.train(std::slice::from_ref(&train)).unwrap();

    let outcome = lsd.match_source(&target).unwrap();
    assert_eq!(
        outcome.label_of("who"),
        Some("CONTACT-INFO"),
        "{:?}",
        outcome.labels
    );
    assert_eq!(
        outcome.label_of("blurb"),
        Some("DESCRIPTION"),
        "{:?}",
        outcome.labels
    );
}

/// The XML learner's isolated superiority on the Figure 7 pair (the
/// paper's claim: "the XML learner outperformed the Naive Bayes learner").
#[test]
fn figure7_xml_beats_flat_naive_bayes() {
    let labels = ["CONTACT-INFO", "DESCRIPTION"];
    let n = labels.len() + 1; // + OTHER
    let sub_labels = HashMap::from([
        ("name".to_string(), 5usize.min(n - 1)),
        ("firm".to_string(), n - 1),
    ]);
    let mk_contact = |person: &str, firm: &str| {
        Instance::new(
            parse_fragment(&format!(
                "<contact><name>{person}</name><firm>{firm}</firm></contact>"
            ))
            .expect("ok"),
            vec!["contact".into()],
        )
        .with_sub_labels(sub_labels.clone())
    };
    let mk_desc = |person: &str, firm: &str| {
        Instance::new(
            parse_fragment(&format!(
                "<description>Lovely place, call {person} at {firm} today</description>"
            ))
            .expect("ok"),
            vec!["description".into()],
        )
        .with_sub_labels(sub_labels.clone())
    };
    let people = [
        ("Gail Murphy", "MAX Realtors"),
        ("Jane Kendall", "ACME Homes"),
        ("Mike Smith", "Windermere"),
        ("Laura Davis", "Century 21"),
        ("Paul Walker", "Redfin Realty"),
    ];
    let mut data: Vec<(Instance, usize)> = Vec::new();
    for (person, firm) in &people[..4] {
        data.push((mk_contact(person, firm), 0));
        data.push((mk_desc(person, firm), 1));
    }
    let refs: Vec<(&Instance, usize)> = data.iter().map(|(i, l)| (i, *l)).collect();

    let mut xml = XmlLearner::new(n);
    let mut nb = NaiveBayesLearner::new(n);
    BaseLearner::train(&mut xml, &refs);
    BaseLearner::train(&mut nb, &refs);

    // Held-out pair (unseen person/firm): every content word is shared
    // between the two classes, so only structure separates them.
    let (person, firm) = people[4];
    let test_contact = mk_contact(person, firm);
    let test_desc = mk_desc(person, firm);
    let xml_correct = usize::from(BaseLearner::predict(&xml, &test_contact).best_label() == 0)
        + usize::from(BaseLearner::predict(&xml, &test_desc).best_label() == 1);
    assert_eq!(
        xml_correct, 2,
        "the XML learner must separate the Figure 7 pair"
    );
}

fn _assert_prediction_shape(p: &Prediction) {
    assert!((p.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

/// The headline promise of the reader redesign: one mediated real-estate
/// schema reconciles sources however they arrive. Train on an XML source
/// and a raw-JSON source, then match a CSV source and a SQL dump against
/// the same mediated schema. Mappings must land, provenance must record
/// each source's serialization, and batch matching must stay byte-identical
/// across thread counts.
#[test]
fn multi_format_sources_reconcile_to_one_mediated_schema() {
    use lsd::core::learners::{ContentMatcher as Cm, NaiveBayesLearner as Nb, NameMatcher as Nm};
    use lsd::{CsvReader, ExecPolicy, JsonReader, MatchOutcome, SourceFormat, SqlReader};

    let mediated = parse_dtd(
        "<!ELEMENT HOUSE (ADDRESS, DESCRIPTION, PHONE)>\n\
         <!ELEMENT ADDRESS (#PCDATA)>\n\
         <!ELEMENT DESCRIPTION (#PCDATA)>\n\
         <!ELEMENT PHONE (#PCDATA)>",
    )
    .expect("mediated DTD");

    // Training source 1 arrives as XML (the native path).
    let xml_rows = [
        ("Miami, FL", "Great view of the bay", "(305) 111 2222"),
        ("Boston, MA", "Fantastic yard and porch", "(617) 333 4444"),
        ("Austin, TX", "Nice area near downtown", "(512) 555 6666"),
        ("Omaha, NE", "Quiet street and big garage", "(402) 777 8888"),
    ];
    let xml_dtd = parse_dtd(
        "<!ELEMENT home (location, comments, contact)>\n\
         <!ELEMENT location (#PCDATA)>\n\
         <!ELEMENT comments (#PCDATA)>\n\
         <!ELEMENT contact (#PCDATA)>",
    )
    .expect("source DTD");
    let xml_listings: Vec<_> = xml_rows
        .iter()
        .map(|(a, d, p)| {
            parse_fragment(&format!(
                "<home><location>{a}</location><comments>{d}</comments>\
                 <contact>{p}</contact></home>"
            ))
            .expect("well-formed")
        })
        .collect();
    let xml_train = TrainedSource {
        source: Source::from_xml("realestate.com", xml_dtd, xml_listings),
        mapping: HashMap::from([
            ("home".to_string(), "HOUSE".to_string()),
            ("location".to_string(), "ADDRESS".to_string()),
            ("comments".to_string(), "DESCRIPTION".to_string()),
            ("contact".to_string(), "PHONE".to_string()),
        ]),
    };

    // Training source 2 arrives as raw JSON documents.
    let json_body = r#"[
        {"addr": "Seattle, WA", "desc": "Quiet street with garden", "tel": "(206) 123 9999"},
        {"addr": "Denver, CO", "desc": "Mountain views all around", "tel": "(303) 987 0000"},
        {"addr": "Portland, OR", "desc": "Close to parks and cafes", "tel": "(503) 321 4567"},
        {"addr": "Chicago, IL", "desc": "Renovated kitchen and bath", "tel": "(312) 765 4321"}
    ]"#;
    let json_train = TrainedSource {
        source: Source::from_reader("homeseekers.com", &JsonReader::new(json_body))
            .expect("json source"),
        mapping: HashMap::from([
            ("record".to_string(), "HOUSE".to_string()),
            ("addr".to_string(), "ADDRESS".to_string()),
            ("desc".to_string(), "DESCRIPTION".to_string()),
            ("tel".to_string(), "PHONE".to_string()),
        ]),
    };

    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(Nm::new(n, HashMap::new())))
        .add_learner(Box::new(Cm::new(n)))
        .add_learner(Box::new(Nb::new(n)))
        .with_xml_learner(None)
        .build()
        .expect("builds");
    lsd.train(&[xml_train, json_train]).expect("trains");

    // Provenance records how each training source arrived.
    let formats: Vec<(String, SourceFormat, usize)> = lsd
        .source_provenance()
        .iter()
        .map(|p| (p.source.clone(), p.format, p.listings))
        .collect();
    assert_eq!(
        formats,
        vec![
            ("realestate.com".to_string(), SourceFormat::Xml, 4),
            ("homeseekers.com".to_string(), SourceFormat::Json, 4),
        ]
    );

    // Target 1 arrives as CSV with a header row.
    let csv_body = "street,remarks,phone\n\
                    \"Raleigh, NC\",Corner lot with big trees,(919) 222 3333\n\
                    \"Tampa, FL\",Walkable and sunny near cafes,(813) 444 5555\n";
    let csv_source =
        Source::from_reader("csv-site", &CsvReader::new(csv_body)).expect("csv source");
    assert_eq!(csv_source.format, SourceFormat::Csv);

    // Target 2 arrives as a SQL dump.
    let sql_body = "CREATE TABLE listing (\n\
                      \"where\" TEXT,\n\
                      note TEXT,\n\
                      callnum TEXT\n\
                    );\n\
                    INSERT INTO listing VALUES\n\
                      ('Madison, WI', 'Sunny porch and a nice yard', '(608) 555 1234'),\n\
                      ('Reno, NV', 'Close to downtown and parks', '(775) 666 7788');";
    let sql_source =
        Source::from_reader("sql-site", &SqlReader::new(sql_body)).expect("sql source");
    assert_eq!(sql_source.format, SourceFormat::Sql);

    // Both reconcile onto the one mediated schema.
    let expectations: [(&Source, [(&str, &str); 3]); 2] = [
        (
            &csv_source,
            [
                ("street", "ADDRESS"),
                ("remarks", "DESCRIPTION"),
                ("phone", "PHONE"),
            ],
        ),
        (
            &sql_source,
            [
                ("where", "ADDRESS"),
                ("note", "DESCRIPTION"),
                ("callnum", "PHONE"),
            ],
        ),
    ];
    let mut serial: Vec<MatchOutcome> = Vec::new();
    for (source, wanted) in &expectations {
        let outcome = lsd.match_source(source).expect("matches");
        for (tag, label) in wanted {
            assert_eq!(
                outcome.label_of(tag),
                Some(*label),
                "{}: tag {tag}",
                source.name
            );
        }
        serial.push(outcome);
    }

    // The non-XML paths go through the same batch engine: byte-identical
    // at every thread count.
    let targets = [csv_source.clone(), sql_source.clone()];
    for threads in [1, 2, 8] {
        let batch = lsd
            .match_batch(&targets, &ExecPolicy::with_threads(threads))
            .expect("batch matches");
        for (b, s) in batch.iter().zip(&serial) {
            assert_eq!(b.tags, s.tags, "{threads} threads: tags differ");
            assert_eq!(b.labels, s.labels, "{threads} threads: labels differ");
            assert_eq!(
                b.result.assignment, s.result.assignment,
                "{threads} threads: assignment differs"
            );
            assert_eq!(
                b.result.cost.to_bits(),
                s.result.cost.to_bits(),
                "{threads} threads: cost differs"
            );
        }
    }
}
