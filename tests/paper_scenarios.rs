//! Integration tests reproducing the paper's worked examples in miniature:
//! the Figure 5 training walkthrough and the Figure 7 XML-learner scenario.

use lsd::core::learners::{
    BaseLearner, ContentMatcher, NaiveBayesLearner, NameMatcher, XmlLearner,
};
use lsd::core::{extract_instances, Instance, LsdBuilder, MetaLearner, Source, TrainedSource};
use lsd::learn::{cross_validation_predictions, LabelSet, Prediction};
use lsd::xml::{parse_dtd, parse_fragment};
use std::collections::HashMap;

/// Figure 5: two training sources (realestate.com, homeseekers.com), three
/// labels. We follow the five training steps explicitly — extract,
/// create per-learner training data, train, cross-validate, regress — and
/// verify each intermediate artefact has the shape the figure shows.
#[test]
fn figure5_training_walkthrough() {
    let labels = LabelSet::new(["ADDRESS", "DESCRIPTION", "AGENT-PHONE"]);

    // Step 2 — extract source data: 2 sources x 2 listings x 3 elements.
    let realestate = [
        ("Miami, FL", "Nice area", "(305) 729 0831"),
        ("Boston, MA", "Close to river", "(617) 253 1429"),
    ];
    let homeseekers = [
        ("Seattle, WA", "Fantastic house", "(206) 753 2605"),
        ("Portland, OR", "Great yard", "(515) 273 4312"),
    ];
    let mut examples: Vec<(Instance, usize)> = Vec::new();
    for (tags, rows) in [
        (["location", "comments", "contact"], &realestate),
        (["house-addr", "detailed-desc", "phone"], &homeseekers),
    ] {
        for (a, d, p) in rows.iter() {
            let root = parse_fragment(&format!(
                "<listing><{t0}>{a}</{t0}><{t1}>{d}</{t1}><{t2}>{p}</{t2}></listing>",
                t0 = tags[0],
                t1 = tags[1],
                t2 = tags[2]
            ))
            .expect("well-formed");
            let columns = extract_instances(std::slice::from_ref(&root));
            for (tag, label) in tags.iter().zip(0..3) {
                for instance in columns.get(*tag).expect("column present") {
                    examples.push((instance.clone(), label));
                }
            }
        }
    }
    // 12 extracted XML elements → 12 training examples per base learner.
    assert_eq!(examples.len(), 12);

    // Steps 3–4 — train the base learners on their training data.
    let refs: Vec<(&Instance, usize)> = examples.iter().map(|(i, l)| (i, *l)).collect();
    let mut name = NameMatcher::with_synonym_pairs(labels.len(), []);
    let mut nb = NaiveBayesLearner::new(labels.len());
    BaseLearner::train(&mut name, &refs);
    BaseLearner::train(&mut nb, &refs);

    // Step 5a — cross-validation produces CV(L): one prediction per
    // training example per learner.
    let cv_name = cross_validation_predictions(&refs, 5, 0, || BaseLearner::fresh(&name));
    let cv_nb = cross_validation_predictions(&refs, 5, 0, || BaseLearner::fresh(&nb));
    assert_eq!(cv_name.len(), 12);
    assert_eq!(cv_nb.len(), 12);
    for p in cv_name.iter().chain(&cv_nb) {
        assert_eq!(p.len(), labels.len());
        assert!((p.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    // Steps 5b/5c — the regression produces one weight per (label,
    // learner) pair, non-negative by construction.
    let truths: Vec<usize> = examples.iter().map(|(_, l)| *l).collect();
    let ml = MetaLearner::train(&[cv_name, cv_nb], &truths, labels.len());
    assert_eq!(ml.num_labels(), labels.len());
    assert_eq!(ml.num_learners(), 2);
    for label in 0..labels.len() {
        for learner in 0..2 {
            assert!(ml.weight(label, learner) >= 0.0);
        }
    }

    // Matching-phase combination (Section 3.2): the worked example's
    // weighted sum, on fresh instances.
    let area = Instance::new(
        parse_fragment("<area>Orlando, FL</area>").expect("ok"),
        vec!["home".into(), "area".into()],
    );
    let combined = ml.combine(&[
        BaseLearner::predict(&name, &area),
        BaseLearner::predict(&nb, &area),
    ]);
    assert_eq!(combined.best_label(), labels.get("ADDRESS").expect("label"));
}

/// Figure 7: a CONTACT-INFO element and a DESCRIPTION element share all
/// their words; flat Naive Bayes confuses them, the XML learner separates
/// them via structure tokens — through the full two-stage pipeline.
#[test]
fn figure7_xml_learner_pipeline() {
    let mediated = parse_dtd(
        "<!ELEMENT LISTING (CONTACT-INFO, DESCRIPTION)>\n\
         <!ELEMENT CONTACT-INFO (AGENT-NAME, OFFICE-NAME)>\n\
         <!ELEMENT AGENT-NAME (#PCDATA)>\n<!ELEMENT OFFICE-NAME (#PCDATA)>\n\
         <!ELEMENT DESCRIPTION (#PCDATA)>",
    )
    .expect("valid DTD");

    let train_dtd = parse_dtd(
        "<!ELEMENT entry (contact, description)>\n\
         <!ELEMENT contact (name, firm)>\n\
         <!ELEMENT name (#PCDATA)>\n<!ELEMENT firm (#PCDATA)>\n\
         <!ELEMENT description (#PCDATA)>",
    )
    .expect("valid DTD");
    let people = [
        ("Gail Murphy", "MAX Realtors"),
        ("Jane Kendall", "ACME Homes"),
        ("Mike Smith", "Windermere"),
        ("Kate Richardson", "Century 21"),
    ];
    let listings: Vec<_> = people
        .iter()
        .map(|(person, firm)| {
            parse_fragment(&format!(
                "<entry><contact><name>{person}</name><firm>{firm}</firm></contact>\
                 <description>Victorian house with a view. To see it, contact \
                 {person} at {firm}</description></entry>"
            ))
            .expect("well-formed")
        })
        .collect();
    let train = TrainedSource {
        source: Source {
            name: "train".into(),
            dtd: train_dtd,
            listings,
        },
        mapping: HashMap::from([
            ("entry".to_string(), "LISTING".to_string()),
            ("contact".to_string(), "CONTACT-INFO".to_string()),
            ("name".to_string(), "AGENT-NAME".to_string()),
            ("firm".to_string(), "OFFICE-NAME".to_string()),
            ("description".to_string(), "DESCRIPTION".to_string()),
        ]),
    };

    // Target source with the same pathology, different tag names.
    let target_dtd = parse_dtd(
        "<!ELEMENT rec (who, blurb)>\n\
         <!ELEMENT who (agent, company)>\n\
         <!ELEMENT agent (#PCDATA)>\n<!ELEMENT company (#PCDATA)>\n\
         <!ELEMENT blurb (#PCDATA)>",
    )
    .expect("valid DTD");
    let target_listings: Vec<_> = people
        .iter()
        .map(|(person, firm)| {
            parse_fragment(&format!(
                "<rec><who><agent>{person}</agent><company>{firm}</company></who>\
                 <blurb>Name your price! To see it, contact {person} at {firm}</blurb></rec>"
            ))
            .expect("well-formed")
        })
        .collect();
    let target = Source {
        name: "target".into(),
        dtd: target_dtd,
        listings: target_listings,
    };

    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_xml_learner(None)
        .build()
        .unwrap();
    lsd.train(std::slice::from_ref(&train)).unwrap();

    let outcome = lsd.match_source(&target).unwrap();
    assert_eq!(
        outcome.label_of("who"),
        Some("CONTACT-INFO"),
        "{:?}",
        outcome.labels
    );
    assert_eq!(
        outcome.label_of("blurb"),
        Some("DESCRIPTION"),
        "{:?}",
        outcome.labels
    );
}

/// The XML learner's isolated superiority on the Figure 7 pair (the
/// paper's claim: "the XML learner outperformed the Naive Bayes learner").
#[test]
fn figure7_xml_beats_flat_naive_bayes() {
    let labels = ["CONTACT-INFO", "DESCRIPTION"];
    let n = labels.len() + 1; // + OTHER
    let sub_labels = HashMap::from([
        ("name".to_string(), 5usize.min(n - 1)),
        ("firm".to_string(), n - 1),
    ]);
    let mk_contact = |person: &str, firm: &str| {
        Instance::new(
            parse_fragment(&format!(
                "<contact><name>{person}</name><firm>{firm}</firm></contact>"
            ))
            .expect("ok"),
            vec!["contact".into()],
        )
        .with_sub_labels(sub_labels.clone())
    };
    let mk_desc = |person: &str, firm: &str| {
        Instance::new(
            parse_fragment(&format!(
                "<description>Lovely place, call {person} at {firm} today</description>"
            ))
            .expect("ok"),
            vec!["description".into()],
        )
        .with_sub_labels(sub_labels.clone())
    };
    let people = [
        ("Gail Murphy", "MAX Realtors"),
        ("Jane Kendall", "ACME Homes"),
        ("Mike Smith", "Windermere"),
        ("Laura Davis", "Century 21"),
        ("Paul Walker", "Redfin Realty"),
    ];
    let mut data: Vec<(Instance, usize)> = Vec::new();
    for (person, firm) in &people[..4] {
        data.push((mk_contact(person, firm), 0));
        data.push((mk_desc(person, firm), 1));
    }
    let refs: Vec<(&Instance, usize)> = data.iter().map(|(i, l)| (i, *l)).collect();

    let mut xml = XmlLearner::new(n);
    let mut nb = NaiveBayesLearner::new(n);
    BaseLearner::train(&mut xml, &refs);
    BaseLearner::train(&mut nb, &refs);

    // Held-out pair (unseen person/firm): every content word is shared
    // between the two classes, so only structure separates them.
    let (person, firm) = people[4];
    let test_contact = mk_contact(person, firm);
    let test_desc = mk_desc(person, firm);
    let xml_correct = usize::from(BaseLearner::predict(&xml, &test_contact).best_label() == 0)
        + usize::from(BaseLearner::predict(&xml, &test_desc).best_label() == 1);
    assert_eq!(
        xml_correct, 2,
        "the XML learner must separate the Figure 7 pair"
    );
}

fn _assert_prediction_shape(p: &Prediction) {
    assert!((p.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
}
