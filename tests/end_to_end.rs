//! Cross-crate integration tests: the full pipeline from generated domains
//! through training, matching, constraints and feedback.

use lsd::core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
use lsd::core::{Correction, Feedback, Lsd, LsdBuilder, LsdConfig, Source, TrainedSource};
use lsd::datagen::DomainId;
use std::collections::HashMap;

fn to_source(gs: &lsd::datagen::GeneratedSource) -> Source {
    Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone())
}

fn build_full(domain: &lsd::datagen::GeneratedDomain) -> Lsd {
    let builder = LsdBuilder::new(&domain.mediated).with_config(LsdConfig::default());
    let n = builder.labels().len();
    let pairs: Vec<(&str, &str)> = domain
        .synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_xml_learner(None)
        .with_constraints(domain.constraints.clone())
        .build()
        .unwrap()
}

fn train_on(lsd: &mut Lsd, domain: &lsd::datagen::GeneratedDomain, sources: &[usize]) {
    let training: Vec<TrainedSource> = sources
        .iter()
        .map(|&i| TrainedSource {
            source: to_source(&domain.sources[i]),
            mapping: domain.sources[i].mapping.clone(),
        })
        .collect();
    lsd.train(&training).unwrap();
}

fn accuracy(lsd: &Lsd, gs: &lsd::datagen::GeneratedSource) -> f64 {
    let outcome = lsd.match_source(&to_source(gs)).unwrap();
    let correct = gs
        .mapping
        .iter()
        .filter(|(tag, truth)| outcome.label_of(tag) == Some(truth.as_str()))
        .count();
    correct as f64 / gs.mapping.len() as f64
}

/// Every domain end to end: train on three sources, match the other two,
/// and clear a conservative accuracy floor (well above chance, below which
/// something is broken rather than merely noisy).
#[test]
fn all_domains_match_above_floor() {
    for (id, floor) in [
        (DomainId::RealEstate1, 0.75),
        (DomainId::TimeSchedule, 0.60),
        (DomainId::FacultyListings, 0.80),
        (DomainId::RealEstate2, 0.55),
    ] {
        let domain = id.generate(60, 13);
        let mut lsd = build_full(&domain);
        train_on(&mut lsd, &domain, &[0, 1, 2]);
        for gs in &domain.sources[3..] {
            let acc = accuracy(&lsd, gs);
            assert!(
                acc >= floor,
                "{} / {}: accuracy {acc:.2} below floor {floor}",
                id.name(),
                gs.name
            );
        }
    }
}

/// The "improve over time" loop the paper highlights: adding a confirmed
/// source to the training set must not degrade (and normally improves)
/// accuracy on the remaining source.
#[test]
fn incremental_training_reuses_past_matchings() {
    let domain = DomainId::RealEstate1.generate(60, 5);
    let mut lsd = build_full(&domain);
    train_on(&mut lsd, &domain, &[0, 1]);
    let before = accuracy(&lsd, &domain.sources[4]);
    // Source 3 gets matched, confirmed by the user, and folded in.
    train_on(&mut lsd, &domain, &[0, 1, 3]);
    let after = accuracy(&lsd, &domain.sources[4]);
    assert!(
        after + 0.10 >= before,
        "adding a training source should not collapse accuracy: {before:.2} -> {after:.2}"
    );
}

/// Feedback constraints apply to the current source only and are honored
/// exactly (Section 4.3).
#[test]
fn feedback_is_honored_and_scoped() {
    let domain = DomainId::TimeSchedule.generate(40, 2);
    let mut lsd = build_full(&domain);
    train_on(&mut lsd, &domain, &[0, 1, 2]);
    let source = to_source(&domain.sources[3]);
    let tag = domain.sources[3]
        .dtd
        .element_names()
        .nth(2)
        .expect("a tag")
        .to_string();

    let fb = Feedback::from_corrections(vec![Correction::tag_is(tag.as_str(), "NOTES")]);
    let with_fb = lsd.match_source_with(&source, &fb).unwrap();
    assert_eq!(
        with_fb.label_of(&tag),
        Some("NOTES"),
        "feedback must be honored"
    );

    let without = lsd.match_source(&source).unwrap();
    // The follow-up match without feedback is unaffected by the earlier one.
    let again = lsd.match_source(&source).unwrap();
    assert_eq!(
        without.labels, again.labels,
        "matching must be stateless across calls"
    );
}

/// Negative feedback ("tag X does not match Y") removes exactly that
/// assignment.
#[test]
fn negative_feedback_excludes_label() {
    let domain = DomainId::RealEstate1.generate(50, 3);
    let mut lsd = build_full(&domain);
    train_on(&mut lsd, &domain, &[0, 1, 2]);
    let gs = &domain.sources[3];
    let source = to_source(gs);
    let outcome = lsd.match_source(&source).unwrap();
    // Pick any tag currently assigned a non-OTHER label and forbid it.
    let (tag, label) = outcome
        .tags
        .iter()
        .zip(&outcome.labels)
        .find(|(_, l)| *l != "OTHER")
        .map(|(t, l)| (t.clone(), l.clone()))
        .expect("some tag matched");
    let fb = Feedback::from_corrections(vec![Correction::tag_is_not(tag.as_str(), label.as_str())]);
    let after = lsd.match_source_with(&source, &fb).unwrap();
    assert_ne!(after.label_of(&tag), Some(label.as_str()));
}

/// Determinism: two identical runs produce identical mappings.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let domain = DomainId::FacultyListings.generate(30, 9);
        let mut lsd = build_full(&domain);
        train_on(&mut lsd, &domain, &[0, 1, 2]);
        lsd.match_source(&to_source(&domain.sources[4]))
            .unwrap()
            .labels
    };
    assert_eq!(run(), run());
}

/// Matching a training source itself should be near-perfect — the sanity
/// check a user would run first.
#[test]
fn training_source_self_match() {
    let domain = DomainId::RealEstate1.generate(60, 21);
    let mut lsd = build_full(&domain);
    train_on(&mut lsd, &domain, &[0, 1, 2]);
    let acc = accuracy(&lsd, &domain.sources[0]);
    assert!(acc >= 0.9, "self-match accuracy {acc:.2}");
}

/// The mediated schema tags and OTHER are the only labels ever produced.
#[test]
fn labels_come_from_mediated_schema() {
    let domain = DomainId::TimeSchedule.generate(30, 4);
    let mut lsd = build_full(&domain);
    train_on(&mut lsd, &domain, &[0, 1, 2]);
    let mediated: HashMap<&str, ()> = domain.mediated.element_names().map(|n| (n, ())).collect();
    let outcome = lsd.match_source(&to_source(&domain.sources[3])).unwrap();
    for label in &outcome.labels {
        assert!(
            label == "OTHER" || mediated.contains_key(label.as_str()),
            "unexpected label {label}"
        );
    }
}
