//! Integration tests driving each Table-1 constraint type through the full
//! LSD pipeline: the constraint handler must visibly change the outcome.

use lsd::constraints::{DomainConstraint, Predicate, SearchAlgorithm, SearchConfig};
use lsd::core::learners::NaiveBayesLearner;
use lsd::core::{Correction, Feedback, Lsd, LsdBuilder, LsdConfig, Source, TrainedSource};
use lsd::xml::{parse_dtd, parse_fragment, Dtd, Element};
use std::collections::HashMap;

/// A deliberately ambiguous setup: two source tags (`price-a`, `price-b`)
/// whose data both look like prices, so without constraints both get
/// PRICE; the mediated schema also has a TAX label whose values look the
/// same.
struct Fixture {
    mediated: Dtd,
    train: TrainedSource,
    target: Source,
}

fn fixture() -> Fixture {
    let mediated = parse_dtd(
        "<!ELEMENT SALE (PRICE, TAX, NOTE)>\n\
         <!ELEMENT PRICE (#PCDATA)>\n<!ELEMENT TAX (#PCDATA)>\n<!ELEMENT NOTE (#PCDATA)>",
    )
    .expect("valid DTD");
    // Training source: price/tax distinguishable only weakly (overlapping
    // dollar amounts; tax smaller).
    let train_dtd = parse_dtd(
        "<!ELEMENT sale (price, tax, note)>\n\
         <!ELEMENT price (#PCDATA)>\n<!ELEMENT tax (#PCDATA)>\n<!ELEMENT note (#PCDATA)>",
    )
    .expect("valid DTD");
    let mk = |p: &str, t: &str, n: &str| -> Element {
        parse_fragment(&format!(
            "<sale><price>{p}</price><tax>{t}</tax><note>{n}</note></sale>"
        ))
        .expect("well-formed")
    };
    let train = TrainedSource {
        source: Source::from_xml(
            "train",
            train_dtd,
            vec![
                mk("$250,000", "$3,400", "great deal"),
                mk("$310,000", "$4,100", "nice terms"),
                mk("$180,000", "$2,200", "fantastic offer"),
                mk("$420,000", "$5,800", "great location"),
            ],
        ),
        mapping: HashMap::from([
            ("sale".to_string(), "SALE".to_string()),
            ("price".to_string(), "PRICE".to_string()),
            ("tax".to_string(), "TAX".to_string()),
            ("note".to_string(), "NOTE".to_string()),
        ]),
    };
    // Target source: two price-like columns with misleadingly similar data.
    let target_dtd = parse_dtd(
        "<!ELEMENT record (amount-a, amount-b, remark)>\n\
         <!ELEMENT amount-a (#PCDATA)>\n<!ELEMENT amount-b (#PCDATA)>\n\
         <!ELEMENT remark (#PCDATA)>",
    )
    .expect("valid DTD");
    let mkt = |a: &str, b: &str, r: &str| -> Element {
        parse_fragment(&format!(
            "<record><amount-a>{a}</amount-a><amount-b>{b}</amount-b>\
             <remark>{r}</remark></record>"
        ))
        .expect("well-formed")
    };
    let target = Source::from_xml(
        "target",
        target_dtd,
        vec![
            mkt("$275,000", "$275,000", "great schools"),
            mkt("$330,000", "$330,000", "nice yard"),
            mkt("$190,000", "$190,000", "fantastic view"),
        ],
    );
    Fixture {
        mediated,
        train,
        target,
    }
}

fn build(mediated: &Dtd, constraints: Vec<DomainConstraint>) -> Lsd {
    let config = LsdConfig {
        search: SearchConfig {
            algorithm: SearchAlgorithm::AStar {
                max_expansions: 10_000,
            },
            heuristic_weight: 1.0,
        },
        ..LsdConfig::default()
    };
    let builder = LsdBuilder::new(mediated).with_config(config);
    let n = builder.labels().len();
    builder
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_constraints(constraints)
        .build()
        .unwrap()
}

/// Without constraints, identical columns take identical labels; the
/// frequency constraint forces them apart.
#[test]
fn frequency_constraint_separates_duplicate_claims() {
    let f = fixture();
    let mut without = build(&f.mediated, vec![]);
    without.train(std::slice::from_ref(&f.train)).unwrap();
    let o = without.match_source(&f.target).unwrap();
    assert_eq!(
        o.label_of("amount-a"),
        o.label_of("amount-b"),
        "identical data must get identical labels without constraints"
    );

    let mut with = build(
        &f.mediated,
        vec![DomainConstraint::hard(Predicate::AtMostOne {
            label: "PRICE".into(),
        })],
    );
    with.train(std::slice::from_ref(&f.train)).unwrap();
    let o = with.match_source(&f.target).unwrap();
    assert!(o.result.feasible);
    let price_count = o.labels.iter().filter(|l| l.as_str() == "PRICE").count();
    assert!(price_count <= 1, "AtMostOne violated: {:?}", o.labels);
}

/// A feedback TagIs pins one column, and AtMostOne pushes the twin away.
#[test]
fn combined_frequency_and_feedback() {
    let f = fixture();
    let mut lsd = build(
        &f.mediated,
        vec![DomainConstraint::hard(Predicate::AtMostOne {
            label: "PRICE".into(),
        })],
    );
    lsd.train(std::slice::from_ref(&f.train)).unwrap();
    let fb = Feedback::from_corrections(vec![Correction::tag_is("amount-b", "PRICE")]);
    let o = lsd.match_source_with(&f.target, &fb).unwrap();
    assert_eq!(o.label_of("amount-b"), Some("PRICE"));
    assert_ne!(o.label_of("amount-a"), Some("PRICE"));
}

/// Key (column) constraints through the pipeline: a column with duplicate
/// values cannot take the key label.
#[test]
fn key_constraint_rejects_duplicate_column() {
    let mediated =
        parse_dtd("<!ELEMENT R (ID, N)>\n<!ELEMENT ID (#PCDATA)>\n<!ELEMENT N (#PCDATA)>")
            .expect("valid DTD");
    let train_dtd = parse_dtd(
        "<!ELEMENT r (ident, cnt)>\n<!ELEMENT ident (#PCDATA)>\n<!ELEMENT cnt (#PCDATA)>",
    )
    .expect("valid DTD");
    let mk = |i: &str, c: &str| {
        parse_fragment(&format!("<r><ident>{i}</ident><cnt>{c}</cnt></r>")).expect("ok")
    };
    let train = TrainedSource {
        source: Source::from_xml(
            "t",
            train_dtd,
            vec![mk("1001", "3"), mk("1002", "3"), mk("1003", "2")],
        ),
        mapping: HashMap::from([
            ("r".to_string(), "R".to_string()),
            ("ident".to_string(), "ID".to_string()),
            ("cnt".to_string(), "N".to_string()),
        ]),
    };
    // Target where the "code" column has duplicates: cannot be the key ID.
    let target_dtd = parse_dtd(
        "<!ELEMENT x (code, serial)>\n<!ELEMENT code (#PCDATA)>\n<!ELEMENT serial (#PCDATA)>",
    )
    .expect("valid DTD");
    let mkt = |c: &str, s: &str| {
        parse_fragment(&format!("<x><code>{c}</code><serial>{s}</serial></x>")).expect("ok")
    };
    let target = Source::from_xml(
        "x",
        target_dtd,
        vec![mkt("7", "9001"), mkt("7", "9002"), mkt("4", "9003")],
    );
    let mut lsd = build(
        &mediated,
        vec![DomainConstraint::hard(Predicate::IsKey {
            label: "ID".into(),
        })],
    );
    lsd.train(std::slice::from_ref(&train)).unwrap();
    let o = lsd.match_source(&target).unwrap();
    assert!(o.result.feasible);
    assert_ne!(o.label_of("code"), Some("ID"), "{:?}", o.labels);
}

/// Search algorithm choice is part of the public pipeline configuration:
/// beam and greedy produce feasible mappings too.
#[test]
fn alternate_search_algorithms_work_end_to_end() {
    let f = fixture();
    for algorithm in [SearchAlgorithm::Beam { width: 4 }, SearchAlgorithm::Greedy] {
        let config = LsdConfig {
            search: SearchConfig {
                algorithm,
                heuristic_weight: 1.0,
            },
            ..LsdConfig::default()
        };
        let builder = LsdBuilder::new(&f.mediated).with_config(config);
        let n = builder.labels().len();
        let mut lsd = builder
            .add_learner(Box::new(NaiveBayesLearner::new(n)))
            .with_constraints(vec![DomainConstraint::hard(Predicate::AtMostOne {
                label: "PRICE".into(),
            })])
            .build()
            .unwrap();
        lsd.train(std::slice::from_ref(&f.train)).unwrap();
        let o = lsd.match_source(&f.target).unwrap();
        assert!(o.result.feasible, "{algorithm:?}");
        let price_count = o.labels.iter().filter(|l| l.as_str() == "PRICE").count();
        assert!(price_count <= 1, "{algorithm:?}: {:?}", o.labels);
    }
}
