//! Warm-start retraining (`Lsd::train_incremental`) against the ground
//! truth of a full retrain: on an equivalent example set, both paths must
//! produce the *same model*, byte for byte — the property the serve-side
//! retrain worker's correctness rests on.
//!
//! `train_meta: false` keeps the stacking weights uniform on both paths
//! (the incremental path deliberately does not refit them), and listing
//! counts stay below the per-tag subsampling cap so neither path draws
//! from the RNG.

use lsd::core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher, StatsLearner};
use lsd::core::{Lsd, LsdBuilder, LsdConfig, LsdError, Source, TrainedSource};
use lsd::datagen::DomainId;

fn to_source(gs: &lsd::datagen::GeneratedSource) -> Source {
    Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone())
}

fn trained_sources(
    domain: &lsd::datagen::GeneratedDomain,
    indices: &[usize],
) -> Vec<TrainedSource> {
    indices
        .iter()
        .map(|&i| TrainedSource {
            source: to_source(&domain.sources[i]),
            mapping: domain.sources[i].mapping.clone(),
        })
        .collect()
}

fn build(domain: &lsd::datagen::GeneratedDomain) -> Lsd {
    let config = LsdConfig {
        train_meta: false,
        ..LsdConfig::default()
    };
    let builder = LsdBuilder::new(&domain.mediated).with_config(config);
    let n = builder.labels().len();
    let pairs: Vec<(&str, &str)> = domain
        .synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .add_learner(Box::new(StatsLearner::new(n)))
        .with_xml_learner(None)
        .with_constraints(domain.constraints.clone())
        .build()
        .unwrap()
}

fn snapshot_json(lsd: &Lsd) -> String {
    serde_json::to_string(&lsd.to_saved().expect("snapshots")).expect("serializes")
}

/// The acceptance property: warm-start == full retrain, byte for byte.
#[test]
fn warm_start_retrain_equals_full_retrain() {
    // 20 listings/source stays far below the 40-instance subsampling cap.
    let domain = DomainId::RealEstate1.generate(20, 7);

    let mut full = build(&domain);
    full.train(&trained_sources(&domain, &[0, 1, 2])).unwrap();

    let mut warm = build(&domain);
    warm.train(&trained_sources(&domain, &[0, 1])).unwrap();
    warm.train_incremental(&trained_sources(&domain, &[2]))
        .unwrap();

    assert_eq!(
        snapshot_json(&full),
        snapshot_json(&warm),
        "incremental training must be indistinguishable from retraining \
         on the concatenated source list"
    );
}

/// The equality must also hold through a save/load cycle — the serve
/// retrain worker warm-trains a model that was round-tripped through a
/// JSON snapshot, not a freshly trained one.
#[test]
fn warm_start_after_snapshot_roundtrip_equals_full_retrain() {
    let domain = DomainId::TimeSchedule.generate(15, 21);

    let mut full = build(&domain);
    full.train(&trained_sources(&domain, &[0, 1, 2])).unwrap();

    let mut base = build(&domain);
    base.train(&trained_sources(&domain, &[0, 1])).unwrap();
    let mut reloaded = Lsd::from_saved(
        lsd::core::SavedModel::from_json_str(&snapshot_json(&base)).expect("parses"),
    );
    reloaded
        .train_incremental(&trained_sources(&domain, &[2]))
        .unwrap();

    assert_eq!(
        snapshot_json(&full),
        snapshot_json(&reloaded),
        "a snapshot round-trip must not perturb warm-start training"
    );
}

/// Matching behaviour, not just serialized state: both paths label unseen
/// sources identically.
#[test]
fn warm_start_and_full_retrain_match_identically() {
    let domain = DomainId::FacultyListings.generate(20, 3);

    let mut full = build(&domain);
    full.train(&trained_sources(&domain, &[0, 1, 2])).unwrap();

    let mut warm = build(&domain);
    warm.train(&trained_sources(&domain, &[0])).unwrap();
    warm.train_incremental(&trained_sources(&domain, &[1]))
        .unwrap();
    warm.train_incremental(&trained_sources(&domain, &[2]))
        .unwrap();

    for gs in &domain.sources[3..] {
        let a = full.match_source(&to_source(gs)).unwrap();
        let b = warm.match_source(&to_source(gs)).unwrap();
        assert_eq!(a.labels, b.labels, "{} diverged", gs.name);
    }
}

/// Guard rails: warm-starting an untrained system is refused with the
/// typed error, not a panic or silent full train.
#[test]
fn train_incremental_requires_a_trained_system() {
    let domain = DomainId::RealEstate1.generate(10, 1);
    let mut lsd = build(&domain);
    let err = lsd
        .train_incremental(&trained_sources(&domain, &[0]))
        .unwrap_err();
    assert!(
        matches!(err, LsdError::NotTrained { .. }),
        "got {err:?} instead"
    );
}
