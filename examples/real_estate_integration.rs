//! A realistic data-integration scenario: the Real Estate II domain.
//!
//! Uses `lsd-datagen` to stand in for five real-estate websites (66-tag
//! mediated schema, deep nested structure), trains LSD on three of them,
//! and matches the remaining two — printing the proposed mappings, the
//! mistakes, and the accuracy, exactly the workflow a data-integration
//! engineer would follow before wiring a new source into the mediator.
//!
//! Run with: `cargo run --release --example real_estate_integration`

use lsd::core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
use lsd::core::TrainedSource;
use lsd::core::{Lsd, LsdBuilder, LsdConfig};
use lsd::datagen::DomainId;

fn main() {
    // Generate the synthetic domain: 5 sources x 200 listings.
    let domain = DomainId::RealEstate2.generate(200, 7);
    println!(
        "domain: {} ({} mediated tags)\n",
        domain.name,
        domain.mediated.len()
    );

    // Build the full LSD stack for this domain.
    let builder = LsdBuilder::new(&domain.mediated).with_config(LsdConfig::default());
    let n = builder.labels().len();
    let synonym_pairs: Vec<(&str, &str)> = domain
        .synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let mut lsd: Lsd = builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, synonym_pairs)))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_xml_learner(None)
        .with_constraints(domain.constraints.clone())
        .build()
        .expect("at least one learner added");

    // Train on the first three sources (mapped "by the user").
    let training: Vec<TrainedSource> = domain.sources[..3]
        .iter()
        .map(|gs| TrainedSource {
            source: lsd::core::Source::from_xml(
                gs.name.clone(),
                gs.dtd.clone(),
                gs.listings.clone(),
            ),
            mapping: gs.mapping.clone(),
        })
        .collect();
    for t in &training {
        println!(
            "training source: {} ({} tags)",
            t.source.name,
            t.source.dtd.len()
        );
    }
    lsd.train(&training)
        .expect("training sources have listings");

    // Match the two held-out sources.
    for gs in &domain.sources[3..] {
        let source =
            lsd::core::Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone());
        let outcome = lsd.match_source(&source).expect("well-formed source");
        let mut correct = 0;
        let mut wrong = Vec::new();
        for (tag, truth) in &gs.mapping {
            match outcome.label_of(tag) {
                Some(predicted) if predicted == truth => correct += 1,
                Some(predicted) => wrong.push((tag.clone(), truth.clone(), predicted.to_string())),
                None => {}
            }
        }
        println!(
            "\n== {}: {}/{} matchable tags correct ({:.0}%), search {} ==",
            gs.name,
            correct,
            gs.mapping.len(),
            100.0 * correct as f64 / gs.mapping.len() as f64,
            if outcome.result.stats.optimal {
                "optimal"
            } else {
                "greedy-completed"
            },
        );
        if !wrong.is_empty() {
            println!("  tags needing review (tag: proposed, should be):");
            for (tag, truth, predicted) in wrong {
                println!("    {tag:<18} {predicted:<18} {truth}");
            }
        }
    }
    println!("\nIn production, the engineer confirms or corrects the flagged tags,");
    println!("and the confirmed source joins the training set for the next one.");
}
