//! The Section 4.3 / 6.3 user-feedback loop on the Time Schedule domain.
//!
//! Shows how feedback constraints ("tag X matches label Y", "tag X does
//! not match label Y") steer the constraint handler without retraining any
//! learner, and how few corrections a perfect matching needs. The "user"
//! here is a simulated oracle that knows the ground truth.
//!
//! Run with: `cargo run --release --example interactive_feedback`

use lsd::core::feedback::simulate_feedback_session;
use lsd::core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
use lsd::core::{Correction, Feedback, LsdBuilder, Source, TrainedSource};
use lsd::datagen::DomainId;
use lsd::xml::SchemaTree;

fn main() {
    let domain = DomainId::TimeSchedule.generate(150, 11);
    let builder = LsdBuilder::new(&domain.mediated);
    let n = builder.labels().len();
    let synonym_pairs: Vec<(&str, &str)> = domain
        .synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, synonym_pairs)))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_xml_learner(None)
        .with_constraints(domain.constraints.clone())
        .build()
        .expect("at least one learner added");

    let training: Vec<TrainedSource> = domain.sources[..3]
        .iter()
        .map(|gs| TrainedSource {
            source: Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone()),
            mapping: gs.mapping.clone(),
        })
        .collect();
    lsd.train(&training)
        .expect("training sources have listings");

    let gs = &domain.sources[4];
    let source = Source::from_xml(gs.name.clone(), gs.dtd.clone(), gs.listings.clone());

    // One manual round first, to show the mechanics of a single feedback
    // constraint.
    let before = lsd.match_source(&source).expect("well-formed source");
    let schema = SchemaTree::from_dtd(&source.dtd).expect("valid DTD");
    println!("initial match of {} ({} tags):", source.name, schema.len());
    let mut first_wrong: Option<(String, String)> = None;
    for tag in schema.tags_by_structure_score() {
        let predicted = before.label_of(tag).expect("every tag labelled");
        let truth = gs.mapping.get(tag).map(String::as_str).unwrap_or("OTHER");
        let mark = if predicted == truth { ' ' } else { '*' };
        println!("  {mark} {tag:<16} => {predicted}");
        if predicted != truth && first_wrong.is_none() {
            first_wrong = Some((tag.to_string(), truth.to_string()));
        }
    }

    if let Some((tag, truth)) = first_wrong {
        println!("\nuser says: '{tag}' matches {truth}; re-running the constraint handler…");
        let fb = Feedback::from_corrections(vec![Correction::tag_is(tag.as_str(), truth.as_str())
            .with_provenance(source.name.as_str(), 0, "example")]);
        let after = lsd
            .match_source_with(&source, &fb)
            .expect("well-formed source");
        println!(
            "  {tag} now => {}",
            after.label_of(&tag).expect("tag present")
        );
    } else {
        println!("\nalready perfect — no feedback needed.");
    }

    // Full simulated session (Section 6.3 protocol).
    let outcome =
        simulate_feedback_session(&lsd, &source, &gs.mapping).expect("well-formed source");
    println!(
        "\nfull feedback session: {} corrections over {} tags, {} rounds, converged={}",
        outcome.corrections.len(),
        schema.len(),
        outcome.rounds,
        outcome.converged
    );
    if !outcome.corrected_tags.is_empty() {
        println!("corrected tags, in order: {:?}", outcome.corrected_tags);
    }
}
