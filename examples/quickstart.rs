//! Quickstart: the paper's running example (Figures 2, 5 and 6) end to end.
//!
//! We define a tiny real-estate mediated schema, train LSD on two
//! user-mapped sources (realestate.com and homeseekers.com), and ask it to
//! match a third (greathomes.com) it has never seen.
//!
//! Run with: `cargo run --example quickstart`

use lsd::core::learners::{ContentMatcher, NaiveBayesLearner, NameMatcher};
use lsd::core::{DomainConstraint, LsdBuilder, Predicate, Source, TrainedSource};
use lsd::xml::{parse_dtd, parse_fragment, Element};
use std::collections::HashMap;

fn listings(rows: &[(&str, &str, &str)], tags: [&str; 4]) -> Vec<Element> {
    rows.iter()
        .map(|(addr, desc, phone)| {
            parse_fragment(&format!(
                "<{root}><{a}>{addr}</{a}><{d}>{desc}</{d}><{p}>{phone}</{p}></{root}>",
                root = tags[0],
                a = tags[1],
                d = tags[2],
                p = tags[3],
            ))
            .expect("well-formed listing")
        })
        .collect()
}

fn main() {
    // The mediated schema the user queries against (Figure 2).
    let mediated = parse_dtd(
        "<!ELEMENT HOUSE (ADDRESS, DESCRIPTION, AGENT-PHONE)>\n\
         <!ELEMENT ADDRESS (#PCDATA)>\n\
         <!ELEMENT DESCRIPTION (#PCDATA)>\n\
         <!ELEMENT AGENT-PHONE (#PCDATA)>",
    )
    .expect("valid mediated DTD");

    // Build LSD with the paper's core base learners and two domain
    // constraints (Table 1 style).
    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(
            n,
            [("location", "address"), ("comments", "description")],
        )))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .with_constraints(vec![
            DomainConstraint::hard(Predicate::ExactlyOne {
                label: "HOUSE".into(),
            }),
            DomainConstraint::hard(Predicate::AtMostOne {
                label: "ADDRESS".into(),
            }),
        ])
        .build()
        .expect("at least one learner added");

    // Training phase (Section 3.1): the user maps two sources by hand.
    let realestate = TrainedSource {
        source: Source::from_xml(
            "realestate.com",
            parse_dtd(
                "<!ELEMENT house (location, comments, contact)>\n\
                 <!ELEMENT location (#PCDATA)>\n<!ELEMENT comments (#PCDATA)>\n\
                 <!ELEMENT contact (#PCDATA)>",
            )
            .expect("valid DTD"),
            listings(
                &[
                    ("Miami, FL", "Fantastic house, nice area", "(305) 729 0831"),
                    (
                        "Boston, MA",
                        "Great location close to the river",
                        "(617) 253 1429",
                    ),
                    (
                        "Austin, TX",
                        "Beautiful yard, great schools",
                        "(512) 441 8338",
                    ),
                ],
                ["house", "location", "comments", "contact"],
            ),
        ),
        mapping: HashMap::from([
            ("house".to_string(), "HOUSE".to_string()),
            ("location".to_string(), "ADDRESS".to_string()),
            ("comments".to_string(), "DESCRIPTION".to_string()),
            ("contact".to_string(), "AGENT-PHONE".to_string()),
        ]),
    };
    let homeseekers = TrainedSource {
        source: Source::from_xml(
            "homeseekers.com",
            parse_dtd(
                "<!ELEMENT listing (house-addr, detailed-desc, phone)>\n\
                 <!ELEMENT house-addr (#PCDATA)>\n<!ELEMENT detailed-desc (#PCDATA)>\n\
                 <!ELEMENT phone (#PCDATA)>",
            )
            .expect("valid DTD"),
            listings(
                &[
                    (
                        "Seattle, WA",
                        "Fantastic views, great neighborhood",
                        "(206) 753 2605",
                    ),
                    (
                        "Portland, OR",
                        "Nice deck and beautiful garden",
                        "(515) 273 4312",
                    ),
                    (
                        "Spokane, WA",
                        "Close to the park, great value",
                        "(509) 811 4200",
                    ),
                ],
                ["listing", "house-addr", "detailed-desc", "phone"],
            ),
        ),
        mapping: HashMap::from([
            ("listing".to_string(), "HOUSE".to_string()),
            ("house-addr".to_string(), "ADDRESS".to_string()),
            ("detailed-desc".to_string(), "DESCRIPTION".to_string()),
            ("phone".to_string(), "AGENT-PHONE".to_string()),
        ]),
    };
    lsd.train(&[realestate, homeseekers])
        .expect("training sources have listings");
    println!("trained on 2 sources; learners: {:?}", lsd.learner_names());

    // Matching phase (Section 3.2): an unseen source.
    let greathomes = Source::from_xml(
        "greathomes.com",
        parse_dtd(
            "<!ELEMENT home (area, extra-info, contact-phone)>\n\
             <!ELEMENT area (#PCDATA)>\n<!ELEMENT extra-info (#PCDATA)>\n\
             <!ELEMENT contact-phone (#PCDATA)>",
        )
        .expect("valid DTD"),
        listings(
            &[
                (
                    "Orlando, FL",
                    "Spacious rooms with great light",
                    "(315) 237 4379",
                ),
                (
                    "Kent, WA",
                    "Close to the highway, nice yard",
                    "(415) 273 1234",
                ),
                (
                    "Portland, OR",
                    "Great location near the schools",
                    "(515) 237 4244",
                ),
            ],
            ["home", "area", "extra-info", "contact-phone"],
        ),
    );
    let outcome = lsd.match_source(&greathomes).expect("well-formed source");

    println!("\nproposed 1-1 mappings for greathomes.com:");
    for (tag, label) in outcome.tags.iter().zip(&outcome.labels) {
        let confidence = {
            let i = outcome.tags.iter().position(|t| t == tag).expect("own tag");
            let p = &outcome.predictions[i];
            p.score(p.best_label())
        };
        println!("  {tag:<14} => {label:<12} (top score {confidence:.2})");
    }
    assert_eq!(outcome.label_of("area"), Some("ADDRESS"));
    assert_eq!(outcome.label_of("extra-info"), Some("DESCRIPTION"));
    assert_eq!(outcome.label_of("contact-phone"), Some("AGENT-PHONE"));
    println!("\nall three data tags matched the paper's expected labels.");
}
