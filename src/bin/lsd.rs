//! `lsd` — command-line schema matcher.
//!
//! The deployment workflow of the paper, as a tool:
//!
//! ```text
//! # 1. Produce a demo workspace (or bring your own DTDs + data):
//! lsd generate --domain re1 --listings 100 --seed 7 --out demo/
//!
//! # 2. Train on the user-mapped sources, save the model:
//! lsd train --mediated demo/mediated.dtd \
//!           --source demo/homeseekers.com --source demo/texashomes.com \
//!           --source demo/greathomes.com \
//!           --constraints demo/constraints.json \
//!           --synonyms demo/synonyms.tsv \
//!           --model demo/model.json
//!
//! # 3. Match a new source (training can be done offline, Section 7):
//! lsd match --model demo/model.json --source demo/nwhomes.com
//!
//! # Optional: steer the result with feedback constraints:
//! lsd match --model demo/model.json --source demo/nwhomes.com \
//!           --assert "beds=BEDS" --deny "extras=DESCRIPTION"
//! ```
//!
//! File formats: a *source directory* holds `source.dtd`, `listings.xml`
//! (listings wrapped in a `<listings>` root) and, for training sources,
//! `mapping.tsv` (`tag<TAB>MEDIATED-TAG` lines). Synonyms are `a<TAB>b`
//! lines; constraints are the JSON serialization of
//! `Vec<DomainConstraint>`.

use lsd::constraints::DomainConstraint;
use lsd::core::learners::{
    ContentMatcher, FormatLearner, NaiveBayesLearner, NameMatcher, StatsLearner,
};
use lsd::core::{Correction, Feedback, Lsd, LsdBuilder, Source, TrainedSource};
use lsd::datagen::DomainId;
use lsd::xml::{parse_document, parse_dtd, write_element_pretty, Dtd, Element};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Prints a line to stdout, exiting quietly if the consumer closed the
/// pipe (e.g. `lsd match … | head`).
macro_rules! out {
    ($($arg:tt)*) => {
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("match") => cmd_match(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    out!(
        "lsd — multi-strategy schema matching (SIGMOD 2001 reproduction)\n\n\
         USAGE:\n  lsd generate --domain <re1|re2|ts|faculty> [--listings N] [--seed S] --out DIR\n  \
         lsd train --mediated FILE.dtd --source DIR... [--constraints FILE.json]\n            \
         [--synonyms FILE.tsv] --model OUT.json\n  \
         lsd match --model MODEL.json --source DIR [--assert tag=LABEL]... [--deny tag=LABEL]...\n  \
         lsd explain --model MODEL.json --source DIR [--tag TAG]\n\n\
         A source DIR holds source.dtd + listings.xml (+ mapping.tsv for training)."
    );
}

/// Minimal flag parser: `--name value` pairs, repeatable flags collected.
struct Flags {
    values: HashMap<String, Vec<String>>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, found '{flag}'"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} requires a value"))?;
            values
                .entry(name.to_string())
                .or_default()
                .push(value.clone());
        }
        Ok(Flags { values })
    }

    fn one(&self, name: &str) -> Result<&str, String> {
        match self.values.get(name).map(Vec::as_slice) {
            Some([v]) => Ok(v),
            Some(_) => Err(format!("--{name} given more than once")),
            None => Err(format!("--{name} is required")),
        }
    }

    fn opt(&self, name: &str) -> Result<Option<&str>, String> {
        match self.values.get(name).map(Vec::as_slice) {
            Some([v]) => Ok(Some(v)),
            Some(_) => Err(format!("--{name} given more than once")),
            None => Ok(None),
        }
    }

    fn many(&self, name: &str) -> Vec<&str> {
        self.values
            .get(name)
            .map(|v| v.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }
}

// ---------------------------------------------------------------- generate

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let domain_id = match flags.one("domain")? {
        "re1" | "real-estate-1" => DomainId::RealEstate1,
        "re2" | "real-estate-2" => DomainId::RealEstate2,
        "ts" | "time-schedule" => DomainId::TimeSchedule,
        "faculty" => DomainId::FacultyListings,
        other => return Err(format!("unknown domain '{other}' (re1|re2|ts|faculty)")),
    };
    let listings: usize = flags
        .opt("listings")?
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--listings: '{v}' is not a number"))
        })
        .transpose()?
        .unwrap_or_else(|| domain_id.default_listings());
    let seed: u64 = flags
        .opt("seed")?
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--seed: '{v}' is not a number"))
        })
        .transpose()?
        .unwrap_or(0);
    let out = PathBuf::from(flags.one("out")?);

    let domain = domain_id.generate(listings, seed);
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    write(&out.join("mediated.dtd"), &domain.mediated.to_dtd_syntax())?;
    let constraints = serde_json::to_string_pretty(&domain.constraints)
        .map_err(|e| format!("serializing constraints: {e}"))?;
    write(&out.join("constraints.json"), &constraints)?;
    let synonyms: String = domain
        .synonyms
        .iter()
        .map(|(a, b)| format!("{a}\t{b}\n"))
        .collect();
    write(&out.join("synonyms.tsv"), &synonyms)?;

    for source in &domain.sources {
        let dir = out.join(&source.name);
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        write(&dir.join("source.dtd"), &source.dtd.to_dtd_syntax())?;
        let mut doc = String::from("<listings>\n");
        for listing in &source.listings {
            doc.push_str(&write_element_pretty(listing));
        }
        doc.push_str("</listings>\n");
        write(&dir.join("listings.xml"), &doc)?;
        let mut mapping: Vec<(&String, &String)> = source.mapping.iter().collect();
        mapping.sort();
        let tsv: String = mapping.iter().map(|(t, l)| format!("{t}\t{l}\n")).collect();
        write(&dir.join("mapping.tsv"), &tsv)?;
    }
    out!(
        "wrote domain '{}' ({} sources x {} listings) to {}",
        domain.name,
        domain.sources.len(),
        listings,
        out.display()
    );
    Ok(())
}

// ------------------------------------------------------------------- train

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let mediated = read_dtd(Path::new(flags.one("mediated")?))?;
    let model_path = flags.one("model")?.to_string();
    let source_dirs = flags.many("source");
    if source_dirs.len() < 2 {
        return Err("at least two --source training directories are required".into());
    }

    let constraints: Vec<DomainConstraint> = match flags.opt("constraints")? {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => Vec::new(),
    };
    let synonyms: Vec<(String, String)> = match flags.opt("synonyms")? {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            text.lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| {
                    let mut parts = l.splitn(2, '\t');
                    match (parts.next(), parts.next()) {
                        (Some(a), Some(b)) => Ok((a.to_string(), b.trim().to_string())),
                        _ => Err(format!("{path}: bad synonym line '{l}' (want a<TAB>b)")),
                    }
                })
                .collect::<Result<_, _>>()?
        }
        None => Vec::new(),
    };

    let training: Vec<TrainedSource> = source_dirs
        .iter()
        .map(|dir| read_training_source(Path::new(dir)))
        .collect::<Result<_, _>>()?;

    let builder = LsdBuilder::new(&mediated);
    let n = builder.labels().len();
    let pairs: Vec<(&str, &str)> = synonyms
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let mut lsd = builder
        .add_learner(Box::new(NameMatcher::with_synonym_pairs(n, pairs)))
        .add_learner(Box::new(ContentMatcher::new(n)))
        .add_learner(Box::new(NaiveBayesLearner::new(n)))
        .add_learner(Box::new(StatsLearner::new(n)))
        .add_learner(Box::new(FormatLearner::new(n)))
        .with_xml_learner(None)
        .with_constraints(constraints)
        .build()
        .map_err(|e| e.to_string())?;
    lsd.train(&training).map_err(|e| e.to_string())?;
    lsd.save_json(&model_path)
        .map_err(|e| format!("{model_path}: {e}"))?;
    out!(
        "trained on {} sources ({} learners), saved model to {model_path}",
        training.len(),
        lsd.learner_names().len()
    );
    Ok(())
}

// ------------------------------------------------------------------- match

fn cmd_match(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let model_path = flags.one("model")?;
    let lsd = Lsd::load_json(model_path).map_err(|e| format!("{model_path}: {e}"))?;
    let source = read_source(Path::new(flags.one("source")?))?;

    let mut feedback = Feedback::new();
    for (flag, positive) in [("assert", true), ("deny", false)] {
        for spec in flags.many(flag) {
            let (tag, label) = spec
                .split_once('=')
                .ok_or_else(|| format!("--{flag} wants tag=LABEL, got '{spec}'"))?;
            let correction = if positive {
                Correction::tag_is(tag, label)
            } else {
                Correction::tag_is_not(tag, label)
            };
            feedback.push(correction.with_provenance(source.name.as_str(), 0, "cli"));
        }
    }

    let outcome = lsd
        .match_source_with(&source, &feedback)
        .map_err(|e| e.to_string())?;
    out!(
        "match of {} ({} tags, search {}):",
        source.name,
        outcome.tags.len(),
        if outcome.result.stats.optimal {
            "optimal"
        } else {
            "heuristic"
        }
    );
    for (i, (tag, label)) in outcome.tags.iter().zip(&outcome.labels).enumerate() {
        let p = &outcome.predictions[i];
        out!(
            "  {tag:<24} => {label:<20} (score {:.2})",
            p.score(p.best_label())
        );
    }
    Ok(())
}

// ----------------------------------------------------------------- explain

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let model_path = flags.one("model")?;
    let lsd = Lsd::load_json(model_path).map_err(|e| format!("{model_path}: {e}"))?;
    let source = read_source(Path::new(flags.one("source")?))?;
    let only_tag = flags.opt("tag")?;

    let explanations = lsd.explain_source(&source).map_err(|e| e.to_string())?;
    for e in &explanations {
        if only_tag.is_some_and(|t| t != e.tag) {
            continue;
        }
        out!("{} ({} instances examined):", e.tag, e.instances_examined);
        for (learner, prediction) in &e.per_learner {
            let best = prediction.best_label();
            out!(
                "  {learner:<18} => {:<20} (score {:.2})",
                lsd.labels().name(best),
                prediction.score(best)
            );
        }
        let best = e.combined.best_label();
        out!(
            "  {:<18} => {:<20} (score {:.2})",
            "combined",
            lsd.labels().name(best),
            e.combined.score(best)
        );
    }
    if let Some(tag) = only_tag {
        if !explanations.iter().any(|e| e.tag == tag) {
            return Err(format!("tag '{tag}' not found in the source schema"));
        }
    }
    Ok(())
}

// ------------------------------------------------------------------- io

fn write(path: &Path, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn read_dtd(path: &Path) -> Result<Dtd, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_dtd(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Reads `source.dtd` + `listings.xml` from a source directory.
fn read_source(dir: &Path) -> Result<Source, String> {
    let dtd = read_dtd(&dir.join("source.dtd"))?;
    let listings_path = dir.join("listings.xml");
    let text = std::fs::read_to_string(&listings_path)
        .map_err(|e| format!("{}: {e}", listings_path.display()))?;
    let doc = parse_document(&text).map_err(|e| format!("{}: {e}", listings_path.display()))?;
    let listings: Vec<Element> = doc.root.child_elements().cloned().collect();
    if listings.is_empty() {
        return Err(format!(
            "{}: no listings under the root element",
            listings_path.display()
        ));
    }
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| dir.display().to_string());
    Ok(Source::from_xml(name, dtd, listings))
}

/// Reads a training source: [`read_source`] plus `mapping.tsv`.
fn read_training_source(dir: &Path) -> Result<TrainedSource, String> {
    let source = read_source(dir)?;
    let mapping_path = dir.join("mapping.tsv");
    let text = std::fs::read_to_string(&mapping_path)
        .map_err(|e| format!("{}: {e}", mapping_path.display()))?;
    let mut mapping = HashMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let (tag, label) = line
            .split_once('\t')
            .ok_or_else(|| format!("{}: bad line '{line}'", mapping_path.display()))?;
        mapping.insert(tag.to_string(), label.trim().to_string());
    }
    Ok(TrainedSource { source, mapping })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Result<Flags, String> {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_single_and_repeated_flags() {
        let f = flags(&["--model", "m.json", "--source", "a", "--source", "b"]).expect("parses");
        assert_eq!(f.one("model").expect("present"), "m.json");
        assert_eq!(f.many("source"), vec!["a", "b"]);
        assert_eq!(f.opt("absent").expect("ok"), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(flags(&["--model"]).is_err());
    }

    #[test]
    fn positional_arguments_are_rejected() {
        assert!(flags(&["model.json"]).is_err());
    }

    #[test]
    fn duplicate_single_flag_is_an_error() {
        let f = flags(&["--model", "a", "--model", "b"]).expect("parses");
        assert!(f.one("model").is_err());
        assert!(f.opt("model").is_err());
    }

    #[test]
    fn required_flag_missing() {
        let f = flags(&[]).expect("parses");
        assert!(f.one("model").is_err());
    }
}
