//! # lsd — multi-strategy machine learning for schema matching
//!
//! A Rust reproduction of the LSD system from *"Reconciling Schemas of
//! Disparate Data Sources: A Machine-Learning Approach"* (Doan, Domingos,
//! Halevy — SIGMOD 2001).
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! - [`xml`] — XML parser, DTD grammar, schema trees ([`lsd_xml`]).
//! - [`analysis`] — static diagnostics over DTDs and constraint sets with
//!   rustc-style rendering ([`lsd_analysis`]); `Error`-severity findings
//!   gate [`Lsd`]'s `train`/`set_constraints`.
//! - [`text`] — tokenizer, Porter stemmer, TF/IDF, WHIRL ([`lsd_text`]).
//! - [`learn`] — learner traits, cross-validation, regression ([`lsd_learn`]).
//! - [`constraints`] — domain constraints and the A\* constraint handler
//!   ([`lsd_constraints`]).
//! - [`core`] — the LSD system itself: base learners, meta-learner,
//!   prediction converter, train/match pipeline ([`lsd_core`]).
//! - [`datagen`] — synthetic versions of the paper's four evaluation domains
//!   ([`lsd_datagen`]).
//! - [`obs`] — zero-dependency tracing spans and metrics registry
//!   ([`lsd_obs`]); the `*_with_report` methods on [`Lsd`] wrap the
//!   pipeline in a collection and return [`MatchReport`] / [`TrainReport`]
//!   snapshots.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use lsd_analysis as analysis;
pub use lsd_constraints as constraints;
pub use lsd_core as core;
pub use lsd_datagen as datagen;
pub use lsd_learn as learn;
pub use lsd_obs as obs;
pub use lsd_text as text;
pub use lsd_xml as xml;

// The batch-matching pipeline types, re-exported at the root so callers can
// write `lsd::Lsd` / `lsd::ExecPolicy` without spelling out the crate layout.
pub use lsd_core::{
    CandidateExplanation, ExecPolicy, Explanation, LabelCandidate, LearnerContribution, Lsd,
    LsdBuilder, LsdConfig, LsdError, MatchOutcome, MatchReport, RejectionReason, Source,
    TagExplanation, TagLabelSearch, TrainReport, TrainedSource,
};
pub use lsd_core::{Diagnostic, DiagnosticCode, Severity};

// The feedback-loop vocabulary: typed corrections, durable WAL, simulator.
pub use lsd_core::{
    simulate_feedback_session, Correction, CorrectionKind, Feedback, FeedbackOutcome,
    FeedbackRecord, FeedbackWal, StallReason, WalScan, WAL_MAGIC,
};

// The source-reader surface: every serialization funnels through
// `Source::from_reader`, so `lsd::CsvReader` and friends sit beside
// `lsd::Source` at the root.
pub use lsd_core::{
    synthesize_dtd, CsvReader, JsonReader, ReadError, SourceContents, SourceFormat,
    SourceProvenance, SourceReader, SqlReader, XmlReader,
};

/// The crate version, for experiment logs.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
